"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires `wheel` for PEP 660 editable builds; this shim
lets `python setup.py develop` provide the same editable install offline.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
