"""Procedure 2 in action: find the strongest attack region per defense.

The paper's heuristic unfair-rating-value-set generator (Procedure 2,
Figure 5) recursively zooms into the (bias, variance) region that yields
the largest Manipulation Power.  Different defenses have different weak
regions:

- against plain averaging (SA) the search heads for maximum |bias|;
- against the signal-based P-scheme it needs substantial *variance* to
  blur the signal features the detectors key on (the paper's region R3).

Run with::

    python examples/attack_optimization.py [probes_per_subarea] [seed]

Probing the P-scheme costs a detector run per probe; the default (6
probes per subarea) finishes in a few minutes.  Fewer probes are faster
but noisier -- each probe redraws the attack timing, so small samples can
wander off the true optimum region.
"""

import sys

from repro import (
    AttackGenerator,
    ProductTarget,
    PScheme,
    RatingChallenge,
    SearchArea,
    SimpleAveragingScheme,
    heuristic_region_search,
)
from repro.analysis.reporting import format_table


def search_against(challenge, scheme, probes: int, seed: int):
    by_volume = sorted(
        challenge.fair_dataset.product_ids,
        key=lambda pid: len(challenge.fair_dataset[pid]),
    )
    targets = [
        ProductTarget(by_volume[0], -1),
        ProductTarget(by_volume[1], -1),
        ProductTarget(by_volume[2], +1),
        ProductTarget(by_volume[3], +1),
    ]
    generator = AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=seed
    )
    evaluate = generator.evaluator(targets, challenge, scheme)
    initial = SearchArea(bias_min=-4.0, bias_max=0.0, std_min=0.0, std_max=2.0)
    return heuristic_region_search(
        evaluate, initial, n_subareas=4, probes_per_subarea=probes
    )


def main(probes: int = 4, seed: int = 11) -> None:
    challenge = RatingChallenge(seed=seed)
    for scheme in (SimpleAveragingScheme(), PScheme()):
        print(f"\nSearching the variance-bias plane against the "
              f"{scheme.name}-scheme ({probes} probes per subarea)...")
        result = search_against(challenge, scheme, probes, seed)
        rows = []
        for i, round_ in enumerate(result.rounds):
            bias, std = round_.best_subarea.center
            rows.append((i + 1, bias, std, round_.best_score))
        print(
            format_table(
                ["round", "best bias", "best std", "best MP"],
                rows,
                title=f"search trace vs {scheme.name}",
            )
        )
        bias, std = result.best_point
        print(
            f"strongest region vs {scheme.name}: bias={bias:.2f}, "
            f"std={std:.2f} (best MP {result.best_mp:.3f})"
        )
    print(
        "\nReading the result: the SA search output should sit near the"
        "\nbias=-4 edge with variance irrelevant, while the P search output"
        "\nneeds medium-to-large variance to survive the signal detectors"
        "\n(paper Figure 5 reports a centre near bias -2.3, sigma 1.6)."
    )


if __name__ == "__main__":
    probes = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    main(probes, seed)
