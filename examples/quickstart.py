"""Quickstart: attack a rating challenge and watch the defenses react.

Builds the nine-TV challenge world, generates one collaborative unfair
rating attack with the attack generator (Figure 8 of the paper), and
evaluates its Manipulation Power under the three defenses the paper
compares: plain averaging (SA), beta-function filtering (BF), and the
proposed signal-based system (P).

Run with::

    python examples/quickstart.py [seed]
"""

import sys

from repro import (
    AttackGenerator,
    AttackSpec,
    BetaFilterScheme,
    ProductTarget,
    PScheme,
    RatingChallenge,
    SimpleAveragingScheme,
    UniformWindow,
)


def main(seed: int = 7) -> None:
    print("Building the challenge world (9 TVs, fair raters, 82 days)...")
    challenge = RatingChallenge(seed=seed)
    for product_id in challenge.fair_dataset.product_ids[:3]:
        stream = challenge.fair_dataset[product_id]
        print(
            f"  {product_id}: {len(stream)} fair ratings, "
            f"mean {stream.mean_value():.2f}"
        )
    print("  ...")

    print("\nGenerating a collaborative attack (50 biased raters):")
    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        seed=seed,
    )
    targets = [
        ProductTarget("tv1", -1),  # downgrade
        ProductTarget("tv2", -1),  # downgrade
        ProductTarget("tv3", +1),  # boost
        ProductTarget("tv4", +1),  # boost
    ]
    spec = AttackSpec(
        bias_magnitude=2.5,
        std=0.4,
        n_ratings=50,
        time_model=UniformWindow(start=25.0, duration=30.0),
    )
    submission = generator.generate(targets, spec, submission_id="quickstart")
    challenge.validate(submission)
    print(
        f"  {submission.total_ratings()} unfair ratings over "
        f"{len(submission.product_ids)} products "
        f"(bias ±{spec.bias_magnitude}, std {spec.std})"
    )

    print("\nManipulation Power under each defense scheme:")
    print("  (MP sums each attacked product's two worst monthly score")
    print("   deviations; higher = stronger attack)")
    for scheme in (SimpleAveragingScheme(), BetaFilterScheme(), PScheme()):
        result = challenge.evaluate(submission, scheme)
        attacked = {
            pid: round(mp, 3)
            for pid, mp in result.per_product.items()
            if pid in submission.product_ids
        }
        print(f"  {scheme.name:>2}-scheme: total MP = {result.total:.3f}  {attacked}")

    print("\nThe signal-based P-scheme should report a small fraction of the")
    print("undefended SA-scheme's MP: the detectors found the unfair block,")
    print("the trust manager demoted its raters, and Eq. 7 zeroed them out.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
