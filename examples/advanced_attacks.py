"""Attacking the trust layer: camouflage and split bursts vs the P-scheme.

The paper's collected attacks manipulate rating values and times; this
example runs the two extension strategies that target the *trust* layer
instead (see ``repro.attacks.advanced``):

- **camouflage** -- biased raters first rate honestly (building beta
  trust above the neutral 0.5), then strike; Eq. 7 initially weights
  their unfair ratings like honest ones;
- **split bursts** -- several small, well-separated bursts that stay
  under the arrival-rate thresholds while the monthly MP metric still
  collects the damage.

Both are compared, under all three defenses, against a plain windowed
attack of the same strength.

Run with::

    python examples/advanced_attacks.py [seed]
"""

import sys

from repro import (
    AttackGenerator,
    AttackSpec,
    BetaFilterScheme,
    ProductTarget,
    PScheme,
    RatingChallenge,
    SimpleAveragingScheme,
    UniformWindow,
)
from repro.analysis.reporting import format_table
from repro.attacks.advanced import camouflage_attack, split_burst_attack


def main(seed: int = 13) -> None:
    challenge = RatingChallenge(seed=seed)
    raters = challenge.config.biased_rater_ids()
    targets = [
        ProductTarget("tv1", -1),
        ProductTarget("tv2", -1),
        ProductTarget("tv3", +1),
        ProductTarget("tv4", +1),
    ]
    generator = AttackGenerator(challenge.fair_dataset, raters, seed=seed)

    print("Building three attacks of equal nominal strength (bias 3.0)...")
    plain = generator.generate(
        targets,
        AttackSpec(3.0, 0.4, 50, UniformWindow(40.0, 20.0)),
        submission_id="plain_window",
    )
    camouflage = camouflage_attack(
        challenge.fair_dataset, targets, raters,
        bias_magnitude=3.0, std=0.4,
        camouflage_end=28.0, strike_start=45.0, strike_duration=20.0,
        seed=seed,
    )
    bursts = split_burst_attack(
        challenge.fair_dataset, targets, raters,
        bias_magnitude=3.0, std=0.4,
        n_bursts=5, burst_width=2.0, first_burst=8.0, burst_spacing=15.0,
        seed=seed,
    )
    for submission in (plain, camouflage, bursts):
        challenge.validate(submission)

    schemes = [SimpleAveragingScheme(), BetaFilterScheme(), PScheme()]
    rows = []
    for submission in (plain, camouflage, bursts):
        row = [submission.submission_id]
        for scheme in schemes:
            row.append(challenge.evaluate(submission, scheme).total)
        rows.append(row)
    print(
        format_table(
            ["attack", "SA", "BF", "P"],
            rows,
            title="Total MP per attack per defense",
        )
    )
    plain_p = rows[0][3]
    camouflage_p = rows[1][3]
    print(
        "\nReading the result: against the P-scheme, the plain window is"
        f"\nnearly neutralized (MP {plain_p:.2f}), while the camouflage"
        f"\nstrike retains more power (MP {camouflage_p:.2f}) -- the trust"
        "\nthe attackers banked before striking blunts Procedure 1's"
        "\nresponse. The trust layer, not the signal layer, is the"
        "\nremaining attack surface. A forgetting factor"
        "\n(TrustManager(forgetting_factor=...)) is the standard"
        "\ncountermeasure trade-off to explore next."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
