"""Operating the reliable rating system online.

Streams ratings into :class:`repro.online.OnlineRatingSystem` one at a
time, the way a deployed site would see them: 45 days of pre-existing
history prime the detectors, honest live traffic flows in, and an unfair
rating campaign hits mid-stream.  Scores are published at every 30-day
epoch; the P-scheme's published trajectory is compared against the
undefended average.

A second, Poisson-violating scenario then streams a concentrated burst
campaign through the system: the assumption drift monitors
(:mod:`repro.obs.drift`) flag the epoch where the fair-traffic regime
broke, and the whole run is rendered into a self-contained HTML report.

Finally the same burst replays with the live-telemetry stack attached:
every epoch close snapshots the registry into ring-buffered time series
(:mod:`repro.obs.series`), streams one JSONL line to
``online_monitoring_stream.jsonl``, and evaluates the default alert
ruleset (:mod:`repro.obs.alerts`) -- which stays silent on the fair
world and fires on the burst epoch, reporting detection latency in
epochs.  Watch the stream afterwards with::

    repro-rating monitor online_monitoring_stream.jsonl --once

Run with::

    python examples/online_monitoring.py [seed]
"""

import sys


from repro import PScheme, RatingChallenge, SimpleAveragingScheme
from repro.analysis.reporting import format_table
from repro.attacks import AttackGenerator, AttackSpec, ProductTarget
from repro.attacks.time_models import ConcentratedBurst, UniformWindow
from repro.obs import (
    DEFAULT_RULES_PATH,
    AlertEngine,
    MetricsRegistry,
    MetricsStreamWriter,
    TimeSeriesRecorder,
    load_rules,
    report_from_registry,
    use_registry,
    write_report,
)
from repro.online import OnlineRatingSystem
from repro.types import RatingDataset


def split_history(challenge):
    """Separate the world's pre-challenge history from live traffic."""
    history_streams = []
    live_ratings = []
    for pid in challenge.fair_dataset:
        stream = challenge.fair_dataset[pid]
        history_streams.append(
            stream.subset(stream.times < challenge.start_day)
        )
        live = stream.subset(stream.times >= challenge.start_day)
        live_ratings.extend(live)
    return RatingDataset(history_streams), live_ratings


def main(seed: int = 9) -> None:
    challenge = RatingChallenge(seed=seed)
    history, live = split_history(challenge)
    print(
        f"History: {history.total_ratings()} ratings before day "
        f"{challenge.start_day:.0f}; live traffic: {len(live)} ratings."
    )

    generator = AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=seed
    )
    submission = generator.generate(
        [ProductTarget("tv1", -1), ProductTarget("tv2", -1)],
        AttackSpec(3.0, 0.3, 50, UniformWindow(32.0, 20.0)),
        submission_id="live_campaign",
    )
    attack_ratings = [r for s in submission.streams.values() for r in s]
    print(
        f"Attack campaign: {len(attack_ratings)} unfair ratings on tv1/tv2, "
        "days 32-52."
    )

    feed = sorted(live + attack_ratings)
    systems = {
        "SA": OnlineRatingSystem(
            SimpleAveragingScheme(), start_day=challenge.start_day,
            period_days=30.0, history=history,
        ),
        "P": OnlineRatingSystem(
            PScheme(), start_day=challenge.start_day,
            period_days=30.0, history=history,
        ),
    }
    for name, system in systems.items():
        system.submit_many(feed)
        while system.current_epoch_start < challenge.end_day:
            system.close_epoch()

    fair_monthly = SimpleAveragingScheme().monthly_scores(
        challenge.fair_dataset, 30.0, challenge.start_day, challenge.end_day
    )
    rows = []
    for epoch in range(len(systems["SA"].reports)):
        for pid in ("tv1", "tv2"):
            truth = fair_monthly[pid][epoch]
            rows.append(
                (
                    epoch + 1,
                    pid,
                    truth,
                    systems["SA"].reports[epoch].score_of(pid),
                    systems["P"].reports[epoch].score_of(pid),
                )
            )
    print(
        format_table(
            ["month", "product", "fair mean", "SA publishes", "P publishes"],
            rows,
            title="Published scores under live attack",
        )
    )
    print(
        "\nThe attacked months' SA scores dip visibly below the fair mean;"
        "\nthe P-scheme's published scores stay close to it -- the joint"
        "\ndetector flagged the campaign as it streamed in, the trust"
        "\nmanager demoted the attacking accounts, and Eq. 7 silenced them."
    )

    drift_scenario(challenge, history, live, seed)


def drift_scenario(challenge, history, live, seed: int) -> None:
    """A Poisson-violating burst campaign, caught by the drift monitors."""
    print("\n--- Assumption drift: a burst campaign breaks the regime ---")
    generator = AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(),
        seed=seed + 100,
    )
    burst = generator.generate(
        [ProductTarget("tv1", -1)],
        # 50 unfair ratings compressed into half a day: arrival dispersion
        # explodes far past anything a Poisson process produces.
        AttackSpec(3.0, 0.3, 50, ConcentratedBurst(center=45.0, width=0.5)),
        submission_id="burst_campaign",
    )
    burst_ratings = [r for s in burst.streams.values() for r in s]

    registry = MetricsRegistry()
    with use_registry(registry):
        system = OnlineRatingSystem(
            PScheme(), start_day=challenge.start_day,
            period_days=30.0, history=history,
        )
        system.submit_many(sorted(live + burst_ratings))
        while system.current_epoch_start < challenge.end_day:
            system.close_epoch()

    # Note: the final epoch window extends past the end of the recorded
    # data (day 82 of a [60, 90) window), so its trailing zero-count days
    # can mildly inflate the dispersion statistic -- a deployment would
    # keep receiving traffic there.  The burst epoch is the clear signal.
    for report in system.reports:
        window = f"days {report.epoch_start:.0f}-{report.epoch_end:.0f}"
        if report.drift_warnings:
            print(f"epoch {report.epoch_index + 1} ({window}):")
            for warning in report.drift_warnings:
                print(f"  DRIFT {warning}")
        else:
            print(f"epoch {report.epoch_index + 1} ({window}): regime held")
    print(
        f"\ndrift.checks={registry.counter_value('drift.checks'):g} "
        f"drift.warnings={registry.counter_value('drift.warnings'):g}"
    )

    data = report_from_registry(
        registry,
        title="Online monitoring under a burst campaign",
        notes=(
            "50 unfair ratings concentrated into half a day on tv1",
            "drift monitors ran on every 30-day epoch close",
        ),
    )
    data.drift_warnings = tuple(
        str(w) for report in system.reports for w in report.drift_warnings
    )
    out = "online_monitoring_report.html"
    write_report(data, out)
    print(
        f"self-contained report written to {out} "
        f"({len(data.drift_warnings)} drift warning(s) rendered)"
    )

    alerting_scenario(challenge, seed)


def alerting_scenario(challenge, seed: int) -> None:
    """The burst again, watched live by the default alert ruleset."""
    print("\n--- Live alerting: default ruleset over the metrics stream ---")
    generator = AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(),
        seed=seed + 100,
    )
    burst = generator.generate(
        [ProductTarget("tv1", +1)],
        AttackSpec(3.0, 0.3, 50, ConcentratedBurst(center=45.0, width=0.5)),
        submission_id="burst_campaign",
    )

    def replay(submission):
        """One online replay with series + alerts attached; the engine."""
        registry = MetricsRegistry()
        engine = AlertEngine(
            load_rules(DEFAULT_RULES_PATH), registry=registry
        )
        sink = MetricsStreamWriter("online_monitoring_stream.jsonl")
        recorder = TimeSeriesRecorder(sink=sink, engine=engine)
        registry.attach_series(recorder)
        challenge.replay_online(
            PScheme(), submission=submission, registry=registry
        )
        sink.close()
        return engine

    fair_engine = replay(None)
    print(
        f"fair world : {len(fair_engine.events)} alert event(s) "
        "(the ruleset must stay silent here)"
    )
    burst_engine = replay(burst)
    for event in burst_engine.events:
        print(
            f"burst world: [{event.state.upper():8s}] {event.rule} "
            f"at epoch {event.epoch} "
            f"(latency {event.latency_epochs} epoch(s), "
            f"value {event.value:g})"
        )
    print(
        "\nmetrics stream written to online_monitoring_stream.jsonl --"
        "\nreplay it with: repro-rating monitor "
        "online_monitoring_stream.jsonl --once"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
