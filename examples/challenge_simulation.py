"""Simulate a full Rating Challenge round with a participant population.

Reproduces the paper's data-collection setting end to end: a synthetic
population of participants (straightforward, moderate, smart, burst, and
experimental archetypes -- Section V-A reports that over half of the real
submissions were straightforward) attacks the challenge, and a leaderboard
is computed under each defense scheme.  The variance-bias structure of the
winners (Figures 2-3) is summarized at the end.

Run with::

    python examples/challenge_simulation.py [population_size] [seed]

Population sizes above ~100 take a few minutes under the P-scheme.
"""

import sys

from repro import RatingChallenge, generate_population
from repro.aggregation import BetaFilterScheme, PScheme, SimpleAveragingScheme
from repro.analysis.bias_variance import VarianceBiasAnalysis
from repro.analysis.reporting import format_table
from repro.attacks.population import PopulationConfig


def main(population_size: int = 40, seed: int = 2008) -> None:
    print(f"Setting up the challenge (seed {seed})...")
    challenge = RatingChallenge(seed=seed)

    print(f"Generating {population_size} participant submissions...")
    population = generate_population(
        challenge, PopulationConfig(size=population_size), seed=seed + 1
    )
    by_archetype = {}
    for submission in population:
        by_archetype[submission.strategy] = by_archetype.get(submission.strategy, 0) + 1
    print(f"  archetype mix: {by_archetype}")

    attack_counts = {}
    for submission in population:
        for pid in submission.product_ids:
            attack_counts[pid] = attack_counts.get(pid, 0) + 1
    hottest = max(attack_counts, key=attack_counts.get)

    for scheme in (SimpleAveragingScheme(), BetaFilterScheme(), PScheme()):
        print(f"\nScoring the population under the {scheme.name}-scheme...")
        mp_results = {
            submission.submission_id: challenge.evaluate(
                submission, scheme, validate=False
            )
            for submission in population
        }
        ranked = sorted(population, key=lambda s: -mp_results[s.submission_id].total)
        rows = [
            (i + 1, s.submission_id, s.strategy, mp_results[s.submission_id].total)
            for i, s in enumerate(ranked[:8])
        ]
        print(
            format_table(
                ["rank", "submission", "archetype", "total MP"],
                rows,
                title=f"{scheme.name}-scheme leaderboard (top 8)",
            )
        )

        # Variance-bias structure of the winners on the most-attacked product.
        analysis = VarianceBiasAnalysis(top_n=max(3, population_size // 10))
        points = analysis.build_points(
            population, mp_results, challenge.fair_dataset, hottest
        )
        centroid = analysis.mean_winner_point(points)
        dominant = analysis.dominant_winner_region(points)
        if centroid is not None:
            print(
                f"winners on {hottest}: centroid bias={centroid[0]:.2f}, "
                f"std={centroid[1]:.2f}, dominant region="
                f"{dominant.value if dominant else 'none'}"
            )

    print(
        "\nExpected shape (paper Figures 2-3): winners under SA sit at large"
        "\nnegative bias and small variance (region R1); under the P-scheme"
        "\nthey shift to moderate bias and larger variance (region R3)."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2008
    main(size, seed)
