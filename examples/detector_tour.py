"""A guided tour of the four detectors and the Figure 1 joint detector.

Crafts one product stream with a known attack window, runs each detector
individually, renders its indicator curve as a text sparkline, and then
shows what the joint detector (Path 1 / Path 2 integration) marks.

Run with::

    python examples/detector_tour.py [seed]
"""

import sys

import numpy as np

from repro.attacks import AttackGenerator, AttackSpec, ProductTarget, UniformWindow
from repro.detectors import (
    ArrivalRateDetector,
    HistogramChangeDetector,
    JointDetector,
    MeanChangeDetector,
    ModelErrorDetector,
)
from repro.marketplace import RatingChallenge

SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """Downsample a curve into a character strip."""
    if values.size == 0:
        return "(empty curve)"
    bins = np.array_split(values, min(width, values.size))
    peaks = np.array([float(b.max()) for b in bins])
    top = peaks.max()
    if top <= 0:
        return " " * len(peaks)
    scaled = np.clip(peaks / top * (len(SPARK_CHARS) - 1), 0, len(SPARK_CHARS) - 1)
    return "".join(SPARK_CHARS[int(s)] for s in scaled)


def main(seed: int = 3) -> None:
    challenge = RatingChallenge(seed=seed)
    generator = AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=seed
    )
    attack_start, attack_days = 30.0, 20.0
    target = ProductTarget("tv1", -1)
    spec = AttackSpec(
        bias_magnitude=3.0,
        std=0.3,
        n_ratings=50,
        time_model=UniformWindow(attack_start, attack_days),
    )
    submission = generator.generate([target], spec)
    attacked = challenge.attacked_dataset(submission)
    stream = attacked["tv1"]
    span = stream.time_span()
    print(
        f"Stream: {len(stream)} ratings on tv1 over days "
        f"[{span[0]:.0f}, {span[1]:.0f}] "
        f"({int(stream.unfair.sum())} unfair, injected days "
        f"{attack_start:.0f}-{attack_start + attack_days:.0f})"
    )

    print("\n--- Mean change detector (30-day GLRT windows) ---")
    mc = MeanChangeDetector().analyze(stream)
    print(f"MC curve:   |{sparkline(mc.curve.values)}|")
    print(f"peaks: {len(mc.peaks)}, U-shape: {mc.u_shape is not None}")
    if mc.u_shape:
        print(
            f"suspicious interval: days {mc.u_shape.start_time:.1f} to "
            f"{mc.u_shape.stop_time:.1f}"
        )

    print("\n--- Arrival rate detectors (Poisson GLRT, two scales) ---")
    for kind in ("H-ARC", "L-ARC"):
        report = ArrivalRateDetector(kind).analyze(stream)
        print(f"{kind} curve: |{sparkline(report.curve.values)}|")
        print(
            f"  peaks: {len(report.peaks)}, U-shape: "
            f"{report.u_shape is not None}, alarm: {report.alarm}"
        )

    print("\n--- Histogram change detector (40-rating cluster windows) ---")
    hc = HistogramChangeDetector().analyze(stream)
    print(f"HC curve:   |{sparkline(hc.curve.values)}|")
    print(f"suspicious intervals: {len(hc.suspicious_intervals)}")

    print("\n--- Signal model change detector (AR(4) covariance fit) ---")
    me = ModelErrorDetector().analyze(stream)
    # Low model error is suspicious: invert for display.
    inverted = (me.curve.values.max() - me.curve.values) if len(me.curve) else me.curve.values
    print(f"ME curve*:  |{sparkline(inverted)}|   (*inverted: tall = predictable)")
    print(f"suspicious intervals: {len(me.suspicious_intervals)}")

    print("\n--- Joint detector (Figure 1 integration) ---")
    report = JointDetector().analyze(stream)
    unfair = stream.unfair
    recall = (report.suspicious & unfair).sum() / max(int(unfair.sum()), 1)
    collateral = (report.suspicious & ~unfair).sum()
    print(f"marked suspicious: {report.num_suspicious} ratings")
    print(f"attack recall: {recall:.0%}, fair ratings caught: {int(collateral)}")
    print(f"Path 1 intervals: {len(report.path1_intervals)}, "
          f"Path 2 intervals: {len(report.path2_intervals)}")
    for interval in report.intervals()[:3]:
        print(f"  suspicious: days {interval.start:.1f} to {interval.stop:.1f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
