# Convenience targets for the reproduction repository.

PYTHON ?= python
LEDGER ?= .repro/ledger.jsonl

.PHONY: install test lint bench bench-quick bench-baseline bench-detectors bench-parallel ledger-check examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:            ## compileall + ruff (when installed) + repro.lint invariants
	$(PYTHON) -m compileall -q src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping generic pass (config pinned in pyproject.toml)"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro.lint src --json .repro-lint-findings.json --sarif .repro-lint.sarif
	PYTHONPATH=src $(PYTHON) -m repro.lint.selfcheck

bench:           ## full 251-submission reproduction of every figure
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:     ## reduced population for a fast pass
	REPRO_POPULATION=60 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-baseline:  ## headline MP bench with metrics on -> BENCH_obs_baseline.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_obs_baseline.py

bench-detectors: ## detector hot path under the profiler -> BENCH_detectors.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_detectors.py

bench-parallel:  ## serial vs parallel vs warm-cache headline bench -> BENCH_parallel.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_parallel.py

ledger-check:    ## flag regressions in the newest recorded run (LEDGER=path)
	PYTHONPATH=src $(PYTHON) -m repro.cli runs check --ledger $(LEDGER)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/detector_tour.py
	$(PYTHON) examples/advanced_attacks.py
	$(PYTHON) examples/online_monitoring.py
	$(PYTHON) examples/challenge_simulation.py 30
	$(PYTHON) examples/attack_optimization.py 3

clean:
	rm -rf benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
