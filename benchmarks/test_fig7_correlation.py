"""E6 / Figure 7: order-strategy comparison on the top-MP datasets.

Paper claims, and what reproduces (see EXPERIMENTS.md for the full
discussion):

1. *Current attacks carry no exploitable correlation*: the original
   value-to-time assignment behaves like a random one (Section V-D's
   observation about the human submissions).  This reproduces: original
   MP tracks the random-reorder mean closely on most datasets.
2. *Ordering is a real attack dimension*: re-ordering which value lands at
   which time moves the MP of high-variance datasets noticeably.  This
   reproduces.
3. *The Procedure 3 heuristic beats the original ordering most of the
   time*: this does **not** reproduce under our detector stack -- the
   multi-scale L-ARC detector is ordering-blind, and the extreme-first
   pattern Procedure 3 degenerates to (for one-sided value sets) triggers
   the onset detectors earlier.  The bench records the measured rows; the
   deviation is documented rather than asserted away.
"""

import numpy as np
from conftest import record

from repro.experiments import run_correlation_figure


def test_fig7_correlation(benchmark, context, results_dir):
    figure = benchmark.pedantic(
        run_correlation_figure,
        args=(context, "P"),
        kwargs={"top_n": 10, "random_shuffles": 5},
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig7_correlation", figure.to_text())
    rows = figure.rows
    assert len(rows) == 10
    for row in rows:
        assert len(row.random_mps) == 5
    # Claim 1: originals behave like random orderings (no correlation in
    # current attacks) on the median dataset.
    relative_gap = [
        abs(row.original_mp - row.random_mean) / max(row.original_mp, 1e-9)
        for row in rows
    ]
    assert float(np.median(relative_gap)) < 0.25
    # Claim 2: ordering matters -- on at least one top dataset the spread
    # across orderings exceeds 10% of the original MP.
    spreads = []
    for row in rows:
        candidates = [row.original_mp, row.heuristic_mp, *row.random_mps]
        spreads.append(
            (max(candidates) - min(candidates)) / max(row.original_mp, 1e-9)
        )
    assert max(spreads) > 0.10
