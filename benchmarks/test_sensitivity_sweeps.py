"""Detector-threshold sensitivity sweeps (extension).

Regenerates the calibration evidence behind DESIGN.md §6: ROC-style
curves for the thresholds the paper leaves unspecified.  A notable
measured property: recall stays high across wide threshold ranges because
the Figure 1 integration is redundant (MC, H/L-ARC at two scales, segment
rules) -- weakening one channel rarely loses the attack -- while the
false-alarm rate is governed almost entirely by the per-channel
thresholds.  That redundancy is the quantitative argument for the paper's
multi-detector design.
"""

import numpy as np
from conftest import record

from repro.experiments.sensitivity import sweep_detector_parameter


def test_sensitivity_sweeps(benchmark, context, results_dir):
    def run():
        larc = sweep_detector_parameter(
            "larc_peak_threshold", [0.5, 2.0, 4.2, 8.0, 16.0],
            n_fair_worlds=2, n_attacks=3,
        )
        mc = sweep_detector_parameter(
            "mc_peak_threshold", [2.0, 4.0, 8.0, 16.0, 32.0],
            n_fair_worlds=2, n_attacks=3,
        )
        me = sweep_detector_parameter(
            "me_suspicious_threshold", [0.1, 0.4, 0.7],
            n_fair_worlds=2, n_attacks=3,
        )
        return larc, mc, me

    larc, mc, me = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        results_dir,
        "sensitivity_sweeps",
        "\n\n".join(r.to_text() for r in (larc, mc, me)),
    )
    for sweep in (larc, mc):
        # Raising a peak threshold never raises false alarms.
        assert np.all(np.diff(sweep.false_alarm_curve()) <= 1e-12)
        # The calibrated defaults sit at a sound operating point.
        assert sweep.false_alarm_curve()[2] < 0.01
        assert sweep.recall_curve()[2] > 0.8
    # Raising the ME threshold (more windows "predictable") can only add
    # false alarms.
    assert np.all(np.diff(me.false_alarm_curve()) >= -1e-12)
