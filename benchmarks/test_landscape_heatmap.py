"""Controlled MP landscape over the variance-bias plane (extension).

The controlled-experiment companion to Figures 2-4: a (bias, sigma) grid
probed with identical timing policy against SA and P.  Checks the same
region story as the scatter plots, free of population sampling noise:

- under SA, MP grows with |bias| (the large-bias row dominates);
- under P, high-variance columns retain more MP than low-variance
  columns at medium/large bias (variance is the evasion dimension).
"""

from conftest import record

from repro.analysis.landscape import sweep_landscape


def test_landscape_heatmap(benchmark, context, results_dir):
    challenge = context.challenge

    def run():
        sa = sweep_landscape(
            challenge, context.scheme("SA"),
            bias_values=(-4.0, -3.0, -2.0, -1.0),
            std_values=(0.1, 0.6, 1.2),
            probes=3, seed=41,
        )
        p = sweep_landscape(
            challenge, context.scheme("P"),
            bias_values=(-4.0, -3.0, -2.0, -1.0),
            std_values=(0.1, 0.6, 1.2),
            probes=3, seed=41,
        )
        return sa, p

    sa, p = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        results_dir, "landscape_heatmap", sa.to_text() + "\n\n" + p.to_text()
    )
    # SA: the largest-bias row dominates (means over sigma columns).
    sa_rows = sa.row_means()
    assert sa_rows[0] == max(sa_rows), "SA should be weakest against bias -4"
    # SA: bias is what matters; its peak bias is the extreme row.
    assert sa.peak[0] == -4.0
    # P: at medium/large bias, high variance beats low variance.
    p_grid = p.mp
    medium_rows = slice(0, 3)  # bias -4, -3, -2
    low_var = float(p_grid[medium_rows, 0].mean())
    high_var = float(p_grid[medium_rows, 2].mean())
    assert high_var > low_var, (
        f"P-scheme: high-variance mean MP {high_var:.3f} should exceed "
        f"low-variance {low_var:.3f}"
    )
    # P is uniformly a better defense than SA at the extreme-bias corner.
    assert p.mp[0, 0] < 0.5 * sa.mp[0, 0]
