"""E2 / Figure 3: variance-bias scatter under the SA-scheme.

Paper claim: with no defense, the best attack strategy is simply large
bias -- the winners concentrate in region R1.
"""

from conftest import record

from repro.analysis.bias_variance import Region
from repro.experiments import run_bias_variance_figure


def test_fig3_bias_variance_sa(benchmark, context, results_dir):
    figure = benchmark.pedantic(
        run_bias_variance_figure,
        args=(context, "SA", "tv1"),
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig3_bias_variance_sa", figure.to_text())
    assert figure.dominant_region is Region.R1, (
        f"SA winners should concentrate in R1; got {figure.winner_region_counts}"
    )
    assert figure.winner_centroid is not None
    bias, _std = figure.winner_centroid
    assert bias < -2.0, "SA winners should have large negative bias"
