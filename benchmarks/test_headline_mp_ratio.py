"""E7 / Section V-A headline: max MP under P vs SA vs BF.

Paper claim: "When using the P-scheme, the maximum MP value that the
attackers can achieve is about 1/3 of the maximum MP value when using the
other two schemes."  We check the shape (P substantially below both, same
order of magnitude of the ratio); EXPERIMENTS.md records the measured
value.
"""

from conftest import record

from repro.experiments import run_headline_comparison


def test_headline_mp_ratio(benchmark, context, results_dir):
    headline = benchmark.pedantic(
        run_headline_comparison, args=(context,), rounds=1, iterations=1
    )
    text = headline.to_text()
    record(results_dir, "headline_mp_ratio", text)
    assert headline.max_mp["P"] < headline.max_mp["SA"]
    assert headline.max_mp["P"] < headline.max_mp["BF"]
    assert headline.p_to_sa_ratio < 0.7, (
        f"P/SA max-MP ratio {headline.p_to_sa_ratio:.2f} should be well "
        "below 1 (paper: ~0.33)"
    )
