"""Boosting-attack analysis (the paper's deferred future work).

Section V-B claims boosting is less effective than downgrading because
the fair mean (~4 on a 0..5 scale) leaves little headroom, and that the
positive-bias half of the variance-bias plane has low "resolution".
Measured here: the SA headroom curve (boost MP saturates with |bias|,
downgrade MP grows), the UMP/LMP resolution ratio, and the nuance that
under the P-scheme detected downgrades can fall *below* the boost
ceiling.
"""

from conftest import record

from repro.experiments.boosting import run_boosting_analysis


def test_boosting_analysis(benchmark, context, results_dir):
    result = benchmark.pedantic(
        run_boosting_analysis, args=(context,), rounds=1, iterations=1
    )
    record(results_dir, "boosting_analysis", result.to_text())
    # Paper claim: without a defense, downgrading dominates boosting.
    assert result.boost_weaker_under_sa
    # Paper claim: the boost is ceiling-limited (flat in |bias| under SA).
    assert result.boost_saturates
    # Paper claim: the boost half of the plane has lower resolution than
    # the downgrade half.
    assert result.resolution_ratio < 1.0
