"""Shared fixtures for the benchmark harness.

The benches reproduce the paper's evaluation over one shared world and one
shared synthetic population.  Population size defaults to the paper's 251
submissions; set ``REPRO_POPULATION`` (environment variable) to a smaller
value for a quick pass.

Every bench writes the series/rows it reproduces to
``benchmarks/results/<experiment>.txt`` (also printed; visible with
``pytest -s``), so the reproduced "figures" survive the run.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = Path(__file__).parent / "results"


def _population_size() -> int:
    return int(os.environ.get("REPRO_POPULATION", "251"))


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The shared challenge world + population for all benches.

    Set ``REPRO_WORKERS`` to evaluate the population across processes
    (bit-identical results; see :mod:`repro.exec`).
    """
    return ExperimentContext(
        seed=2008,
        population_size=_population_size(),
        workers=int(os.environ.get("REPRO_WORKERS", "0")),
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Print and persist one experiment's reproduced output."""
    print()
    print(f"=== {name} ===")
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
