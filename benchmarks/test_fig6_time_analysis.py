"""E5 / Figure 6: MP versus average unfair-rating interval (P-scheme).

Paper claims: with monthly MP scoring and the signal-based defense there
is a *best* average rating interval (about 3 days in the paper's setup):
very concentrated attacks are detected, very spread attacks move the
monthly scores too little.
"""

from conftest import record

from repro.experiments import run_time_analysis_figure


def test_fig6_time_analysis(benchmark, context, results_dir):
    figure = benchmark.pedantic(
        run_time_analysis_figure,
        args=(context, "P", "tv1"),
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig6_time_analysis", figure.to_text())
    assert len(figure.points) >= 10, "need enough submissions on the product"
    # The envelope's peak lies strictly inside the interval range.
    assert figure.interior_optimum, (
        "MP-vs-interval envelope should peak at an interior interval "
        f"(best ~= {figure.best_interval:.2f} days)"
    )
    assert 0.5 <= figure.best_interval <= 10.0
