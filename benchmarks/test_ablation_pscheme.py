"""Ablation bench: contribution of each P-scheme design choice.

Not a paper figure -- this regenerates the design rationale DESIGN.md
records: removing Path 1, the long ARC window, or the trust layer must
cost defense strength on the canonical attack set.  (Path 2's contribution
is not exercised by this attack set: the calibrated Path 1 already covers
these attacks; Path 2 exists for alarm-only cases where the MC curve is
flattened but ME/HC still confirm.)
"""

from conftest import record

from repro.experiments.ablations import run_pscheme_ablation


def test_ablation_pscheme(benchmark, context, results_dir):
    result = benchmark.pedantic(
        run_pscheme_ablation, args=(context,), rounds=1, iterations=1
    )
    record(results_dir, "ablation_pscheme", result.to_text())
    full = result.mp["full"]
    # The full scheme beats plain averaging on every canonical attack.
    for attack, sa_mp in result.sa_mp.items():
        assert full[attack] < 0.5 * sa_mp, (
            f"{attack}: full P-scheme MP {full[attack]:.3f} vs SA {sa_mp:.3f}"
        )
    # Path 1 is load-bearing: removing it forfeits most of the defense.
    assert sum(result.mp["no-path1"].values()) > 2.0 * sum(full.values())
    # The long ARC window is what catches the whole-window drip.
    assert (
        result.mp["single-scale"]["whole-window drip"]
        > 2.0 * full["whole-window drip"]
    )
    # The trust layer contributes beyond raw filtering.
    assert sum(result.mp["filter-only"].values()) > sum(full.values())
