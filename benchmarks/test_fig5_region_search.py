"""E4 / Figure 5: Procedure 2 optimum-region search.

Paper claims: starting from the whole (bias in [-4, 0]) x (sigma in [0, 2])
plane with N = 4 subareas and m = 10 probes, the search shrinks onto a
medium-bias / high-variance region against the P-scheme (paper centre
about (-2.3, 1.56)), and the MP achieved there beats every challenge
submission.
"""

from conftest import record

from repro.experiments import run_region_search_figure


def test_fig5_region_search(benchmark, context, results_dir):
    figure = benchmark.pedantic(
        run_region_search_figure,
        args=(context, "P"),
        kwargs={"probes_per_subarea": 12, "n_subareas": 4},
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig5_region_search", figure.to_text())
    assert len(figure.search.rounds) >= 3, "search should take several rounds"
    bias, std = figure.search.best_point
    assert -4.0 <= bias <= 0.0 and 0.0 <= std <= 2.0
    # The paper's headline for this figure: the automatically found region
    # produces a larger MP than any human submission achieved.
    assert figure.beats_population, (
        f"search best MP {figure.search.best_mp:.3f} should beat the "
        f"population max {figure.population_max_mp:.3f}"
    )
