"""E1 / Figure 2: variance-bias scatter under the P-scheme.

Paper claim: the submissions with the largest MP values concentrate in
region R3 (medium bias, medium-to-large variance) when the signal-based
P-scheme defends.
"""

from conftest import record

from repro.analysis.bias_variance import Region
from repro.experiments import run_bias_variance_figure


def test_fig2_bias_variance_pscheme(benchmark, context, results_dir):
    figure = benchmark.pedantic(
        run_bias_variance_figure,
        args=(context, "P", "tv1"),
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig2_bias_variance_pscheme", figure.to_text())
    # Shape checks (paper Section V-B).
    counts = figure.winner_region_counts
    assert counts[Region.R3] + counts[Region.R2] >= counts[Region.R1], (
        "P-scheme winners should shift away from the pure large-bias "
        f"region; got {counts}"
    )
    assert figure.winner_centroid is not None
    _bias, std = figure.winner_centroid
    assert std > 0.3, "P-scheme winners should carry substantial variance"
