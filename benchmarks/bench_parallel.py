"""Parallel/caching benchmark: the headline comparison through repro.exec.

Runs the E7 headline comparison (P vs SA vs BF over one challenge world
and synthetic population) three ways --

1. **serial**: a plain ``workers=0`` context (the pre-engine behaviour);
2. **parallel, cold cache**: ``workers=N`` (default 4, override with
   ``REPRO_WORKERS``) with an on-disk MP cache being written;
3. **serial, warm cache**: a fresh context replaying every evaluation
   from the disk cache written by pass 2;

-- verifies all three produce **bit-identical** MP results, and writes
timings plus speedup ratios to ``BENCH_parallel.json`` at the repo root.

``parallel_speedup`` measures process fan-out and is bounded by the
machine's core count (recorded as ``cpu_count`` -- on a single-core box
expect ~1x); ``cache_speedup`` measures the content-addressed replay
path and is hardware-independent.

Population size defaults to 30 (a quick pass); set ``REPRO_POPULATION``
to 251 for the full paper-scale run, matching the pytest benches.

Usage::

    make bench-parallel
    # or
    PYTHONPATH=src python benchmarks/bench_parallel.py [out.json]
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments import ExperimentContext, run_headline_comparison
from repro.obs.ledger import runtime_environment

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
SEED = 2008
SCHEMES = ("P", "SA", "BF")


def _run(population: int, workers: int = 0, cache_dir=None):
    """One cold-context headline run; returns (seconds, context)."""
    context = ExperimentContext(
        seed=SEED,
        population_size=population,
        workers=workers,
        cache_dir=cache_dir,
    )
    start = time.perf_counter()
    comparison = run_headline_comparison(context)
    seconds = time.perf_counter() - start
    context.close()
    return seconds, context, comparison


def _identical(context_a, context_b) -> bool:
    """Whether two contexts hold bit-identical MP results everywhere."""
    for scheme in SCHEMES:
        results_a = context_a.results_for(scheme)
        results_b = context_b.results_for(scheme)
        if set(results_a) != set(results_b):
            return False
        for sid, a in results_a.items():
            b = results_b[sid]
            if a.total != b.total or a.per_product != b.per_product:
                return False
            if set(a.deltas) != set(b.deltas):
                return False
            for pid in a.deltas:
                if not np.array_equal(a.deltas[pid], b.deltas[pid]):
                    return False
    return True


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUT
    population = int(os.environ.get("REPRO_POPULATION", "30"))
    workers = int(os.environ.get("REPRO_WORKERS", "4"))

    serial_seconds, serial_ctx, serial_cmp = _run(population)

    with tempfile.TemporaryDirectory(prefix="repro-mp-cache-") as cache_dir:
        parallel_seconds, parallel_ctx, parallel_cmp = _run(
            population, workers=workers, cache_dir=cache_dir
        )
        warm_seconds, warm_ctx, warm_cmp = _run(population, cache_dir=cache_dir)
        identical_parallel = _identical(serial_ctx, parallel_ctx)
        identical_warm = _identical(serial_ctx, warm_ctx)

    # Machine/interpreter/commit facts make BENCH files comparable
    # across hosts: a ~1x "speedup" on a 1-CPU box is expected, not a
    # regression, and only records from the same git SHA are peers.
    # ``cpu_bound`` makes that explicit in the record itself: with more
    # workers than cores, process fan-out cannot beat serial.
    cpu_count = os.cpu_count()
    cpu_bound = bool(cpu_count is not None and workers > cpu_count)
    payload = {
        "benchmark": "headline_mp_comparison_parallel",
        "population": population,
        "workers": workers,
        "env": runtime_environment(),
        "cpu_count": cpu_count,
        "cpu_bound": cpu_bound,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else None
        ),
        "warm_cache_seconds": warm_seconds,
        "cache_speedup": serial_seconds / warm_seconds if warm_seconds else None,
        "identical_parallel": identical_parallel,
        "identical_warm_cache": identical_warm,
        "max_mp": serial_cmp.max_mp,
    }
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out_path}")
    if cpu_bound:
        print(
            f"note: {workers} workers on {cpu_count} CPU(s) -- the run is "
            "cpu-bound, so parallel_speedup ~1x reflects core starvation, "
            "not a regression (see cpu_bound in the record)"
        )
    if not (identical_parallel and identical_warm):
        print("ERROR: parallel or cached results diverged from serial")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
