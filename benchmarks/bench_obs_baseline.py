"""Observability baseline: the headline MP benchmark with metrics on.

Runs the E7 headline comparison (P vs SA vs BF over one challenge world
and synthetic population) three times -- once with the no-op metrics
sink to measure the uninstrumented wall clock, once with a collecting
registry, once with the registry plus the sampling profiler -- and
writes timings, counters, the instrumentation overhead ratio, and the
profiler overhead ratio (instrumented+profiled over instrumented) to
``BENCH_obs_baseline.json`` at the repo root.  This file seeds the perf
trajectory: future PRs compare their stage timings and cache hit rates
against it.

A fourth pass measures the time-series recording path: the online
challenge replay (epoch closes snapshotting the registry, streaming
JSONL, evaluating the default alert ruleset) against the same replay
with no recorder attached -- ``series_overhead_ratio`` in the payload,
asserted < 1.05 by the slow-marked benchmark test.

Population size defaults to 30 (a quick pass); set ``REPRO_POPULATION``
to 251 for the full paper-scale run, matching the pytest benches.

Usage::

    make bench-baseline
    # or
    PYTHONPATH=src python benchmarks/bench_obs_baseline.py [out.json]
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.aggregation import PScheme
from repro.experiments import ExperimentContext, run_headline_comparison
from repro.marketplace.challenge import RatingChallenge
from repro.obs import (
    DEFAULT_RULES_PATH,
    AlertEngine,
    MetricsRegistry,
    MetricsStreamWriter,
    SpanProfiler,
    TimeSeriesRecorder,
    load_rules,
    registry_to_dict,
    use_registry,
)
from repro.obs.profile import attributed_fraction

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs_baseline.json"


def _run(population: int, registry=None, profile: bool = False) -> float:
    """One headline run from a cold context; returns wall seconds."""
    context = ExperimentContext(seed=2008, population_size=population)
    start = time.perf_counter()
    with use_registry(registry):
        if profile:
            with SpanProfiler(registry):
                run_headline_comparison(context)
        else:
            run_headline_comparison(context)
    return time.perf_counter() - start


def _replay_once(challenge, with_series: bool) -> float:
    """One online replay under a collecting registry; wall seconds.

    ``with_series`` attaches the full recording stack an operator would
    run: per-epoch snapshots, a JSONL stream sink, and the default
    alert ruleset.
    """
    registry = MetricsRegistry()
    recorder = sink = None
    if with_series:
        handle = tempfile.NamedTemporaryFile(
            suffix=".jsonl", delete=False
        )
        handle.close()
        sink = MetricsStreamWriter(handle.name)
        recorder = TimeSeriesRecorder(
            sink=sink,
            engine=AlertEngine(load_rules(DEFAULT_RULES_PATH)),
        )
        registry.attach_series(recorder)
    start = time.perf_counter()
    challenge.replay_online(PScheme(), registry=registry)
    elapsed = time.perf_counter() - start
    if sink is not None:
        sink.close()
        os.unlink(sink.path)
    return elapsed


def measure_series_overhead(repeats: int = 5) -> dict:
    """Best-of-``repeats`` online-replay timings with and without the
    series recorder; the ratio is what ``--metrics-stream`` costs.

    The two variants run *interleaved* (plain, series, plain, series,
    ...) so slow machine-load drift hits both equally instead of
    biasing whichever variant ran last, and each timed sample sums two
    back-to-back replays so scheduler jitter averages out: the true
    recording cost is microseconds per epoch, far below the run-to-run
    noise of a single ~0.25s replay.
    """
    challenge = RatingChallenge(seed=2008)
    _replay_once(challenge, False)  # warm caches outside the timings
    _replay_once(challenge, True)
    plain_times = []
    recorded_times = []
    for _ in range(repeats):
        plain_times.append(
            _replay_once(challenge, False) + _replay_once(challenge, False)
        )
        recorded_times.append(
            _replay_once(challenge, True) + _replay_once(challenge, True)
        )
    plain = min(plain_times)
    recorded = min(recorded_times)
    return {
        "replay_seconds": plain,
        "replay_with_series_seconds": recorded,
        "series_overhead_ratio": recorded / plain if plain else None,
    }


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUT
    population = int(os.environ.get("REPRO_POPULATION", "30"))

    # Pass 1: no sink configured -- the near-free instrumentation path.
    baseline_seconds = _run(population, registry=None)
    # Pass 2: collecting registry -- full telemetry.
    registry = MetricsRegistry()
    instrumented_seconds = _run(population, registry=registry)
    # Pass 3: collecting registry plus the sampling profiler at the
    # default rate -- what --profile-out costs on top of telemetry.
    profiled_registry = MetricsRegistry()
    profiled_seconds = _run(population, registry=profiled_registry,
                            profile=True)

    # Pass 4: the online replay with and without series recording.
    series = measure_series_overhead()

    payload = {
        "benchmark": "headline_mp_comparison",
        "population": population,
        "baseline_seconds": baseline_seconds,
        "instrumented_seconds": instrumented_seconds,
        "overhead_ratio": (
            instrumented_seconds / baseline_seconds if baseline_seconds else None
        ),
        "profiled_seconds": profiled_seconds,
        "profiler_overhead_ratio": (
            profiled_seconds / instrumented_seconds
            if instrumented_seconds else None
        ),
        "profile_attributed_fraction": attributed_fraction(
            profiled_registry.profile
        ),
        **series,
        "metrics": registry_to_dict(registry),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    counters = payload["metrics"]["counters"]
    print(f"population={population}")
    print(f"baseline      : {baseline_seconds:.2f}s (no metrics sink)")
    print(f"instrumented  : {instrumented_seconds:.2f}s "
          f"(x{payload['overhead_ratio']:.3f})")
    print(f"profiled      : {profiled_seconds:.2f}s "
          f"(x{payload['profiler_overhead_ratio']:.3f} over instrumented, "
          f"{payload['profile_attributed_fraction']:.1%} attributed)")
    print(f"online replay : {series['replay_seconds']:.2f}s plain, "
          f"{series['replay_with_series_seconds']:.2f}s with series "
          f"(x{series['series_overhead_ratio']:.3f})")
    hits = counters.get("pscheme.report_cache.hits", 0)
    misses = counters.get("pscheme.report_cache.misses", 0)
    total = hits + misses
    if total:
        print(f"report cache  : {hits:.0f}/{total:.0f} hits "
              f"({100.0 * hits / total:.1f}%)")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
