"""Observability baseline: the headline MP benchmark with metrics on.

Runs the E7 headline comparison (P vs SA vs BF over one challenge world
and synthetic population) three times -- once with the no-op metrics
sink to measure the uninstrumented wall clock, once with a collecting
registry, once with the registry plus the sampling profiler -- and
writes timings, counters, the instrumentation overhead ratio, and the
profiler overhead ratio (instrumented+profiled over instrumented) to
``BENCH_obs_baseline.json`` at the repo root.  This file seeds the perf
trajectory: future PRs compare their stage timings and cache hit rates
against it.

Population size defaults to 30 (a quick pass); set ``REPRO_POPULATION``
to 251 for the full paper-scale run, matching the pytest benches.

Usage::

    make bench-baseline
    # or
    PYTHONPATH=src python benchmarks/bench_obs_baseline.py [out.json]
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.experiments import ExperimentContext, run_headline_comparison
from repro.obs import (
    MetricsRegistry,
    SpanProfiler,
    registry_to_dict,
    use_registry,
)
from repro.obs.profile import attributed_fraction

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs_baseline.json"


def _run(population: int, registry=None, profile: bool = False) -> float:
    """One headline run from a cold context; returns wall seconds."""
    context = ExperimentContext(seed=2008, population_size=population)
    start = time.perf_counter()
    with use_registry(registry):
        if profile:
            with SpanProfiler(registry):
                run_headline_comparison(context)
        else:
            run_headline_comparison(context)
    return time.perf_counter() - start


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUT
    population = int(os.environ.get("REPRO_POPULATION", "30"))

    # Pass 1: no sink configured -- the near-free instrumentation path.
    baseline_seconds = _run(population, registry=None)
    # Pass 2: collecting registry -- full telemetry.
    registry = MetricsRegistry()
    instrumented_seconds = _run(population, registry=registry)
    # Pass 3: collecting registry plus the sampling profiler at the
    # default rate -- what --profile-out costs on top of telemetry.
    profiled_registry = MetricsRegistry()
    profiled_seconds = _run(population, registry=profiled_registry,
                            profile=True)

    payload = {
        "benchmark": "headline_mp_comparison",
        "population": population,
        "baseline_seconds": baseline_seconds,
        "instrumented_seconds": instrumented_seconds,
        "overhead_ratio": (
            instrumented_seconds / baseline_seconds if baseline_seconds else None
        ),
        "profiled_seconds": profiled_seconds,
        "profiler_overhead_ratio": (
            profiled_seconds / instrumented_seconds
            if instrumented_seconds else None
        ),
        "profile_attributed_fraction": attributed_fraction(
            profiled_registry.profile
        ),
        "metrics": registry_to_dict(registry),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    counters = payload["metrics"]["counters"]
    print(f"population={population}")
    print(f"baseline      : {baseline_seconds:.2f}s (no metrics sink)")
    print(f"instrumented  : {instrumented_seconds:.2f}s "
          f"(x{payload['overhead_ratio']:.3f})")
    print(f"profiled      : {profiled_seconds:.2f}s "
          f"(x{payload['profiler_overhead_ratio']:.3f} over instrumented, "
          f"{payload['profile_attributed_fraction']:.1%} attributed)")
    hits = counters.get("pscheme.report_cache.hits", 0)
    misses = counters.get("pscheme.report_cache.misses", 0)
    total = hits + misses
    if total:
        print(f"report cache  : {hits:.0f}/{total:.0f} hits "
              f"({100.0 * hits / total:.1f}%)")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
