"""Forgetting-factor trade-off (extension of the trust substrate).

Regenerates the redemption-vs-collateral trade-off DESIGN.md's trust
section discusses: evidence fading lets falsely-marked honest raters
recover their voice, at the price of letting a caught cohort strike
again.  Both directions must be monotone in the factor.
"""

import numpy as np
from conftest import record

from repro.experiments.forgetting import run_forgetting_study


def test_forgetting_tradeoff(benchmark, context, results_dir):
    study = benchmark.pedantic(
        run_forgetting_study, args=(context,), rounds=1, iterations=1
    )
    record(results_dir, "forgetting_tradeoff", study.to_text())
    mp = np.asarray(study.two_strike_mp)
    trust = np.asarray(study.marked_rater_final_trust)
    # Factors sweep downward from 1.0: more fading.
    assert study.factors[0] == 1.0
    # More fading never helps the defender against the two-strike attack.
    assert np.all(np.diff(mp) >= -1e-9)
    # More fading always helps the falsely-marked honest rater.
    assert np.all(np.diff(trust) > 0)
    # Without fading the victim's trust barely clears the weightless 0.5.
    assert trust[0] < 0.65
    assert trust[-1] > 0.7
