"""Detector hot-path baseline: the joint detector under the profiler.

Runs :class:`~repro.detectors.JointDetector` over every product stream
of every attacked dataset in a seeded challenge population, with a
collecting registry and the span-attributed sampling profiler on, and
writes ``BENCH_detectors.json`` at the repo root:

- per sub-detector (MC, H-ARC, L-ARC, HC, ME): call count plus p50/p90
  wall-clock seconds from the ``detector.<kind>.seconds`` histograms;
- aggregate ``analyze_batch`` wall time per population (the batching win,
  distinct from the per-detector incremental win);
- the top self-time frames the profiler attributed to detector spans;
- the overall sample attribution fraction and sampling rate.

Detection runs through :meth:`JointDetector.analyze_batch` -- the
production path since the batched fast-path rewrite -- so the per-kind
percentiles reflect what serial, parallel, and online runs actually pay.

The committed file pins the detector hot-path baseline: future PRs that
touch the detectors re-run ``make bench-detectors`` and diff the per-kind
percentiles and the frame ranking.  A speedscope export of the same
profile lands next to the other benchmark artifacts in
``benchmarks/results/``.

Population size defaults to 30 (a quick pass); set ``REPRO_POPULATION``
to 251 for the full paper-scale run, matching the pytest benches.

Usage::

    make bench-detectors
    # or
    PYTHONPATH=src python benchmarks/bench_detectors.py [out.json]
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.attacks.population import PopulationConfig, generate_population
from repro.detectors import JointDetector
from repro.marketplace.challenge import RatingChallenge
from repro.obs import MetricsRegistry, SpanProfiler, use_registry
from repro.obs.profile import attributed_fraction, top_frames, write_speedscope

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_detectors.json"
SPEEDSCOPE_OUT = (
    Path(__file__).resolve().parent / "results" / "detectors.speedscope.json"
)
DETECTOR_KINDS = ("MC", "H-ARC", "L-ARC", "HC", "ME")


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUT
    population_size = int(os.environ.get("REPRO_POPULATION", "30"))

    challenge = RatingChallenge(seed=2008)
    population = generate_population(
        challenge, PopulationConfig(size=population_size), seed=2009
    )

    registry = MetricsRegistry()
    detector = JointDetector(registry=registry)
    streams = 0
    batch_seconds = []
    start = time.perf_counter()
    with use_registry(registry), SpanProfiler(registry):
        for submission in population:
            dataset = challenge.attacked_dataset(submission)
            batch_start = time.perf_counter()
            reports = detector.analyze_batch(dataset)
            batch_seconds.append(time.perf_counter() - batch_start)
            streams += len(reports)
    wall_seconds = time.perf_counter() - start

    detectors = {}
    for kind in DETECTOR_KINDS:
        hist = registry.histograms.get(f"detector.{kind}.seconds")
        calls = registry.counter_value(f"detector.{kind}.calls")
        if hist is None or not calls:
            continue
        detectors[kind] = {
            "calls": calls,
            "p50_seconds": hist.percentile(50),
            "p90_seconds": hist.percentile(90),
        }

    samples = registry.profile
    total_batch = sum(batch_seconds)
    payload = {
        "benchmark": "detector_hot_path",
        "population": population_size,
        "streams_analyzed": streams,
        "wall_seconds": wall_seconds,
        "analyze_batch": {
            "datasets": len(batch_seconds),
            "total_seconds": total_batch,
            "mean_seconds_per_dataset": (
                total_batch / len(batch_seconds) if batch_seconds else 0.0
            ),
        },
        "hz": registry.gauges["profile.hz"].value,
        "total_samples": sum(samples.values()),
        "attributed_fraction": attributed_fraction(samples),
        "detectors": detectors,
        "top_self_frames": [
            {"frame": frame, "samples": count}
            for frame, count in top_frames(samples, 10)
        ],
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    SPEEDSCOPE_OUT.parent.mkdir(parents=True, exist_ok=True)
    write_speedscope(
        samples, SPEEDSCOPE_OUT, hz=payload["hz"], name="detector hot path"
    )

    print(f"population={population_size} streams={streams} "
          f"wall={wall_seconds:.2f}s")
    print(f"analyze_batch: {len(batch_seconds)} datasets in "
          f"{total_batch:.2f}s "
          f"({payload['analyze_batch']['mean_seconds_per_dataset'] * 1e3:.1f}ms "
          f"per dataset)")
    print(f"profile: {payload['total_samples']:.0f} samples at "
          f"{payload['hz']:.0f} Hz, "
          f"{payload['attributed_fraction']:.1%} span-attributed")
    for kind, stats in detectors.items():
        print(f"  {kind:6s} calls={stats['calls']:.0f}  "
              f"p50={stats['p50_seconds'] * 1e3:.3f}ms  "
              f"p90={stats['p90_seconds'] * 1e3:.3f}ms")
    print(f"wrote {out_path}")
    print(f"wrote {SPEEDSCOPE_OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
