"""E8 / Figure 1 behaviour: joint-detector operating points.

Exercises both detection paths on scripted attacks and measures the
false-alarm rate on fair-only data (Section IV-F motivates the integration
precisely by false-alarm control).
"""

from conftest import record

from repro.experiments import run_operating_points


def test_detector_operating_points(benchmark, context, results_dir):
    points = benchmark.pedantic(
        run_operating_points, args=(context,), rounds=1, iterations=1
    )
    record(results_dir, "detector_operating_points", points.to_text())
    assert points.false_alarm_rate < 0.01
    rows = {name: (recall, collateral) for name, recall, collateral in points.attack_rows}
    assert rows["strong downgrade (path 1)"][0] > 0.8
    assert rows["burst downgrade"][0] > 0.8
    for _name, (_recall, collateral) in rows.items():
        assert collateral < 0.1
