"""Gate a fresh detector bench run against the committed baseline.

Compares a freshly produced ``BENCH_detectors.json`` (first argument)
against the committed reference file (second argument) and fails when any
per-detector p50 regressed more than ``ALLOWED_RATIO`` (1.5x), subject to
a noise floor: p50s below ``NOISE_FLOOR_SECONDS`` in both records are
too close to timer resolution on shared CI runners to gate on.

Structural checks from the original smoke job are kept here too, so the
CI step stays a single invocation::

    python benchmarks/check_detector_regression.py fresh.json committed.json
"""

import json
import sys
from pathlib import Path

ALLOWED_RATIO = 1.5
NOISE_FLOOR_SECONDS = 0.010


def check_structure(fresh: dict) -> None:
    for key in (
        "benchmark",
        "detectors",
        "analyze_batch",
        "top_self_frames",
        "attributed_fraction",
        "hz",
        "wall_seconds",
    ):
        assert key in fresh, f"missing {key}"
    assert fresh["benchmark"] == "detector_hot_path"
    assert set(fresh["detectors"]), "no detector stats recorded"
    for stats in fresh["detectors"].values():
        assert stats["calls"] > 0
        assert stats["p90_seconds"] >= stats["p50_seconds"] >= 0
    batch = fresh["analyze_batch"]
    assert batch["datasets"] > 0
    assert batch["total_seconds"] >= 0


def check_regressions(fresh: dict, committed: dict) -> list:
    failures = []
    for kind, ref in committed.get("detectors", {}).items():
        now = fresh["detectors"].get(kind)
        if now is None:
            failures.append(f"{kind}: missing from fresh run")
            continue
        ref_p50 = float(ref["p50_seconds"])
        now_p50 = float(now["p50_seconds"])
        # Below the noise floor, timer jitter dominates: only gate once
        # the fresh p50 clears the floor outright.
        limit = max(ALLOWED_RATIO * ref_p50, NOISE_FLOOR_SECONDS)
        if now_p50 > limit:
            failures.append(
                f"{kind}: p50 {now_p50 * 1e3:.3f}ms exceeds limit "
                f"{limit * 1e3:.3f}ms "
                f"(committed {ref_p50 * 1e3:.3f}ms x {ALLOWED_RATIO})"
            )
    return failures


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    fresh = json.loads(Path(sys.argv[1]).read_text())
    committed = json.loads(Path(sys.argv[2]).read_text())
    check_structure(fresh)
    failures = check_regressions(fresh, committed)
    print("structure OK:", sorted(fresh["detectors"]))
    for kind in sorted(committed.get("detectors", {})):
        ref = committed["detectors"][kind]
        now = fresh["detectors"].get(kind, {})
        print(
            f"  {kind:6s} committed p50={float(ref['p50_seconds']) * 1e3:.3f}ms  "
            f"fresh p50={float(now.get('p50_seconds', float('nan'))) * 1e3:.3f}ms"
        )
    if failures:
        print("REGRESSION:")
        for failure in failures:
            print(" -", failure)
        return 1
    print("no per-detector p50 regression beyond "
          f"{ALLOWED_RATIO}x (noise floor {NOISE_FLOOR_SECONDS * 1e3:.0f}ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
