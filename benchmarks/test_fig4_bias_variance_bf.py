"""E3 / Figure 4: variance-bias scatter under the BF-scheme.

Paper claim: the majority-rule beta filter only removes unfair ratings
with large bias *and* very small variance, so winners stay at large bias
but need non-trivial variance (compare the bottom-left corners of
Figures 3 and 4).
"""

from conftest import record

from repro.experiments import run_bias_variance_figure


def test_fig4_bias_variance_bf(benchmark, context, results_dir):
    figure = benchmark.pedantic(
        run_bias_variance_figure,
        args=(context, "BF", "tv1"),
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig4_bias_variance_bf", figure.to_text())
    assert figure.winner_centroid is not None
    bf_bias, bf_std = figure.winner_centroid
    # BF winners still carry large bias (the filter fails beyond the
    # extreme corner) ...
    assert bf_bias < -1.0
    # ... but the extreme zero-variance corner is cleaned out: winners
    # need more variance than the SA winners do.
    sa_figure = run_bias_variance_figure(context, "SA", "tv1")
    assert bf_std >= sa_figure.winner_centroid[1] - 0.15
