"""Population-size convergence of the figure conclusions (methodology).

How many challenge submissions does the Figure 3 winner-region conclusion
need?  Measured on nested populations under the SA-scheme: tiny
populations (20) can report the *wrong* dominant region; the conclusion
stabilizes at R1 well before the paper's 251, with the winner centroid
marching toward the large-bias/low-variance corner as the sample grows.
"""

from conftest import record

from repro.analysis.bias_variance import Region
from repro.experiments.convergence import run_convergence_study


def test_convergence_study(benchmark, context, results_dir):
    scheme = context.scheme("SA")

    def run():
        return run_convergence_study(
            scheme, sizes=(20, 40, 80, 160), challenge=context.challenge
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    record(results_dir, "convergence_study", study.to_text())
    # The conclusion at the largest size is the paper's R1.
    assert study.dominant_regions[-1] is Region.R1
    # It stabilizes strictly before the largest size.
    stable = study.stable_from()
    assert stable is not None and stable < study.sizes[-1]
    # The winner centroid's |bias| grows with the sample (extremes arrive).
    biases = [c[0] for c in study.centroids if c is not None]
    assert biases[-1] < biases[0]
