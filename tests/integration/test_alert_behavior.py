"""The default alert ruleset's operating contract, end to end.

Silent on seeded fair challenge worlds; fires -- with a reported
detection latency in epochs -- when a concentrated rating burst hits
the online replay.  This is the behavioral spec behind
``src/repro/obs/alert_rules/default.toml``: a ruleset that false-alarms
on fair worlds is worse than no ruleset at all.
"""

import pytest

from repro import (
    AttackGenerator,
    AttackSpec,
    ConcentratedBurst,
    ProductTarget,
    PScheme,
    RatingChallenge,
)
from repro.obs import (
    DEFAULT_RULES_PATH,
    AlertEngine,
    MetricsRegistry,
    TimeSeriesRecorder,
    load_rules,
)


def replay_with_default_rules(challenge, submission=None):
    """Online replay with the shipped ruleset attached; returns engine."""
    registry = MetricsRegistry()
    engine = AlertEngine(load_rules(DEFAULT_RULES_PATH), registry=registry)
    recorder = TimeSeriesRecorder(engine=engine)
    registry.attach_series(recorder)
    challenge.replay_online(
        PScheme(), submission=submission, registry=registry
    )
    return engine


def burst_submission(challenge, seed):
    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        seed=seed + 100,
    )
    return generator.generate(
        [ProductTarget("tv1", +1)],
        AttackSpec(3.0, 0.3, 50, ConcentratedBurst(center=45.0, width=0.5)),
        submission_id="burst",
    )


class TestDefaultRulesetBehavior:
    @pytest.mark.parametrize("seed", [9, 2008, 42])
    def test_silent_on_fair_worlds(self, seed):
        engine = replay_with_default_rules(RatingChallenge(seed=seed))
        assert engine.events == []
        assert engine.firing() == []

    def test_fires_on_concentrated_burst(self):
        challenge = RatingChallenge(seed=9)
        engine = replay_with_default_rules(
            challenge, submission=burst_submission(challenge, seed=9)
        )
        firing = {
            event.rule: event
            for event in engine.events
            if event.state == "firing"
        }
        assert "drift-warnings-moving" in firing
        assert "drift-dispersion-burst" in firing
        # The burst lands inside epoch 1's window and is flagged the
        # epoch it completes: detection latency is reported in epochs.
        event = firing["drift-warnings-moving"]
        assert event.epoch == 1
        assert event.latency_epochs == 0
