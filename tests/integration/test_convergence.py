"""Integration tests for the convergence study machinery."""

import pytest

from repro.aggregation import SimpleAveragingScheme
from repro.analysis.bias_variance import Region
from repro.errors import ValidationError
from repro.experiments.convergence import ConvergenceStudy, run_convergence_study


@pytest.fixture(scope="module")
def study():
    return run_convergence_study(
        SimpleAveragingScheme(), sizes=(20, 40, 80), seed=2008
    )


class TestConvergenceStudy:
    def test_sizes_sorted_and_deduped(self):
        result = run_convergence_study(
            SimpleAveragingScheme(), sizes=(40, 20, 40), seed=2008
        )
        assert result.sizes == (20, 40)

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            run_convergence_study(SimpleAveragingScheme(), sizes=())
        with pytest.raises(ValidationError):
            run_convergence_study(SimpleAveragingScheme(), sizes=(2,))

    def test_outputs_aligned(self, study):
        assert len(study.dominant_regions) == len(study.sizes)
        assert len(study.centroids) == len(study.sizes)

    def test_final_conclusion_r1_under_sa(self, study):
        assert study.dominant_regions[-1] is Region.R1

    def test_stable_from_semantics(self):
        made = ConvergenceStudy(
            scheme_name="SA",
            product_id="tv1",
            sizes=(10, 20, 40),
            dominant_regions=(Region.R3, Region.R1, Region.R1),
            centroids=((-1.0, 0.9), (-2.0, 0.4), (-3.0, 0.2)),
        )
        assert made.stable_from() == 20

    def test_stable_from_none_when_unstable(self):
        made = ConvergenceStudy(
            scheme_name="SA",
            product_id="tv1",
            sizes=(10, 20),
            dominant_regions=(Region.R1, None),
            centroids=((-1.0, 0.9), None),
        )
        assert made.stable_from() is None

    def test_to_text(self, study):
        text = study.to_text()
        assert "convergence" in text
        assert str(study.sizes[0]) in text

    def test_nested_prefixes_share_evaluations(self, study):
        # With nested populations the centroids must differ across sizes
        # only by the *added* submissions; a crude consistency check is
        # that the 40-prefix includes the 20-prefix's winners' influence:
        # the centroid cannot jump outside the plane.
        for centroid in study.centroids:
            if centroid is None:
                continue
            bias, std = centroid
            assert -4.0 <= bias <= 1.0
            assert 0.0 <= std <= 2.0
