"""Serial and parallel runs must export *identical* merged telemetry.

The capsule mechanism's contract: with ``hermetic_telemetry`` on, every
quality counter, gauge, and histogram summary merged into the parent
registry is the same whether tasks ran inline (``workers=0``) or across
a process pool (``workers=2``) -- only the ``exec.*`` pool bookkeeping
namespace may differ.  These tests pin that contract, plus the CLI
surfaces built on it: ``--trace-out`` writes a structurally valid
Perfetto trace, and ``repro runs check`` flags an injected regression
against a ledger baseline.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.context import ExperimentContext
from repro.obs import MetricsRegistry, TelemetryCapsule, read_trace, set_registry
from repro.obs.ledger import RunLedger

SEED = 2008
POP = 6

#: Pool/dispatch bookkeeping: legitimately differs between topologies.
EXEC_PREFIX = "exec."


def merged_telemetry(workers):
    """Run the P-scheme population under a fresh registry; return snapshot."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        context = ExperimentContext(
            seed=SEED,
            population_size=POP,
            workers=workers,
            hermetic_telemetry=True,
        )
        results = context.results_for("P")
        context.close()
    finally:
        set_registry(previous)
    return registry, results


def comparable_counters(registry):
    return {
        name: value
        for name, value in registry.snapshot()["counters"].items()
        if not name.startswith(EXEC_PREFIX)
    }


def comparable_histograms(registry):
    """Full five-number summaries for every non-exec histogram.

    Timing histograms (``*.seconds``) carry wall-clock noise, so only
    their observation *counts* are comparable; value histograms must
    match exactly.
    """
    counts, values = {}, {}
    for name, hist in registry.histograms.items():
        if name.startswith(EXEC_PREFIX) or name.startswith("span.exec."):
            continue
        counts[name] = hist.count
        if not name.endswith(".seconds"):
            values[name] = hist.summary()
    return counts, values


class TestSerialParallelTelemetryParity:
    @pytest.fixture(scope="class")
    def serial(self):
        return merged_telemetry(workers=0)

    @pytest.fixture(scope="class")
    def parallel(self):
        return merged_telemetry(workers=2)

    def test_results_still_bit_identical(self, serial, parallel):
        _, serial_results = serial
        _, parallel_results = parallel
        assert set(serial_results) == set(parallel_results)
        for sid in serial_results:
            assert serial_results[sid].total == parallel_results[sid].total

    def test_counters_identical_modulo_exec(self, serial, parallel):
        serial_counters = comparable_counters(serial[0])
        parallel_counters = comparable_counters(parallel[0])
        assert serial_counters == parallel_counters
        # The comparison is not vacuous: detection/trust pipelines fired.
        assert any(n.startswith("detector.") for n in serial_counters)

    def test_quality_scorecard_counters_identical(self, serial, parallel):
        """Ground-truth confusion counters are bit-identical at any
        worker count -- the scorecard join travels through capsules."""
        pick = lambda reg: {  # noqa: E731
            n: v
            for n, v in comparable_counters(reg).items()
            if n.startswith("quality.")
        }
        serial_quality = pick(serial[0])
        assert serial_quality == pick(parallel[0])
        # Non-vacuous: the P-scheme run emitted real confusion cells.
        assert serial_quality.get("quality.scorecards", 0) > 0
        assert any(
            name.endswith((".tp", ".fp", ".fn", ".tn"))
            for name in serial_quality
        )

    def test_gauges_identical_modulo_exec(self, serial, parallel):
        gauges = lambda reg: {  # noqa: E731
            n: v
            for n, v in reg.snapshot()["gauges"].items()
            if not n.startswith(EXEC_PREFIX)
        }
        assert gauges(serial[0]) == gauges(parallel[0])

    def test_histograms_identical_modulo_exec_and_timing(
        self, serial, parallel
    ):
        serial_counts, serial_values = comparable_histograms(serial[0])
        parallel_counts, parallel_values = comparable_histograms(parallel[0])
        assert serial_counts == parallel_counts
        assert serial_values == parallel_values
        assert serial_values  # non-vacuous: value histograms were recorded

    def test_worker_spans_reparented_under_dispatch(self, parallel):
        registry, _ = parallel
        paths = {record.path for record in registry.spans}
        assert any(p.startswith("exec.map.exec.task.") for p in paths)
        # At least one span came back from a different process.
        assert any(record.pid for record in registry.spans)


class TestCapsuleProfileMergeParity:
    """Profiles merged through capsules are topology-independent.

    Live sample *counts* are timing noise, so parity is pinned on
    synthetic capsules: the same task capsules folded into a parent in
    task order must produce a bit-identical merged profile no matter how
    the pool chunked them -- and even under arbitrary completion order,
    because per-key counter addition commutes.
    """

    def _task_capsules(self, count=4):
        capsules = []
        for index in range(count):
            registry = MetricsRegistry()
            registry.add_profile_samples({
                f"span:exec.task.detect.detector.ME;f.py:g{index}": 3.0 + index,
                "span:exec.task.detect.detector.HC;f.py:h": 2.0,
                "span:-;pool.py:idle": 1.0,  # span closed mid-sample
            })
            capsules.append(TelemetryCapsule.capture(registry))
        return capsules

    def _merge(self, capsules, order):
        registry = MetricsRegistry()
        for index in order:
            capsules[index].merge_into(registry, parent_path="exec.map")
        return dict(registry.profile)

    def test_merged_profile_identical_across_chunk_shapes(self):
        capsules = self._task_capsules()
        # workers=0 (one chunk), workers=2 (interleaved chunks), and a
        # pool that completed out of order all merge in task order.
        serial = self._merge(capsules, [0, 1, 2, 3])
        assert serial == self._merge(capsules, [0, 1, 2, 3])
        # Counter-add commutes, so even completion order is irrelevant.
        assert serial == self._merge(capsules, [3, 1, 0, 2])

    def test_merge_reparents_under_dispatching_span(self):
        merged = self._merge(self._task_capsules(1), [0])
        assert (
            "span:exec.map.exec.task.detect.detector.ME;f.py:g0" in merged
        )
        assert not any(
            key.startswith("span:exec.task") for key in merged
        )

    def test_spans_closed_mid_sample_stay_unattributed(self):
        # A sampler tick can land after the task's spans closed; those
        # samples are span:- and must never be re-parented into a span.
        merged = self._merge(self._task_capsules(2), [0, 1])
        assert merged["span:-;pool.py:idle"] == 2.0

    def test_empty_profile_capsule_is_a_no_op(self):
        registry = MetricsRegistry()
        empty = TelemetryCapsule.capture(MetricsRegistry())
        assert empty.empty
        empty.merge_into(registry, parent_path="exec.map")
        assert registry.profile == {}

    def test_profile_only_capsule_round_trips_through_pickle(self):
        import pickle

        source = MetricsRegistry()
        source.add_profile_samples({"span:detect;f.py:g": 5.0})
        capsule = pickle.loads(pickle.dumps(TelemetryCapsule.capture(source)))
        assert not capsule.empty
        registry = MetricsRegistry()
        capsule.merge_into(registry)
        assert registry.profile == {"span:detect;f.py:g": 5.0}


class TestCliTraceExport:
    def test_trace_out_writes_valid_perfetto_json(self, tmp_path):
        trace_path = tmp_path / "population.trace.json"
        status = main(
            [
                "population",
                "--seed", str(SEED),
                "--size", "4",
                "--scheme", "SA",
                "--workers", "2",
                "--top", "2",
                "--trace-out", str(trace_path),
            ]
        )
        assert status == 0
        payload = read_trace(trace_path)  # raises ValidationError if invalid
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        # Parallel dispatch shows up as more than one process lane.
        assert len({e["pid"] for e in complete}) >= 2
        assert main(["trace", str(trace_path)]) == 0


class TestCliLedgerRegression:
    def run_population(self, ledger_path):
        return main(
            [
                "population",
                "--seed", str(SEED),
                "--size", "4",
                "--scheme", "SA",
                "--top", "2",
                "--ledger", str(ledger_path),
            ]
        )

    def test_check_passes_on_repeat_runs_then_flags_injected_regression(
        self, tmp_path
    ):
        ledger_path = tmp_path / "ledger.jsonl"
        for _ in range(3):
            assert self.run_population(ledger_path) == 0
        assert main(["runs", "check", "--ledger", str(ledger_path)]) == 0

        # Inject a regression: re-append the latest record with a slower
        # wall clock and a drifted headline digest, as if the code changed.
        latest = RunLedger(ledger_path).latest()
        broken = latest.as_dict()
        broken["run_id"] = "badbadbadbad"
        broken["timings"]["wall_seconds"] *= 10.0
        broken["digests"]["population.top_mp"] += 0.5
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(broken) + "\n")

        assert main(["runs", "check", "--ledger", str(ledger_path)]) == 1

    def test_injected_regression_against_committed_fixture(self, tmp_path):
        fixture = (
            Path(__file__).resolve().parent.parent
            / "fixtures"
            / "ledger_baseline.jsonl"
        )
        ledger_path = tmp_path / "ledger.jsonl"
        shutil.copy(fixture, ledger_path)
        assert main(["runs", "check", "--ledger", str(ledger_path)]) == 0

        latest = RunLedger(ledger_path).latest()
        broken = latest.as_dict()
        broken["run_id"] = "cccccccccccc"
        broken["timings"]["wall_seconds"] *= 10.0
        broken["digests"]["population.top_mp"] += 0.5
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(broken) + "\n")

        assert main(["runs", "check", "--ledger", str(ledger_path)]) == 1


class TestSeriesAlertParity:
    """Serial vs hermetic-parallel runs export bit-identical series
    snapshots and alert events.

    The recorder flattens the merged parent registry at epoch close;
    everything it keeps (detector/trust/online counters, value-histogram
    percentiles, timing-histogram counts) is topology-invariant, and the
    exec/cache/profiler noise is excluded by ``DEFAULT_SERIES_IGNORE``.
    Worker-side recorders merge through the capsule order-independently,
    so the exported state must not depend on the worker count.
    """

    @staticmethod
    def recorded_run(workers):
        from repro.obs import AlertEngine, AlertRule, TimeSeriesRecorder

        registry = MetricsRegistry()
        engine = AlertEngine(
            [
                AlertRule(
                    name="detectors-ran",
                    metric="detector.HC.calls",
                    op=">",
                    value=0.0,
                ),
                AlertRule(
                    name="scores-still-moving",
                    metric="detector.HC.calls",
                    kind="rate_of_change",
                    op=">",
                    value=0.0,
                    resolve_epochs=1,
                ),
            ],
            registry=registry,
        )
        recorder = TimeSeriesRecorder(engine=engine)
        registry.attach_series(recorder)
        previous = set_registry(registry)
        try:
            context = ExperimentContext(
                seed=SEED,
                population_size=POP,
                workers=workers,
                hermetic_telemetry=True,
            )
            context.results_for("P")
            recorder.record_epoch(0, registry)
            context.results_for("SA")
            recorder.record_epoch(1, registry)
            context.close()
        finally:
            set_registry(previous)
        return (
            recorder.state(),
            [event.as_dict() for event in engine.events],
        )

    @pytest.fixture(scope="class")
    def serial_run(self):
        return self.recorded_run(workers=0)

    @pytest.fixture(scope="class")
    def parallel_run(self):
        return self.recorded_run(workers=2)

    def test_series_state_bit_identical(self, serial_run, parallel_run):
        assert serial_run[0] == parallel_run[0]

    def test_alert_events_bit_identical(self, serial_run, parallel_run):
        assert serial_run[1] == parallel_run[1]

    def test_run_produced_series_and_alerts(self, serial_run):
        state, events = serial_run
        assert state["points"]  # the flatten actually captured metrics
        assert any(event["state"] == "firing" for event in events)
        # Epoch 1 adds no HC calls under the report cache: the
        # rate-of-change rule fires at 0 and resolves at 1.
        states = [
            (event["rule"], event["epoch"], event["state"])
            for event in events
        ]
        assert ("detectors-ran", 0, "firing") in states
