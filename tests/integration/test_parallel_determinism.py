"""Serial vs parallel (and cold vs cached) runs must be bit-identical.

The execution engine's whole contract is that ``workers`` and
``cache_dir`` are pure throughput knobs: every figure, search
trajectory, and MP value is the same no matter how the work was
dispatched.  These tests pin that contract end to end.
"""

import numpy as np
import pytest

from repro.exec import MPCache, ParallelEvaluator
from repro.experiments.context import ExperimentContext
from repro.experiments.figures import (
    run_bias_variance_figure,
    run_headline_comparison,
    run_region_search_figure,
)
from repro.obs import MetricsRegistry, set_registry

SEED = 2008
POP = 6


def assert_mp_results_equal(a, b):
    """MPResult equality (dataclass ``==`` chokes on the ndarray dicts)."""
    assert a.scheme_name == b.scheme_name
    assert a.total == b.total
    assert a.per_product == b.per_product
    assert set(a.deltas) == set(b.deltas)
    for pid in a.deltas:
        assert np.array_equal(a.deltas[pid], b.deltas[pid])


@pytest.fixture(scope="module")
def serial_context():
    return ExperimentContext(seed=SEED, population_size=POP)


@pytest.fixture(scope="module")
def parallel_context():
    context = ExperimentContext(seed=SEED, population_size=POP, workers=2)
    yield context
    context.close()


class TestPopulationDeterminism:
    def test_headline_comparison_identical(self, serial_context, parallel_context):
        serial = run_headline_comparison(serial_context)
        parallel = run_headline_comparison(parallel_context)
        assert serial.max_mp == parallel.max_mp

    def test_all_results_bit_identical(self, serial_context, parallel_context):
        for scheme in ("P", "SA", "BF"):
            serial = serial_context.results_for(scheme)
            parallel = parallel_context.results_for(scheme)
            assert set(serial) == set(parallel)
            for sid in serial:
                assert_mp_results_equal(serial[sid], parallel[sid])

    def test_fig2_surface_identical(self, serial_context, parallel_context):
        serial = run_bias_variance_figure(serial_context, "P")
        parallel = run_bias_variance_figure(parallel_context, "P")
        assert serial.points == parallel.points
        assert serial.winner_region_counts == parallel.winner_region_counts


class TestRegionSearchDeterminism:
    def test_trajectories_identical_across_worker_counts(self):
        context = ExperimentContext(seed=SEED, population_size=2)
        serial = run_region_search_figure(
            context, "SA", probes_per_subarea=2,
            evaluator=ParallelEvaluator(workers=0),
        )
        parallel_ctx = ExperimentContext(
            seed=SEED, population_size=2, workers=2
        )
        try:
            parallel = run_region_search_figure(
                parallel_ctx, "SA", probes_per_subarea=2
            )
        finally:
            parallel_ctx.close()
        assert len(serial.search.rounds) == len(parallel.search.rounds)
        for a, b in zip(serial.search.rounds, parallel.search.rounds):
            assert a.area == b.area
            assert a.subareas == b.subareas
            assert a.scores == b.scores
            assert a.best_index == b.best_index
        assert serial.search.best_mp == parallel.search.best_mp
        assert serial.search.final_area == parallel.search.final_area


class TestCacheDeterminism:
    def test_warm_cache_replays_cold_results(self, tmp_path):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            cold_ctx = ExperimentContext(
                seed=SEED, population_size=3, cache_dir=str(tmp_path)
            )
            cold = cold_ctx.results_for("SA")
            assert registry.counter_value("exec.cache.misses") > 0
            # A fresh context (new process in spirit) replays from disk.
            warm_ctx = ExperimentContext(
                seed=SEED, population_size=3, cache_dir=str(tmp_path)
            )
            warm = warm_ctx.results_for("SA")
            assert registry.counter_value("exec.cache.disk_hits") == 3
        finally:
            set_registry(previous)
        assert set(cold) == set(warm)
        for sid in cold:
            assert_mp_results_equal(cold[sid], warm[sid])

    def test_cache_hit_equals_cold_evaluation(self, tmp_path):
        cache = MPCache(cache_dir=tmp_path, registry=MetricsRegistry())
        evaluator = ParallelEvaluator(
            workers=0, cache=cache, registry=MetricsRegistry()
        )
        from repro.exec import PopulationEvalTask

        task = PopulationEvalTask(
            root_seed=SEED, population_size=2, scheme_name="SA", index=0
        )
        cold = evaluator.map([task])[0]
        cache.clear_memory()
        warm = evaluator.map([task])[0]
        assert_mp_results_equal(cold, warm)


@pytest.mark.slow
class TestPaperScaleParallel:
    """Exercise the pool at closer-to-paper scale (excluded from tier 1)."""

    def test_headline_comparison_identical_at_scale(self):
        serial_ctx = ExperimentContext(seed=SEED, population_size=25)
        parallel_ctx = ExperimentContext(
            seed=SEED, population_size=25, workers=4
        )
        try:
            for scheme in ("P", "SA", "BF"):
                serial = serial_ctx.results_for(scheme)
                parallel = parallel_ctx.results_for(scheme)
                for sid in serial:
                    assert_mp_results_equal(serial[sid], parallel[sid])
            assert (
                run_headline_comparison(serial_ctx).max_mp
                == run_headline_comparison(parallel_ctx).max_mp
            )
        finally:
            parallel_ctx.close()
