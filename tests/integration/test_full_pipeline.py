"""End-to-end integration tests: challenge + attacks + all three schemes."""

import pytest

from repro.aggregation import BetaFilterScheme, PScheme, SimpleAveragingScheme
from repro.attacks import AttackGenerator, AttackSpec, ProductTarget, UniformWindow
from repro.attacks.strategies import bad_mouthing, ballot_stuffing
from repro.marketplace import RatingChallenge


@pytest.fixture(scope="module")
def challenge():
    return RatingChallenge(seed=2024)


@pytest.fixture(scope="module")
def generator(challenge):
    return AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=11
    )


def four_targets(challenge):
    pids = challenge.fair_dataset.product_ids
    return [
        ProductTarget(pids[0], -1),
        ProductTarget(pids[1], -1),
        ProductTarget(pids[2], +1),
        ProductTarget(pids[3], +1),
    ]


class TestCrossSchemePipeline:
    def test_strong_attack_mp_ordering(self, challenge, generator):
        """P-scheme suppresses a strong low-variance attack that SA lets
        straight through and BF only partially removes."""
        spec = AttackSpec(3.0, 0.2, 50, UniformWindow(25.0, 30.0))
        submission = generator.generate(four_targets(challenge), spec)
        mp_sa = challenge.evaluate(submission, SimpleAveragingScheme()).total
        mp_p = challenge.evaluate(submission, PScheme()).total
        assert mp_sa > 0.5
        assert mp_p < 0.5 * mp_sa

    def test_bad_mouthing_filtered_by_bf(self, challenge):
        submission = bad_mouthing(
            challenge.fair_dataset,
            four_targets(challenge)[:2],
            challenge.config.biased_rater_ids(),
            n_ratings=50,
            time_model=UniformWindow(25.0, 30.0),
            seed=1,
        )
        mp_sa = challenge.evaluate(submission, SimpleAveragingScheme()).total
        mp_bf = challenge.evaluate(submission, BetaFilterScheme()).total
        assert mp_bf < 0.8 * mp_sa

    def test_high_variance_attack_evades_pscheme(self, challenge, generator):
        """The paper's R3 finding: medium bias + large variance beats the
        signal-based detection (relative to what low variance achieves)."""
        low_var = AttackSpec(2.0, 0.1, 50, UniformWindow(25.0, 30.0))
        high_var = AttackSpec(2.0, 1.2, 50, UniformWindow(25.0, 30.0))
        scheme = PScheme()
        mp_low = max(
            challenge.evaluate(
                generator.generate(four_targets(challenge), low_var), scheme
            ).total
            for _ in range(3)
        )
        mp_high = max(
            challenge.evaluate(
                generator.generate(four_targets(challenge), high_var), scheme
            ).total
            for _ in range(3)
        )
        assert mp_high > mp_low * 0.9

    def test_boost_weaker_than_downgrade(self, challenge, generator):
        """Fair means sit near 4 on a 0..5 scale: little headroom to boost
        (Section V-B)."""
        pids = challenge.fair_dataset.product_ids
        scheme = SimpleAveragingScheme()
        down = generator.generate(
            [ProductTarget(pids[0], -1)], AttackSpec(3.5, 0.2, 50, UniformWindow(25, 30))
        )
        up = generator.generate(
            [ProductTarget(pids[0], +1)], AttackSpec(3.5, 0.2, 50, UniformWindow(25, 30))
        )
        assert (
            challenge.evaluate(down, scheme).total
            > challenge.evaluate(up, scheme).total
        )

    def test_ballot_stuffing_limited_by_ceiling(self, challenge):
        submission = ballot_stuffing(
            challenge.fair_dataset,
            [ProductTarget(challenge.fair_dataset.product_ids[0], +1)],
            challenge.config.biased_rater_ids(),
            n_ratings=50,
            time_model=UniformWindow(25.0, 30.0),
            seed=2,
        )
        mp = challenge.evaluate(submission, SimpleAveragingScheme()).total
        assert 0.0 < mp < 1.5

    def test_pscheme_cache_speeds_repeat_evaluation(self, challenge, generator):
        import time

        spec = AttackSpec(2.5, 0.5, 40, UniformWindow(20.0, 40.0))
        submission = generator.generate(four_targets(challenge), spec)
        scheme = PScheme()
        t0 = time.perf_counter()
        first = challenge.evaluate(submission, scheme).total
        t1 = time.perf_counter()
        second = challenge.evaluate(submission, scheme).total
        t2 = time.perf_counter()
        assert first == pytest.approx(second)
        assert (t2 - t1) < 0.5 * (t1 - t0)

    def test_unattacked_products_mostly_unmoved(self, challenge, generator):
        spec = AttackSpec(3.0, 0.2, 50, UniformWindow(25.0, 30.0))
        submission = generator.generate(four_targets(challenge), spec)
        result = challenge.evaluate(submission, SimpleAveragingScheme())
        attacked = set(submission.product_ids)
        for pid, mp in result.per_product.items():
            if pid not in attacked:
                assert mp == pytest.approx(0.0, abs=1e-9)

    def test_mp_deterministic_given_submission(self, challenge, generator):
        spec = AttackSpec(2.0, 0.4, 30, UniformWindow(15.0, 40.0))
        submission = generator.generate(four_targets(challenge), spec)
        a = challenge.evaluate(submission, SimpleAveragingScheme()).total
        b = challenge.evaluate(submission, SimpleAveragingScheme()).total
        assert a == b
