"""Integration tests for the P-scheme ablation machinery."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.ablations import ABLATION_VARIANTS, run_pscheme_ablation


@pytest.fixture(scope="module")
def result():
    return run_pscheme_ablation(ExperimentContext(seed=2008, population_size=1))


class TestAblation:
    def test_all_variants_present(self, result):
        assert set(result.variant_names) == set(ABLATION_VARIANTS)
        assert "full" in result.variant_names

    def test_all_attacks_scored_everywhere(self, result):
        for variant in result.variant_names:
            assert set(result.mp[variant]) == set(result.attack_names)

    def test_full_scheme_strongest_on_designed_attacks(self, result):
        # Small slack: extra long-window peaks can shift marks by a rating
        # or two, moving MP at the third decimal without changing the story.
        full = result.mp["full"]
        for attack in ("windowed downgrade", "one-day burst"):
            for variant in result.variant_names:
                assert full[attack] <= result.mp[variant][attack] + 0.05

    def test_path1_removal_costs_defense(self, result):
        assert sum(result.mp["no-path1"].values()) > sum(result.mp["full"].values())

    def test_long_window_catches_drip(self, result):
        assert (
            result.mp["single-scale"]["whole-window drip"]
            > result.mp["full"]["whole-window drip"]
        )

    def test_trust_layer_contributes(self, result):
        assert sum(result.mp["filter-only"].values()) > sum(
            result.mp["full"].values()
        )

    def test_camouflage_weakens_trust_defense(self, result):
        """Camouflage is designed to defeat the trust layer, so it should
        retain more MP against the full scheme than the plain windowed
        attack does (relative to the SA reference)."""
        full = result.mp["full"]
        sa = result.sa_mp
        windowed_retention = full["windowed downgrade"] / sa["windowed downgrade"]
        camouflage_retention = full["camouflage strike"] / sa["camouflage strike"]
        assert camouflage_retention > windowed_retention

    def test_to_text_renders(self, result):
        text = result.to_text()
        assert "ablation" in text
        assert "whole-window drip" in text
