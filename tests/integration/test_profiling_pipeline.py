"""Integration tests for the sampling profiler on real pipeline work.

Pins the ISSUE's acceptance criteria for ``repro.obs.profile``: sample
attribution on the detector workload stays >= 95%, the profiler's
wall-clock overhead at the default rate stays under 10% (slow-marked --
timing-sensitive), profiles ride telemetry capsules out of live worker
processes, and the CLI round-trips ``--profile-out`` artifacts through
``repro profile`` re-exports.
"""

import pytest

from repro.attacks.population import PopulationConfig, generate_population
from repro.cli import main
from repro.detectors import JointDetector
from repro.marketplace.challenge import RatingChallenge
from repro.obs import (
    MetricsRegistry,
    SpanProfiler,
    disable_profiling,
    enable_profiling,
    read_speedscope,
    set_registry,
    use_registry,
)
from repro.obs.profile import attributed_fraction, read_profile

SEED = 2008


def detector_workload(population_size, registry, profile=False, hz=97):
    """The bench-detectors scenario: joint detection over attacked data."""
    challenge = RatingChallenge(seed=SEED)
    population = generate_population(
        challenge, PopulationConfig(size=population_size), seed=SEED + 1
    )
    detector = JointDetector(registry=registry)
    with use_registry(registry):
        if profile:
            with SpanProfiler(registry, hz=hz):
                for submission in population:
                    dataset = challenge.attacked_dataset(submission)
                    for product_id in dataset:
                        detector.analyze(dataset[product_id])
        else:
            for submission in population:
                dataset = challenge.attacked_dataset(submission)
                for product_id in dataset:
                    detector.analyze(dataset[product_id])


class TestAttribution:
    def test_at_least_95_percent_of_samples_land_in_a_span(self):
        registry = MetricsRegistry()
        detector_workload(2, registry, profile=True)
        assert sum(registry.profile.values()) > 0
        assert attributed_fraction(registry.profile) >= 0.95
        # Attribution reaches the individual sub-detector spans, not
        # just some outer wrapper.
        assert any(
            key.startswith("span:detect") or ".detector." in key.split(";")[0]
            for key in registry.profile
        )


@pytest.mark.slow
class TestOverhead:
    def test_profiler_overhead_under_ten_percent(self):
        """bench_obs_baseline's profiler_overhead_ratio, as an assertion."""
        import time

        def timed(profile):
            registry = MetricsRegistry()
            start = time.perf_counter()
            detector_workload(4, registry, profile=profile)
            return time.perf_counter() - start

        timed(False)  # warm caches/imports before measuring
        # Best-of-3, interleaved: the minimum is what the workload costs
        # without scheduler noise, which is the honest overhead basis.
        plain = min(timed(False) for _ in range(3))
        profiled = min(timed(True) for _ in range(3))
        assert profiled / plain < 1.10, (
            f"profiler overhead x{profiled / plain:.3f} exceeds the 1.10 "
            f"budget (plain={plain:.2f}s profiled={profiled:.2f}s)"
        )


class TestWorkerProfiles:
    def test_parallel_tasks_profile_themselves_and_merge_back(self):
        from repro.experiments.context import ExperimentContext

        registry = MetricsRegistry()
        previous = set_registry(registry)
        enable_profiling(hz=200)
        try:
            context = ExperimentContext(
                seed=SEED,
                population_size=3,
                workers=2,
                hermetic_telemetry=True,
            )
            context.results_for("P")
            context.close()
        finally:
            disable_profiling()
            set_registry(previous)
        assert registry.profile
        # Worker samples were re-parented under the dispatching span.
        assert any(
            key.startswith("span:exec.map.exec.task.")
            for key in registry.profile
        )
        assert registry.counter_value("profile.samples") == pytest.approx(
            sum(registry.profile.values())
        )


class TestCliProfileRoundTrip:
    def test_profile_out_then_inspect_and_reexport(self, tmp_path, capsys):
        profile_path = tmp_path / "profile.json"
        speedscope_path = tmp_path / "profile.speedscope.json"
        collapsed_path = tmp_path / "profile.collapsed"
        status = main([
            "population",
            "--seed", "7",
            "--size", "3",
            "--scheme", "P",
            "--top", "2",
            "--profile-out", str(profile_path),
        ])
        assert status == 0
        payload = read_profile(profile_path)  # structural validation
        assert sum(payload["samples"].values()) > 0

        status = main([
            "profile", str(profile_path),
            "--top", "5",
            "--speedscope", str(speedscope_path),
            "--collapsed", str(collapsed_path),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "structurally valid" in out
        assert "span-attributed" in out
        document = read_speedscope(speedscope_path)
        assert document["profiles"][0]["samples"]
        collapsed = collapsed_path.read_text()
        assert collapsed
        for line in collapsed.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("span:")
            assert float(count) > 0
