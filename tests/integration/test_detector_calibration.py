"""Calibration contract for the joint detector.

These tests pin the operating point the DetectorConfig defaults were tuned
for: near-zero false alarms on fair-only synthetic data, high recall on the
canonical Section IV attacks, and the *intended* blindness to high-variance
attacks (which is the paper's R3 finding, not a bug).
"""

import pytest

from repro.attacks import AttackGenerator, AttackSpec, ProductTarget
from repro.attacks.time_models import ConcentratedBurst, UniformWindow
from repro.detectors import JointDetector
from repro.marketplace import FairRatingGenerator, RatingChallenge


@pytest.fixture(scope="module")
def challenge():
    return RatingChallenge(seed=314)


def fresh_generator(challenge, seed):
    """Per-test generator so RNG consumption in one test cannot shift
    another test's data."""
    return AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=seed
    )


def detect_on_attack(challenge, generator, spec, product_index=0, direction=-1):
    pid = challenge.fair_dataset.product_ids[product_index]
    submission = generator.generate([ProductTarget(pid, direction)], spec)
    attacked = challenge.fair_dataset.merge(submission.as_dict())
    stream = attacked[pid]
    report = JointDetector().analyze(stream)
    unfair = stream.unfair
    recall = float((report.suspicious & unfair).sum()) / max(int(unfair.sum()), 1)
    collateral = float((report.suspicious & ~unfair).sum()) / max(
        int((~unfair).sum()), 1
    )
    return recall, collateral


class TestFalseAlarms:
    def test_fair_worlds_stay_clean(self):
        detector = JointDetector()
        marked = total = 0
        for seed in range(3):
            dataset = FairRatingGenerator(seed=seed).generate()
            for pid in dataset:
                report = detector.analyze(dataset[pid])
                marked += report.num_suspicious
                total += len(dataset[pid])
        assert marked / total < 0.01


class TestRecallOnCanonicalAttacks:
    def test_window_downgrade(self, challenge):
        spec = AttackSpec(3.0, 0.2, 50, UniformWindow(30.0, 25.0))
        recall, collateral = detect_on_attack(
            challenge, fresh_generator(challenge, 1), spec
        )
        assert recall > 0.85
        assert collateral < 0.05

    def test_burst_downgrade(self, challenge):
        spec = AttackSpec(3.0, 0.3, 50, ConcentratedBurst(41.0, 2.0))
        recall, collateral = detect_on_attack(
            challenge, fresh_generator(challenge, 2), spec, product_index=1
        )
        assert recall > 0.9
        assert collateral < 0.05

    def test_whole_window_drip_detected_against_history(self, challenge):
        """With pre-challenge history, an attack running the full challenge
        window is still an onset change (the long-window L-ARC scale)."""
        span = challenge.end_day - challenge.start_day
        spec = AttackSpec(
            3.5, 0.2, 50, UniformWindow(challenge.start_day + 1.0, span - 2.0)
        )
        recall, _ = detect_on_attack(
            challenge, fresh_generator(challenge, 3), spec, product_index=2
        )
        assert recall > 0.4


class TestIntendedBlindness:
    def test_high_variance_attack_partially_evades(self, challenge):
        """Large-variance unfair ratings weaken the signal features: only
        the low-value tail of the attack lands in the L-ARC count series,
        so a large fraction of the unfair ratings escapes marking (the
        paper's region-R3 exploit)."""
        spec = AttackSpec(1.5, 1.3, 50, UniformWindow(30.0, 25.0))
        recall, _ = detect_on_attack(
            challenge, fresh_generator(challenge, 4), spec, product_index=3
        )
        assert recall < 0.75

    def test_small_bias_attack_evades(self, challenge):
        spec = AttackSpec(0.5, 0.3, 30, UniformWindow(30.0, 25.0))
        recall, _ = detect_on_attack(
            challenge, fresh_generator(challenge, 5), spec, product_index=4
        )
        assert recall < 0.5
