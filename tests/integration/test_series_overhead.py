"""Series recording must be nearly free (slow-marked, timing-sensitive).

``--metrics-stream`` snapshots the registry, streams JSONL, and runs the
default alert ruleset once per epoch close -- microseconds against a
replay measured in tenths of seconds.  This pins the budget the bench
records as ``series_overhead_ratio`` in ``BENCH_obs_baseline.json``.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.mark.slow
class TestSeriesOverhead:
    def test_series_recording_overhead_under_five_percent(self):
        sys.path.insert(0, str(BENCHMARKS))
        try:
            from bench_obs_baseline import measure_series_overhead
        finally:
            sys.path.remove(str(BENCHMARKS))
        result = measure_series_overhead(repeats=3)
        ratio = result["series_overhead_ratio"]
        assert ratio < 1.05, (
            f"series recording overhead x{ratio:.3f} exceeds the 1.05 "
            f"budget (plain={result['replay_seconds']:.2f}s "
            f"recorded={result['replay_with_series_seconds']:.2f}s)"
        )
