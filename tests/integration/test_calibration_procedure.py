"""Integration tests for the automatic threshold calibration."""

import pytest

from repro.attacks import AttackGenerator, AttackSpec, ProductTarget, UniformWindow
from repro.detectors import JointDetector
from repro.detectors.base import DetectorConfig
from repro.detectors.calibration import calibrate_thresholds
from repro.errors import EmptyDataError, ValidationError
from repro.marketplace import FairRatingGenerator, RatingChallenge
from repro.types import RatingDataset, RatingStream


@pytest.fixture(scope="module")
def calibration():
    fair_worlds = [FairRatingGenerator(seed=s).generate() for s in (70, 71)]
    return calibrate_thresholds(fair_worlds, percentile=95.0)


class TestCalibrationMechanics:
    def test_returns_modified_config(self, calibration):
        config = calibration.config
        assert isinstance(config, DetectorConfig)
        assert config.harc_alarm_threshold == pytest.approx(
            1.25 * config.harc_peak_threshold
        )
        assert config.larc_alarm_threshold == pytest.approx(
            1.25 * config.larc_peak_threshold
        )
        assert config.hc_suspicious_threshold <= 0.98

    def test_null_statistics_summary(self, calibration):
        summary = calibration.null_statistics.summary()
        assert set(summary) == {"MC", "H-ARC", "L-ARC", "HC", "ME(min)"}
        for _name, (median, p90, peak) in summary.items():
            assert median <= p90 <= peak

    def test_windows_unchanged(self, calibration):
        base = DetectorConfig()
        config = calibration.config
        assert config.mc_window_days == base.mc_window_days
        assert config.hc_window_ratings == base.hc_window_ratings

    def test_invalid_arguments(self):
        world = FairRatingGenerator(seed=0).generate()
        with pytest.raises(ValidationError):
            calibrate_thresholds([world], percentile=40.0)
        with pytest.raises(ValidationError):
            calibrate_thresholds([world], margin=0.0)

    def test_empty_sample_rejected(self):
        empty = RatingDataset([RatingStream.empty("p")])
        with pytest.raises(EmptyDataError):
            calibrate_thresholds([empty])


class TestCalibratedOperatingPoint:
    def test_low_false_alarms_on_held_out_world(self, calibration):
        detector = JointDetector(calibration.config)
        held_out = FairRatingGenerator(seed=99).generate()
        marked = total = 0
        for pid in held_out:
            report = detector.analyze(held_out[pid])
            marked += report.num_suspicious
            total += len(held_out[pid])
        assert marked / total < 0.02

    def test_canonical_attack_still_caught(self, calibration):
        challenge = RatingChallenge(seed=98)
        generator = AttackGenerator(
            challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=98
        )
        pid = challenge.fair_dataset.product_ids[0]
        submission = generator.generate(
            [ProductTarget(pid, -1)],
            AttackSpec(3.0, 0.2, 50, UniformWindow(30.0, 20.0)),
        )
        attacked = challenge.fair_dataset.merge(submission.as_dict())
        report = JointDetector(calibration.config).analyze(attacked[pid])
        unfair = attacked[pid].unfair
        recall = (report.suspicious & unfair).sum() / unfair.sum()
        assert recall > 0.8
