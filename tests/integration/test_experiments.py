"""Integration tests for the experiment runners (small populations).

These exercise every figure runner end-to-end and check the *shape* claims
of the paper on a reduced population (full-size reproduction lives in
``benchmarks/``; EXPERIMENTS.md records the measured numbers).
"""

import pytest

from repro.analysis.bias_variance import Region
from repro.experiments import (
    ExperimentContext,
    run_bias_variance_figure,
    run_correlation_figure,
    run_headline_comparison,
    run_operating_points,
    run_region_search_figure,
    run_time_analysis_figure,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(seed=2008, population_size=40)


class TestContext:
    def test_lazy_world(self, context):
        assert len(context.challenge.fair_dataset) == 9
        assert len(context.population) == 40

    def test_results_cached(self, context):
        first = context.results_for("SA")
        second = context.results_for("SA")
        assert first is second

    def test_unknown_scheme_rejected(self, context):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            context.scheme("XX")


class TestBiasVarianceFigures:
    def test_sa_winners_in_r1(self, context):
        figure = run_bias_variance_figure(context, "SA", "tv1")
        assert figure.dominant_region in (Region.R1, Region.R2)
        assert figure.winner_centroid[0] < -1.5  # strongly negative bias

    def test_p_winners_shifted_toward_r3(self, context):
        # With the reduced population only ~8 submissions downgrade tv1, so
        # a small top-N is needed for the marks to discriminate between
        # schemes (the benches run the full 251 population with top 10).
        figure_p = run_bias_variance_figure(context, "P", "tv1", top_n=3)
        figure_sa = run_bias_variance_figure(context, "SA", "tv1", top_n=3)
        # P's winners sit at smaller |bias| / larger variance than SA's.
        assert figure_p.winner_centroid[0] > figure_sa.winner_centroid[0]
        assert figure_p.winner_centroid[1] >= figure_sa.winner_centroid[1]

    def test_marks_counts(self, context):
        figure = run_bias_variance_figure(context, "SA", "tv1", top_n=5)
        amp = [p for p in figure.points if "AMP" in p.marks]
        assert len(amp) == 5

    def test_text_rendering(self, context):
        figure = run_bias_variance_figure(context, "SA", "tv1")
        text = figure.to_text()
        assert "Variance-bias plot" in text
        assert "dominant winner region" in text


class TestHeadline:
    def test_pscheme_max_mp_below_sa_and_bf(self, context):
        headline = run_headline_comparison(context)
        assert headline.max_mp["P"] < headline.max_mp["SA"]
        assert headline.max_mp["P"] < headline.max_mp["BF"]
        assert headline.p_to_sa_ratio < 0.75  # paper reports ~1/3

    def test_text(self, context):
        text = run_headline_comparison(context).to_text()
        assert "P/SA ratio" in text


class TestTimeAnalysis:
    def test_figure_structure(self, context):
        figure = run_time_analysis_figure(context, "P", "tv1")
        assert len(figure.bin_centers) == len(figure.max_envelope)
        assert figure.best_interval >= 0.0
        assert "best interval" in figure.to_text()


class TestCorrelationFigure:
    def test_rows_and_win_fraction(self, context):
        figure = run_correlation_figure(
            context, "SA", top_n=3, random_shuffles=2
        )
        assert len(figure.rows) == 3
        for row in figure.rows:
            assert len(row.random_mps) == 2
            assert row.original_mp >= 0.0
        assert 0.0 <= figure.heuristic_win_fraction <= 1.0
        assert "Order-strategy comparison" in figure.to_text()


class TestRegionSearchFigure:
    def test_search_against_sa_finds_large_bias(self, context):
        figure = run_region_search_figure(context, "SA", probes_per_subarea=3)
        bias, _std = figure.search.best_point
        # Against plain averaging the strongest region is large bias.
        assert bias < -1.5
        assert figure.search.best_mp > 0.0
        assert "Procedure 2" in figure.to_text()

    def test_trace_shrinks(self, context):
        figure = run_region_search_figure(context, "SA", probes_per_subarea=1)
        widths = [r.area.bias_width for r in figure.search.rounds]
        assert widths == sorted(widths, reverse=True)


class TestOperatingPoints:
    def test_operating_points(self, context):
        points = run_operating_points(context)
        assert points.false_alarm_rate < 0.01
        rows = {name: (recall, collateral) for name, recall, collateral in points.attack_rows}
        assert rows["strong downgrade (path 1)"][0] > 0.8
        assert rows["burst downgrade"][0] > 0.8
        assert "operating points" in points.to_text()
