"""Integration tests for the detector sensitivity sweeps."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments.sensitivity import (
    OperatingPoint,
    SensitivityResult,
    sweep_detector_parameter,
)


@pytest.fixture(scope="module")
def larc_sweep():
    return sweep_detector_parameter(
        "larc_peak_threshold", [0.5, 4.2, 16.0], n_fair_worlds=1, n_attacks=2
    )


class TestSweep:
    def test_points_aligned_with_values(self, larc_sweep):
        assert [p.value for p in larc_sweep.points] == [0.5, 4.2, 16.0]

    def test_false_alarms_non_increasing_in_threshold(self, larc_sweep):
        curve = larc_sweep.false_alarm_curve()
        assert np.all(np.diff(curve) <= 1e-12)

    def test_calibrated_default_operating_point(self, larc_sweep):
        default = next(p for p in larc_sweep.points if p.value == 4.2)
        assert default.false_alarm_rate < 0.01
        assert default.recall > 0.8
        assert default.collateral < 0.05

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValidationError):
            sweep_detector_parameter("not_a_field", [1.0])

    def test_empty_values_rejected(self):
        with pytest.raises(ValidationError):
            sweep_detector_parameter("larc_peak_threshold", [])

    def test_to_text(self, larc_sweep):
        text = larc_sweep.to_text()
        assert "larc_peak_threshold" in text
        assert "false alarms" in text

    def test_result_types(self, larc_sweep):
        assert isinstance(larc_sweep, SensitivityResult)
        assert all(isinstance(p, OperatingPoint) for p in larc_sweep.points)
