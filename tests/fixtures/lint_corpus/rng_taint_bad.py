"""rng-taint: randomness on a task-reachable path not derived from the seed."""

from dataclasses import dataclass

import numpy as np

from lint_corpus.tasks_base import EvalTask


@dataclass(frozen=True)
class ProbeTask(EvalTask):
    """The task itself plumbs its seed correctly; its helpers do not."""

    seed_root: int

    def run(self) -> float:
        return entropy_probe() + rehearsed_probe()


def entropy_probe() -> float:
    rng = np.random.default_rng()  # BAD: OS entropy, two calls below run()
    return float(rng.standard_normal())


def rehearsed_probe() -> float:
    rng = np.random.default_rng(1234)  # BAD: constant seed, not plumbed
    return float(rng.standard_normal())
