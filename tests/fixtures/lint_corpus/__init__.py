"""Seeded bad-fixture corpus for the whole-program analyzer self-check.

Each module here violates exactly one (or one family of) the
interprocedural lint rules; ``expected.json`` pins the precise
``(rule, file, line)`` triples the analyzer must produce -- no more, no
fewer.  ``python -m repro.lint.selfcheck`` (run in CI on py3.10 and
py3.12) fails if the analyzer drifts in either direction.

These files are never imported at runtime; they only exist to be parsed.
"""
