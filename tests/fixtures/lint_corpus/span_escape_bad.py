"""span-escape: an open span returned from a helper, never entered."""

from repro.obs import span


def open_phase(name: str):
    # The per-file span-balance rule is pragma'd off: returning the open
    # context *is* this helper's contract.  Call sites must enter it.
    return span(f"phase:{name}")  # lint: ignore[span-balance]


def run_phase(work) -> None:
    open_phase("detect")  # BAD: span never entered, never closed
    work()


def run_phase_balanced(work) -> None:
    with open_phase("detect"):  # OK: consumed by a `with`
        work()
