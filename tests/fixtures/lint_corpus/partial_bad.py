"""pickle-safety: functools.partial wrapping unpicklable callables."""

from functools import partial


def build_payloads(evaluator, tasks):
    def scorer(x):
        return x * 2.0

    evaluator.map(tasks, partial(scorer, 1.0))  # BAD: partial over local def
    evaluator.map(tasks, partial(lambda x: x, 1.0))  # BAD: partial over lambda
    return tasks
