"""wallclock-fingerprint: a clock read feeding a fingerprint input."""

import time

from repro.exec.hashing import derive_seed


def now_tag() -> int:
    # The per-file rule is pragma'd off: this module *means* to read the
    # clock here.  The interprocedural rule must still flag the chain
    # below, because a fingerprint input reaches this call.
    return int(time.time())  # lint: ignore[wall-clock]


def fingerprint_seed(root: int) -> int:
    return derive_seed(root, now_tag())  # BAD: wall clock in the input
