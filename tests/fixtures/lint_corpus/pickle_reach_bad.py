"""pickle-reachability: task fields that cannot cross the pool boundary."""

from dataclasses import dataclass
from typing import Callable, Tuple

from lint_corpus.tasks_base import EvalTask


@dataclass(frozen=True)
class Inner:
    """Picklable-looking wrapper hiding an opaque field."""

    weights: Tuple
    fn: object  # the rot is one dataclass deep


@dataclass(frozen=True)
class OpaqueTask(EvalTask):
    payload: object  # BAD: no picklable shape
    hook: Callable  # BAD: callables pickle by qualname reference only
    inner: Inner  # BAD (transitively): Inner.fn is opaque

    def run(self) -> float:
        return 0.0
