"""Minimal stand-ins for the exec-engine types the flow rules anchor on.

The analyzer keys on *shapes* -- a class named ``EvalTask`` and its
subclasses, worker entry points named ``_run_task_timed``/``_run_chunk``
-- so the corpus carries its own tiny copies rather than importing the
real ones (the self-check must stay scoped to this directory).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class EvalTask:
    """Base work unit; subclasses override :meth:`run`."""

    def run(self) -> float:
        raise NotImplementedError
