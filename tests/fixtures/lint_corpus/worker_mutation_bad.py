"""worker-state-mutation: writes on the pool-worker closure."""

_CACHE = {}


def get_shared_world(key):
    """Registry read -- the sanctioned direction."""
    return _CACHE[key]


def _run_task_timed(task):
    return _mutate_helper(task)


def _mutate_helper(task):
    world = get_shared_world(task.key)
    world.items[task.key] = task  # BAD: mutates a fork-shared object
    _CACHE[task.key] = world  # BAD: writes a module-level global
    return world
