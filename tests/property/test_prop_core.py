"""Property-based tests for core data structures and metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregation.weighted import trust_weighted_average
from repro.trust.beta import beta_trust_value
from repro.types import RatingStream
from repro.utils.windows import shrink_to_bounds

times_arrays = arrays(
    np.float64,
    st.integers(0, 50),
    elements=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
)
value_arrays = arrays(
    np.float64,
    st.integers(1, 50),
    elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)


def build_stream(times, prefix="u"):
    values = np.linspace(0.0, 5.0, times.size)
    raters = [f"{prefix}{i}" for i in range(times.size)]
    return RatingStream("p", times, values, raters)


class TestStreamProperties:
    @given(times_arrays)
    def test_times_sorted_after_construction(self, times):
        stream = build_stream(times)
        assert np.all(np.diff(stream.times) >= 0)

    @given(times_arrays, times_arrays)
    def test_merge_preserves_counts(self, t1, t2):
        merged = build_stream(t1, "a").merge(build_stream(t2, "b"))
        assert len(merged) == t1.size + t2.size
        assert np.all(np.diff(merged.times) >= 0)

    @given(times_arrays)
    def test_merge_value_multiset_preserved(self, times):
        a = build_stream(times, "a")
        b = build_stream(times, "b")
        merged = a.merge(b)
        np.testing.assert_allclose(
            np.sort(merged.values),
            np.sort(np.concatenate([a.values, b.values])),
        )

    @given(times_arrays, st.floats(0.0, 500.0), st.floats(0.0, 500.0))
    def test_between_subset_of_range(self, times, a, b):
        lo, hi = min(a, b), max(a, b)
        window = build_stream(times).between(lo, hi)
        if len(window):
            assert window.times.min() >= lo
            assert window.times.max() < hi

    @given(times_arrays)
    def test_daily_counts_sum_to_length(self, times):
        stream = build_stream(times)
        _days, counts = stream.daily_counts()
        assert counts.sum() == len(stream)


class TestBetaTrustProperties:
    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_bounded_in_open_unit_interval(self, s, f):
        assert 0.0 < beta_trust_value(s, f) < 1.0

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_monotone_in_successes(self, s, f):
        assert beta_trust_value(s + 1, f) > beta_trust_value(s, f)

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_monotone_in_failures(self, s, f):
        assert beta_trust_value(s, f + 1) < beta_trust_value(s, f)

    @given(st.integers(0, 500))
    def test_symmetric_evidence_is_half(self, n):
        assert beta_trust_value(n, n) == 0.5


class TestTrustWeightedAverageProperties:
    @given(
        value_arrays,
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_uniform_trust_equals_mean(self, values, trust):
        trusts = np.full(values.size, trust)
        result = trust_weighted_average(values, trusts)
        assert np.isclose(result, values.mean(), rtol=1e-9, atol=1e-9)

    @given(value_arrays)
    def test_result_within_value_range(self, values):
        rng = np.random.default_rng(0)
        trusts = rng.uniform(0.0, 1.0, values.size)
        result = trust_weighted_average(values, trusts)
        assert values.min() - 1e-9 <= result <= values.max() + 1e-9

    @given(value_arrays)
    @settings(max_examples=50)
    def test_distrusted_rater_has_no_influence(self, values):
        trusts = np.full(values.size, 0.9)
        base = trust_weighted_average(values, trusts)
        poisoned_values = np.concatenate([values, [0.0]])
        poisoned_trusts = np.concatenate([trusts, [0.3]])
        assert np.isclose(
            trust_weighted_average(poisoned_values, poisoned_trusts), base
        )


class TestWindowProperties:
    @given(st.integers(0, 200), st.integers(1, 50), st.integers(0, 250))
    def test_shrink_always_inside_bounds(self, n, half, center):
        start, stop = shrink_to_bounds(center, half, n)
        assert 0 <= start <= stop <= n
        if stop > start:
            assert start <= center <= stop
            assert center - start == stop - center  # symmetric
            assert center - start <= half
