"""Property-based tests for the attack models and Procedure 2 geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.correlation import heuristic_correlation_match, random_match
from repro.attacks.optimizer import SearchArea
from repro.attacks.time_models import ConcentratedBurst, EvenlySpaced, UniformWindow
from repro.attacks.value_models import ValueSetSpec, generate_value_set
from repro.types import RatingStream

bias_strategy = st.floats(min_value=-4.0, max_value=1.0, allow_nan=False)
std_strategy = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)


class TestValueSetProperties:
    @given(st.integers(2, 100), bias_strategy, std_strategy, st.integers(0, 10**6))
    @settings(max_examples=100)
    def test_values_always_on_scale(self, n, bias, std, seed):
        values = generate_value_set(n, 4.0, ValueSetSpec(bias, std), seed=seed)
        assert values.shape == (n,)
        assert values.min() >= 0.0
        assert values.max() <= 5.0

    @given(st.integers(2, 100), st.integers(0, 10**6))
    def test_moments_exact_when_far_from_clip(self, n, seed):
        # bias -1, std 0.3 keeps virtually all mass inside [0, 5].
        spec = ValueSetSpec(-1.0, 0.3)
        values = generate_value_set(n, 4.0, spec, seed=seed)
        if values.min() > 0.0 and values.max() < 5.0:
            assert np.isclose(values.mean(), 3.0, atol=1e-9)
            assert np.isclose(values.std(), 0.3, atol=1e-9)

    @given(st.integers(1, 50), bias_strategy, st.integers(0, 10**6))
    def test_zero_std_is_constant(self, n, bias, seed):
        values = generate_value_set(n, 4.0, ValueSetSpec(bias, 0.0), seed=seed)
        assert np.unique(values).size == 1


class TestTimeModelProperties:
    @given(
        st.floats(0.0, 100.0), st.floats(0.1, 100.0), st.integers(1, 100),
        st.integers(0, 10**6),
    )
    def test_uniform_window_bounds(self, start, duration, n, seed):
        times = UniformWindow(start, duration).sample(n, np.random.default_rng(seed))
        assert times.size == n
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= start
        assert times.max() <= start + duration

    @given(st.floats(5.0, 100.0), st.floats(0.1, 5.0), st.integers(1, 100),
           st.integers(0, 10**6))
    def test_burst_width_bound(self, center, width, n, seed):
        times = ConcentratedBurst(center, width).sample(n, np.random.default_rng(seed))
        assert times.max() - times.min() <= width

    @given(st.floats(0.0, 50.0), st.floats(0.1, 10.0), st.integers(2, 100),
           st.floats(0.0, 0.9), st.integers(0, 10**6))
    def test_evenly_spaced_strictly_increasing(self, start, interval, n, jitter, seed):
        model = EvenlySpaced(start, interval, jitter=jitter)
        times = model.sample(n, np.random.default_rng(seed))
        assert np.all(np.diff(times) >= 0)
        # Total span close to (n-1) * interval regardless of jitter.
        assert abs((times[-1] - times[0]) - (n - 1) * interval) <= interval


class TestCorrelationProperties:
    @given(st.integers(1, 40), st.integers(0, 10**6))
    def test_heuristic_preserves_multiset(self, n, seed):
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0.0, 60.0, n))
        values = rng.uniform(0.0, 5.0, n)
        fair = RatingStream(
            "p", np.linspace(0.0, 60.0, 30), rng.uniform(3.0, 5.0, 30),
            [f"u{i}" for i in range(30)],
        )
        out_t, out_v = heuristic_correlation_match(times, values, fair)
        np.testing.assert_allclose(np.sort(out_v), np.sort(values))
        np.testing.assert_allclose(out_t, times)

    @given(st.integers(1, 40), st.integers(0, 10**6))
    def test_random_match_is_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        times = rng.uniform(0.0, 60.0, n)
        values = rng.uniform(0.0, 5.0, n)
        _t, out_v = random_match(times, values, seed=seed)
        np.testing.assert_allclose(np.sort(out_v), np.sort(values))


class TestSearchAreaProperties:
    @given(
        st.floats(-4.0, -0.5), st.floats(0.0, 1.5),
        st.integers(1, 9), st.floats(0.0, 0.5),
    )
    def test_subdivide_union_covers_parent(self, bias_min, std_min, n, overlap):
        area = SearchArea(bias_min, bias_min + 2.0, std_min, std_min + 1.0)
        subareas = area.subdivide(n, overlap=overlap)
        assert 1 <= len(subareas) <= n
        for sub in subareas:
            assert sub.bias_min >= area.bias_min - 1e-9
            assert sub.bias_max <= area.bias_max + 1e-9
            assert sub.std_min >= area.std_min - 1e-9
            assert sub.std_max <= area.std_max + 1e-9
        assert np.isclose(min(s.bias_min for s in subareas), area.bias_min)
        assert np.isclose(max(s.bias_max for s in subareas), area.bias_max)

    @given(st.floats(-4.0, 0.0), st.floats(0.0, 2.0))
    def test_center_inside_area(self, bias_min, std_min):
        area = SearchArea(bias_min, bias_min + 1.0, std_min, std_min + 0.5)
        bias, std = area.center
        assert area.bias_min <= bias <= area.bias_max
        assert area.std_min <= std <= area.std_max
