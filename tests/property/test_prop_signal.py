"""Property-based tests for the signal substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.signal.clustering import single_linkage_two_clusters, two_cluster_split_1d
from repro.signal.glrt import gaussian_mean_change_statistic
from repro.signal.poisson import poisson_rate_change_statistic

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
sample = arrays(np.float64, st.integers(1, 40), elements=finite_floats)
counts = arrays(
    np.float64,
    st.integers(1, 40),
    elements=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)


class TestGaussianStatisticProperties:
    @given(sample, sample)
    def test_non_negative(self, x1, x2):
        assert gaussian_mean_change_statistic(x1, x2) >= 0.0

    @given(sample, sample)
    def test_symmetric(self, x1, x2):
        a = gaussian_mean_change_statistic(x1, x2)
        b = gaussian_mean_change_statistic(x2, x1)
        assert np.isclose(a, b, rtol=1e-9, atol=1e-9)

    @given(sample)
    def test_zero_against_itself(self, x):
        assert gaussian_mean_change_statistic(x, x) == 0.0

    @given(sample, finite_floats)
    def test_shift_invariance(self, x, shift):
        """Adding the same constant to both halves changes nothing."""
        a = gaussian_mean_change_statistic(x, x + 1.0)
        b = gaussian_mean_change_statistic(x + shift, x + 1.0 + shift)
        assert np.isclose(a, b, rtol=1e-6, atol=1e-6)

    @given(sample, st.floats(min_value=0.01, max_value=10.0))
    def test_quadratic_in_gap(self, x, gap):
        """Statistic scales with the square of the mean gap."""
        one = gaussian_mean_change_statistic(x, x + gap)
        two = gaussian_mean_change_statistic(x, x + 2.0 * gap)
        assert np.isclose(two, 4.0 * one, rtol=1e-6, atol=1e-9)


class TestPoissonStatisticProperties:
    @given(counts, counts)
    def test_non_negative(self, y1, y2):
        assert poisson_rate_change_statistic(y1, y2) >= 0.0

    @given(counts, counts)
    def test_symmetric(self, y1, y2):
        a = poisson_rate_change_statistic(y1, y2)
        b = poisson_rate_change_statistic(y2, y1)
        assert np.isclose(a, b, rtol=1e-9, atol=1e-12)

    @given(counts)
    def test_zero_against_itself(self, y):
        assert np.isclose(
            poisson_rate_change_statistic(y, y), 0.0, atol=1e-12
        )

    @given(counts, counts)
    def test_total_equals_per_day_times_window(self, y1, y2):
        per_day = poisson_rate_change_statistic(y1, y2)
        total = poisson_rate_change_statistic(y1, y2, total=True)
        assert np.isclose(total, per_day * (y1.size + y2.size), rtol=1e-9)

    @given(
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(2, 30),
    )
    def test_constant_halves_depend_only_on_rates(self, r1, r2, n):
        """For constant counts the statistic reduces to the rate KL form."""
        y1 = np.full(n, r1)
        y2 = np.full(n, r2)
        stat = poisson_rate_change_statistic(y1, y2)
        if abs(r1 - r2) < 1e-6:
            assert stat < 1e-5
        else:
            assert stat > 0.0


class TestClusteringProperties:
    @given(arrays(np.float64, st.integers(1, 25), elements=finite_floats))
    @settings(max_examples=150)
    def test_fast_and_general_agree(self, values):
        np.testing.assert_array_equal(
            two_cluster_split_1d(values), single_linkage_two_clusters(values)
        )

    @given(arrays(np.float64, st.integers(2, 40), elements=finite_floats))
    def test_labels_are_binary_and_ordered(self, values):
        labels = two_cluster_split_1d(values)
        assert set(labels).issubset({0, 1})
        # Cluster 0 contains the minimum.
        assert labels[int(np.argmin(values))] == 0
        # Clusters are separated: max of cluster 0 < min of cluster 1.
        if (labels == 1).any():
            assert values[labels == 0].max() < values[labels == 1].min()

    @given(arrays(np.float64, st.integers(2, 30), elements=finite_floats))
    def test_split_at_largest_gap(self, values):
        labels = two_cluster_split_1d(values)
        if not (labels == 1).any():
            return  # one cluster: all values equal
        sorted_vals = np.sort(values)
        gaps = np.diff(sorted_vals)
        boundary_gap = values[labels == 1].min() - values[labels == 0].max()
        assert np.isclose(boundary_gap, gaps.max())

    @given(arrays(np.float64, st.integers(1, 30), elements=finite_floats))
    def test_permutation_invariance(self, values):
        rng = np.random.default_rng(0)
        perm = rng.permutation(values.size)
        base = two_cluster_split_1d(values)
        permuted = two_cluster_split_1d(values[perm])
        np.testing.assert_array_equal(base[perm], permuted)
