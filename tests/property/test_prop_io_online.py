"""Property-based tests: serialization round-trips and streaming equivalence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import SimpleAveragingScheme
from repro.attacks.base import AttackSubmission, build_attack_stream
from repro.marketplace.io import (
    dataset_from_csv,
    dataset_to_csv,
    submission_from_json,
    submission_to_json,
)
from repro.online import OnlineRatingSystem
from repro.types import Rating, RatingDataset, RatingStream

times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    min_size=0,
    max_size=30,
)
values_strategy = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


def build_dataset(times_lists):
    streams = []
    for index, times in enumerate(times_lists):
        n = len(times)
        values = [float((i * 7 % 11) / 2.2) for i in range(n)]
        raters = [f"u{index}_{i}" for i in range(n)]
        unfair = [i % 3 == 0 for i in range(n)]
        streams.append(RatingStream(f"prod{index}", times, values, raters, unfair))
    return RatingDataset(streams)


class TestCsvRoundTripProperties:
    @given(st.lists(times_strategy, min_size=1, max_size=4))
    @settings(max_examples=60)
    def test_round_trip_preserves_everything(self, times_lists):
        original = build_dataset(times_lists)
        restored = dataset_from_csv(dataset_to_csv(original))
        # Products with zero ratings vanish from CSV (no rows); all others
        # must round-trip exactly.
        for pid in original:
            if len(original[pid]) == 0:
                assert pid not in restored
                continue
            np.testing.assert_array_equal(restored[pid].times, original[pid].times)
            np.testing.assert_array_equal(restored[pid].values, original[pid].values)
            assert restored[pid].rater_ids == original[pid].rater_ids
            np.testing.assert_array_equal(restored[pid].unfair, original[pid].unfair)


class TestJsonRoundTripProperties:
    @given(times_strategy, st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_submission_round_trip(self, times, seed):
        rng = np.random.default_rng(seed)
        n = len(times)
        values = rng.uniform(0, 5, n)
        stream = build_attack_stream(
            "p", times, values, [f"a{i}" for i in range(n)]
        )
        original = AttackSubmission(
            "s", {"p": stream}, strategy="test", params={"seed": seed}
        )
        restored = submission_from_json(submission_to_json(original))
        np.testing.assert_allclose(
            restored.streams["p"].times, original.streams["p"].times
        )
        np.testing.assert_allclose(
            restored.streams["p"].values, original.streams["p"].values
        )
        assert restored.streams["p"].rater_ids == original.streams["p"].rater_ids


class TestOnlineBatchEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=89.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40)
    def test_epoch_scores_equal_batch_scores(self, pairs):
        ratings = [
            Rating(time=t, rater_id=f"u{i}", product_id="p", value=v)
            for i, (t, v) in enumerate(pairs)
        ]
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit_many(sorted(ratings))
        while system.current_epoch_start < 90.0:
            system.close_epoch()
        batch = SimpleAveragingScheme().monthly_scores(
            system.dataset(), 30.0, 0.0, 90.0
        )
        for index in range(3):
            online_score = system.reports[index].scores.get("p", float("nan"))
            batch_score = batch["p"][index]
            if np.isnan(batch_score):
                assert np.isnan(online_score)
            else:
                assert online_score == batch_score
