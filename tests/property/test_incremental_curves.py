"""Exact-equality pinning of the vectorized curve builders.

The fast-path builders in :mod:`repro.signal.curves` replaced per-window
Python loops with batched sliding-window kernels under a **bit-identical**
contract (the determinism and telemetry-parity suites depend on it).
This module retains the original naive implementations -- one scalar
statistic call per window centre, exactly as the pre-rewrite code did --
and asserts the production builders match them with ``np.array_equal``
(no tolerance) on randomized streams and on the structural edge cases:
empty streams, single ratings, all-same-day timestamps, constant values
(singular AR windows), and windows shorter than the AR order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import DetectorConfig, JointDetector, extract_columns
from repro.errors import ValidationError
from repro.obs import MetricsRegistry
from repro.signal.ar import fit_ar_covariance
from repro.signal.clustering import two_cluster_split_1d
from repro.signal.curves import (
    arrival_rate_curve,
    histogram_change_curve,
    mean_change_curve_by_count,
    mean_change_curve_by_time,
    model_error_curve,
)
from repro.signal.glrt import gaussian_mean_change_statistic
from repro.signal.poisson import poisson_rate_change_statistic
from repro.types import RatingDataset, RatingStream
from repro.utils.windows import centered_windows


# --------------------------------------------------------------------- #
# Naive references: the pre-rewrite per-window loops, kept verbatim.
# --------------------------------------------------------------------- #


def naive_mean_change_by_count(times, values, half_width):
    centers, stats = [], []
    for center, start, stop in centered_windows(values.size, half_width):
        stats.append(
            gaussian_mean_change_statistic(values[start:center], values[center:stop])
        )
        centers.append(center)
    centers_arr = np.asarray(centers, dtype=int)
    return times[centers_arr], centers_arr, np.asarray(stats, dtype=float)


def naive_mean_change_by_time(times, values, window_days):
    n = values.size
    half = window_days / 2.0
    stats = np.zeros(n, dtype=float)
    lo = 0
    hi = 0
    for k in range(n):
        t = times[k]
        while lo < n and times[lo] < t - half:
            lo += 1
        if hi < k:
            hi = k
        while hi < n and times[hi] < t + half:
            hi += 1
        first, second = values[lo:k], values[k:hi]
        if first.size and second.size:
            stats[k] = gaussian_mean_change_statistic(first, second)
    return times.copy(), np.arange(n), stats


def naive_arrival_rate(days, counts, half_width_days, total_llr):
    centers, stats = [], []
    for center, start, stop in centered_windows(counts.size, half_width_days):
        stats.append(
            poisson_rate_change_statistic(
                counts[start:center], counts[center:stop], total=total_llr
            )
        )
        centers.append(center)
    centers_arr = np.asarray(centers, dtype=int)
    return days[centers_arr], centers_arr, np.asarray(stats, dtype=float)


def naive_histogram_change(times, values, window_ratings):
    n = values.size
    centers, stats = [], []
    for start in range(0, n - window_ratings + 1):
        stop = start + window_ratings
        labels = two_cluster_split_1d(values[start:stop])
        n1 = int(np.sum(labels == 0))
        n2 = int(np.sum(labels == 1))
        if n1 == 0 or n2 == 0:
            stats.append(0.0)
        else:
            stats.append(min(n1 / n2, n2 / n1))
        centers.append(start + window_ratings // 2)
    centers_arr = np.asarray(centers, dtype=int)
    return times[centers_arr], centers_arr, np.asarray(stats, dtype=float)


def naive_model_error(times, values, window_ratings, order):
    n = values.size
    centers, stats = [], []
    for start in range(0, n - window_ratings + 1):
        stop = start + window_ratings
        fit = fit_ar_covariance(values[start:stop], order)
        stats.append(fit.normalized_error)
        centers.append(start + window_ratings // 2)
    centers_arr = np.asarray(centers, dtype=int)
    return times[centers_arr], centers_arr, np.asarray(stats, dtype=float)


def assert_curve_equals(curve, reference):
    """Bitwise equality of a Curve against a naive (times, indices, values)."""
    ref_times, ref_indices, ref_values = reference
    assert np.array_equal(curve.times, ref_times)
    assert np.array_equal(curve.indices, ref_indices)
    assert np.array_equal(curve.values, ref_values)


# --------------------------------------------------------------------- #
# Randomized stream strategies
# --------------------------------------------------------------------- #

value_elements = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


@st.composite
def rating_streams(draw, min_size=0, max_size=120):
    """(times, values) with non-decreasing times, possibly with ties."""
    n = draw(st.integers(min_size, max_size))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    values = draw(st.lists(value_elements, min_size=n, max_size=n))
    times = np.cumsum(np.asarray(gaps, dtype=float))
    return times, np.asarray(values, dtype=float)


@st.composite
def count_series(draw, max_size=90):
    n = draw(st.integers(0, max_size))
    counts = draw(
        st.lists(st.integers(0, 30), min_size=n, max_size=n)
    )
    days = np.arange(n, dtype=float)
    return days, np.asarray(counts, dtype=float)


class TestMeanChangeByCountExact:
    @given(rating_streams(), st.integers(1, 25))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, stream, half_width):
        times, values = stream
        curve = mean_change_curve_by_count(times, values, half_width)
        if values.size < 2:
            assert curve.is_empty
            return
        assert_curve_equals(
            curve, naive_mean_change_by_count(times, values, half_width)
        )

    def test_edge_cases(self):
        for times, values in [
            (np.array([]), np.array([])),                      # empty
            (np.array([3.0]), np.array([4.0])),                # single rating
            (np.zeros(20), np.linspace(0, 5, 20)),             # all same day
            (np.arange(20.0), np.full(20, 4.0)),               # constant values
        ]:
            curve = mean_change_curve_by_count(times, values, 7)
            if values.size < 2:
                assert curve.is_empty
            else:
                assert_curve_equals(
                    curve, naive_mean_change_by_count(times, values, 7)
                )


class TestMeanChangeByTimeExact:
    @given(rating_streams(), st.floats(min_value=0.5, max_value=40.0))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, stream, window_days):
        times, values = stream
        curve = mean_change_curve_by_time(times, values, window_days)
        if values.size < 2:
            assert curve.is_empty
            return
        assert_curve_equals(
            curve, naive_mean_change_by_time(times, values, window_days)
        )

    def test_all_same_day(self):
        # Every rating in one half-window: both halves non-empty for all
        # interior centres.
        times = np.zeros(30)
        values = np.linspace(0.0, 5.0, 30)
        curve = mean_change_curve_by_time(times, values, 30.0)
        assert_curve_equals(curve, naive_mean_change_by_time(times, values, 30.0))

    def test_sparse_times_empty_halves(self):
        # Gaps wider than the window leave empty halves -> statistic 0.
        times = np.array([0.0, 100.0, 200.0, 300.0])
        values = np.array([1.0, 5.0, 1.0, 5.0])
        curve = mean_change_curve_by_time(times, values, 10.0)
        assert_curve_equals(curve, naive_mean_change_by_time(times, values, 10.0))
        assert np.array_equal(curve.values, np.zeros(4))


class TestArrivalRateExact:
    @given(count_series(), st.integers(1, 20), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, series, half_width, total_llr):
        days, counts = series
        curve = arrival_rate_curve(
            days, counts, half_width, kind="H-ARC", total_llr=total_llr
        )
        if counts.size < 2:
            assert curve.is_empty
            return
        assert_curve_equals(
            curve, naive_arrival_rate(days, counts, half_width, total_llr)
        )

    def test_edge_cases(self):
        for n in (0, 1, 2, 3):
            days = np.arange(n, dtype=float)
            counts = np.zeros(n)
            curve = arrival_rate_curve(days, counts, 15)
            if n < 2:
                assert curve.is_empty
            else:
                assert_curve_equals(
                    curve, naive_arrival_rate(days, counts, 15, True)
                )


class TestHistogramChangeExact:
    @given(rating_streams(max_size=100), st.integers(2, 40))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, stream, window):
        times, values = stream
        curve = histogram_change_curve(times, values, window)
        if values.size < window:
            assert curve.is_empty
            return
        assert_curve_equals(curve, naive_histogram_change(times, values, window))

    def test_edge_cases(self):
        rng = np.random.default_rng(7)
        for values in [
            np.array([]),
            np.array([4.0]),                                    # single rating
            np.full(50, 4.0),                                   # one cluster
            np.concatenate([np.full(25, 1.0), np.full(25, 5.0)]),  # two clusters
            rng.uniform(0, 5, 60),
        ]:
            times = np.zeros(values.size)                       # all same day
            curve = histogram_change_curve(times, values, 40)
            if values.size < 40:
                assert curve.is_empty
            else:
                assert_curve_equals(
                    curve, naive_histogram_change(times, values, 40)
                )


class TestModelErrorExact:
    @given(rating_streams(max_size=100), st.integers(8, 50), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, stream, window, order):
        times, values = stream
        if window < 2 * order:
            with pytest.raises(ValidationError):
                model_error_curve(times, values, window, order=order)
            return
        curve = model_error_curve(times, values, window, order=order)
        if values.size < window:
            assert curve.is_empty
            return
        assert_curve_equals(
            curve, naive_model_error(times, values, window, order)
        )

    def test_window_shorter_than_order_raises(self):
        times = np.arange(40.0)
        values = np.linspace(0, 5, 40)
        with pytest.raises(ValidationError):
            model_error_curve(times, values, 7, order=4)

    def test_constant_window_singular_fallback(self):
        # Constant values make the AR normal equations singular; the
        # batched solver must fall back to the pinv path and still match
        # the naive per-window fit exactly.
        values = np.concatenate([np.full(45, 4.0), np.linspace(0, 5, 30)])
        times = np.arange(values.size, dtype=float)
        curve = model_error_curve(times, values, 40, order=4)
        assert_curve_equals(curve, naive_model_error(times, values, 40, 4))
        # The all-constant windows report normalized error 1.0.
        assert curve.values[0] == 1.0


def _random_dataset(rng, num_products=6):
    streams = []
    for i in range(num_products):
        n = int(rng.integers(0, 200))
        times = np.sort(rng.uniform(0.0, 90.0, n))
        values = rng.uniform(0.0, 5.0, n)
        raters = [f"r{int(rng.integers(0, 40))}" for _ in range(n)]
        unfair = rng.random(n) < 0.2
        streams.append(RatingStream(f"p{i}", times, values, raters, unfair))
    return RatingDataset(streams)


class TestAnalyzeBatchEquivalence:
    """analyze_batch must reproduce per-stream analyze bit-for-bit."""

    def test_reports_and_metrics_match(self):
        rng = np.random.default_rng(2008)
        dataset = _random_dataset(rng)
        serial_registry = MetricsRegistry()
        batch_registry = MetricsRegistry()
        serial = JointDetector(registry=serial_registry)
        batched = JointDetector(registry=batch_registry)
        expected = {
            pid: serial.analyze(dataset[pid]) for pid in dataset
        }
        got = batched.analyze_batch(dataset)
        assert list(got) == list(expected)
        for pid in dataset:
            a, b = expected[pid], got[pid]
            assert np.array_equal(a.suspicious, b.suspicious)
            assert np.array_equal(a.provenance, b.provenance)
            assert a.path1_intervals == b.path1_intervals
            assert a.path2_intervals == b.path2_intervals
            assert a.alarms == b.alarms
            assert set(a.curves) == set(b.curves)
            for kind in a.curves:
                assert np.array_equal(a.curves[kind].times, b.curves[kind].times)
                assert np.array_equal(
                    a.curves[kind].indices, b.curves[kind].indices
                )
                assert np.array_equal(
                    a.curves[kind].values, b.curves[kind].values
                )
        # Per-detector call counters are preserved by the batch path.
        for name, counter in serial_registry.counters.items():
            if name.startswith("detector.") and name.endswith(".calls"):
                assert (
                    batch_registry.counter_value(name) == counter.value
                ), name

    def test_short_streams_counted(self):
        config = DetectorConfig()
        streams = [
            RatingStream("tiny", [1.0], [4.0], ["r1"]),
            RatingStream("empty", [], [], []),
        ]
        registry = MetricsRegistry()
        detector = JointDetector(config, registry=registry)
        reports = detector.analyze_batch(RatingDataset(streams))
        assert all(not r.suspicious.any() for r in reports.values())
        assert registry.counter_value("detector.short_streams") == 2

    def test_columns_roundtrip(self):
        rng = np.random.default_rng(11)
        dataset = _random_dataset(rng, num_products=4)
        columns = extract_columns(dataset)
        assert columns.product_ids == tuple(dataset)
        assert columns.total_ratings == dataset.total_ratings()
        for i, pid in enumerate(columns.product_ids):
            stream = dataset[pid]
            assert np.array_equal(columns.stream_times(i), stream.times)
            assert np.array_equal(columns.stream_values(i), stream.values)
            decoded = tuple(
                columns.rater_vocab[code]
                for code in columns.rater_codes[columns.stream_slice(i)]
            )
            assert decoded == stream.rater_ids
