"""Property-based invariance tests for the detector stack.

Detection decisions should depend on the *shape* of the rating process,
not on arbitrary reference points:

- shifting every timestamp by a whole number of days must not change
  which ratings are marked (whole days, because the daily-count binning
  is anchored at integer day boundaries);
- relabelling rater ids must not change marks (the trust-free pass uses
  no identity information);
- detection must be a pure function of the stream (repeated runs agree).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import JointDetector
from repro.types import RatingStream


def build_stream(seed, n_fair=240, attack=True):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, 80.0, n_fair))
    values = np.clip(np.round(rng.normal(4.0, 0.6, n_fair) * 2) / 2, 0, 5)
    raters = [f"u{i}" for i in range(n_fair)]
    unfair = np.zeros(n_fair, dtype=bool)
    if attack:
        n_atk = 40
        atk_times = np.sort(rng.uniform(30.0, 45.0, n_atk))
        atk_values = np.clip(rng.normal(1.0, 0.3, n_atk), 0, 5)
        times = np.concatenate([times, atk_times])
        values = np.concatenate([values, atk_values])
        raters = raters + [f"atk{i}" for i in range(n_atk)]
        unfair = np.concatenate([unfair, np.ones(n_atk, dtype=bool)])
    return RatingStream("p", times, values, raters, unfair)


class TestDetectorInvariances:
    @given(st.integers(0, 50), st.integers(-30, 30))
    @settings(max_examples=15, deadline=None)
    def test_whole_day_time_shift_invariance(self, seed, shift_days):
        stream = build_stream(seed)
        shifted = RatingStream(
            "p",
            stream.times + float(shift_days),
            stream.values,
            stream.rater_ids,
            stream.unfair,
        )
        detector = JointDetector()
        base_marks = detector.analyze(stream).suspicious
        shifted_marks = detector.analyze(shifted).suspicious
        np.testing.assert_array_equal(base_marks, shifted_marks)

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_rater_relabelling_invariance(self, seed):
        stream = build_stream(seed)
        relabelled = RatingStream(
            "p",
            stream.times,
            stream.values,
            [f"x{i}" for i in range(len(stream))],
            stream.unfair,
        )
        detector = JointDetector()
        np.testing.assert_array_equal(
            detector.analyze(stream).suspicious,
            detector.analyze(relabelled).suspicious,
        )

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_detection_is_pure(self, seed):
        stream = build_stream(seed, attack=seed % 2 == 0)
        a = JointDetector().analyze(stream).suspicious
        b = JointDetector().analyze(stream).suspicious
        np.testing.assert_array_equal(a, b)

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_marks_only_within_stream(self, seed):
        stream = build_stream(seed)
        report = JointDetector().analyze(stream)
        assert report.suspicious.shape == (len(stream),)
        assert report.suspicious.dtype == bool
