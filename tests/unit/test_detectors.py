"""Unit tests for the four detectors and their integration (Figure 1)."""

import numpy as np
import pytest

from repro.detectors.arrival_rate import ArrivalRateDetector
from repro.detectors.base import DetectorConfig, TimeInterval
from repro.detectors.histogram import HistogramChangeDetector
from repro.detectors.integration import JointDetector
from repro.detectors.mean_change import MeanChangeDetector
from repro.detectors.model_error import ModelErrorDetector
from repro.errors import ValidationError
from repro.types import RatingDataset, RatingStream


def fair_stream(seed=0, days=120, per_day=6, mean=4.0, std=0.6, product="p"):
    rng = np.random.default_rng(seed)
    n = int(days * per_day)
    times = np.sort(rng.uniform(0.0, days, n))
    # Half-star quantisation, like the default fair world: the HC detector
    # is calibrated for star-rating data, where cluster gaps are real.
    values = np.clip(np.round(rng.normal(mean, std, n) * 2.0) / 2.0, 0, 5)
    raters = [f"u{i}" for i in range(n)]
    return RatingStream(product, times, values, raters)


def attacked_stream(seed=0, attack_start=50.0, attack_days=20.0, n_attack=50,
                    attack_mean=0.8, attack_std=0.3, **kwargs):
    base = fair_stream(seed=seed, **kwargs)
    rng = np.random.default_rng(seed + 1000)
    times = np.sort(rng.uniform(attack_start, attack_start + attack_days, n_attack))
    values = np.clip(rng.normal(attack_mean, attack_std, n_attack), 0, 5)
    attack = RatingStream(
        base.product_id, times, values,
        [f"atk{i}" for i in range(n_attack)], unfair=np.ones(n_attack, bool),
    )
    return base.merge(attack)


class TestTimeInterval:
    def test_contains(self):
        interval = TimeInterval(1.0, 3.0)
        assert interval.contains(1.0) and interval.contains(3.0)
        assert not interval.contains(3.01)

    def test_intersect(self):
        a = TimeInterval(0.0, 5.0)
        b = TimeInterval(3.0, 8.0)
        inter = a.intersect(b)
        assert (inter.start, inter.stop) == (3.0, 5.0)

    def test_disjoint_intersection_none(self):
        assert TimeInterval(0.0, 1.0).intersect(TimeInterval(2.0, 3.0)) is None

    def test_mask(self):
        mask = TimeInterval(1.0, 2.0).mask(np.array([0.5, 1.5, 2.5]))
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_invalid_order_rejected(self):
        with pytest.raises(ValidationError):
            TimeInterval(2.0, 1.0)

    def test_duration(self):
        assert TimeInterval(1.0, 4.0).duration == 3.0


class TestDetectorConfig:
    def test_paper_windows(self):
        config = DetectorConfig()
        assert config.mc_window_days == 30.0
        assert config.arc_window_days == 30
        assert config.hc_window_ratings == 40
        assert config.me_window_ratings == 40

    def test_value_thresholds_formula(self):
        config = DetectorConfig()
        assert config.high_value_threshold(4.0) == pytest.approx(2.0)
        assert config.low_value_threshold(4.0) == pytest.approx(2.5)

    def test_invalid_configs(self):
        with pytest.raises(ValidationError):
            DetectorConfig(mc_window_days=0)
        with pytest.raises(ValidationError):
            DetectorConfig(me_window_ratings=4, ar_order=4)
        with pytest.raises(ValidationError):
            DetectorConfig(mc_mean_threshold1=0.3, mc_mean_threshold2=0.4)

    def test_per_kind_thresholds(self):
        config = DetectorConfig()
        assert config.peak_threshold_for("H-ARC") == config.harc_peak_threshold
        assert config.alarm_threshold_for("L-ARC") == config.larc_alarm_threshold
        assert config.peak_threshold_for("ARC") == config.arc_peak_threshold


class TestMeanChangeDetector:
    def test_attack_produces_peaks(self):
        report = MeanChangeDetector().analyze(attacked_stream())
        assert len(report.peaks) >= 1
        assert report.curve.max_value() > DetectorConfig().mc_peak_threshold

    def test_fair_stream_few_peaks(self):
        report = MeanChangeDetector().analyze(fair_stream(seed=3))
        assert report.curve.max_value() < 20.0

    def test_u_shape_brackets_attack(self):
        report = MeanChangeDetector().analyze(attacked_stream(attack_start=50.0))
        assert report.u_shape is not None
        assert 35.0 < report.u_shape.start_time < 60.0
        assert 60.0 < report.u_shape.stop_time < 85.0

    def test_trust_moderated_segments(self):
        stream = attacked_stream()
        detector = MeanChangeDetector()
        peaks = detector.peaks(detector.curve(stream))
        if len(peaks) >= 2:
            distrusted = detector.suspicious_segments(
                stream, peaks, trust_lookup=lambda r: 0.1 if r.startswith("atk") else 0.9
            )
            neutral = detector.suspicious_segments(stream, peaks, trust_lookup=None)
            assert len(distrusted) >= len(neutral)


class TestArrivalRateDetector:
    def test_kind_validation(self):
        with pytest.raises(ValidationError):
            ArrivalRateDetector("X-ARC")

    def test_larc_counts_only_low_ratings(self):
        stream = attacked_stream()
        detector = ArrivalRateDetector("L-ARC")
        _days, counts = detector.daily_counts(stream)
        total_low = int(counts.sum())
        mean = float(stream.values.mean())
        expected = int((stream.values < DetectorConfig().low_value_threshold(mean)).sum())
        assert total_low == expected

    def test_harc_counts_high_ratings(self):
        stream = fair_stream()
        detector = ArrivalRateDetector("H-ARC")
        _days, counts = detector.daily_counts(stream)
        mean = float(stream.values.mean())
        expected = int((stream.values > DetectorConfig().high_value_threshold(mean)).sum())
        assert int(counts.sum()) == expected

    def test_downgrade_attack_trips_larc(self):
        report = ArrivalRateDetector("L-ARC").analyze(attacked_stream())
        assert report.alarm
        assert len(report.peaks) >= 1

    def test_fair_stream_quiet(self):
        report = ArrivalRateDetector("L-ARC").analyze(fair_stream(seed=8))
        assert len(report.suspicious_intervals) == 0

    def test_empty_stream(self):
        report = ArrivalRateDetector("L-ARC").analyze(RatingStream.empty("p"))
        assert not report.alarm
        assert report.curve.is_empty

    def test_multi_scale_curves(self):
        detector = ArrivalRateDetector("L-ARC")
        curves = detector.curves(fair_stream())
        assert len(curves) == 2  # short + long scale

    def test_long_scale_disabled(self):
        config = DetectorConfig(arc_long_window_days=0)
        detector = ArrivalRateDetector("L-ARC", config)
        assert len(detector.curves(fair_stream())) == 1


class TestHistogramChangeDetector:
    def test_bimodal_window_suspicious(self):
        # Alternating 4.5/0.5: perfectly balanced clusters.
        times = np.arange(60, dtype=float)
        values = np.array([4.5, 0.5] * 30)
        stream = RatingStream("p", times, values, [f"u{i}" for i in range(60)])
        report = HistogramChangeDetector().analyze(stream)
        assert report.any_suspicious

    def test_fair_stream_not_suspicious(self):
        report = HistogramChangeDetector().analyze(fair_stream(seed=4))
        assert not report.any_suspicious

    def test_short_stream_empty_report(self):
        stream = fair_stream()
        short = stream.subset(np.arange(len(stream)) < 10)
        report = HistogramChangeDetector().analyze(short)
        assert report.curve.is_empty


class TestModelErrorDetector:
    def test_noise_not_suspicious(self):
        report = ModelErrorDetector().analyze(fair_stream(seed=5))
        assert not report.any_suspicious

    def test_predictable_signal_suspicious(self):
        times = np.arange(100, dtype=float)
        values = 3.0 + 1.5 * np.sin(0.35 * times)
        stream = RatingStream("p", times, values, [f"u{i}" for i in range(100)])
        report = ModelErrorDetector().analyze(stream)
        assert report.any_suspicious


class TestJointDetector:
    def test_strong_attack_detected(self):
        stream = attacked_stream()
        report = JointDetector().analyze(stream)
        unfair = stream.unfair
        recall = (report.suspicious & unfair).sum() / unfair.sum()
        assert recall > 0.8
        collateral = (report.suspicious & ~unfair).sum() / (~unfair).sum()
        assert collateral < 0.05

    def test_fair_stream_mostly_clean(self):
        report = JointDetector().analyze(fair_stream(seed=6))
        assert report.num_suspicious < 0.01 * 720

    def test_short_stream_skipped(self):
        stream = fair_stream().subset(np.arange(720) < 5)
        report = JointDetector().analyze(stream)
        assert report.num_suspicious == 0
        assert not report.any_detection

    def test_report_structure(self):
        report = JointDetector().analyze(attacked_stream())
        assert set(report.curves) == {"MC", "H-ARC", "L-ARC", "HC", "ME"}
        assert set(report.alarms) == {"H-ARC", "L-ARC"}
        assert report.intervals() == list(report.path1_intervals) + list(
            report.path2_intervals
        )

    def test_analyze_dataset(self):
        ds = RatingDataset([fair_stream(seed=1, product="a"),
                            fair_stream(seed=2, product="b")])
        reports = JointDetector().analyze_dataset(ds)
        assert set(reports) == {"a", "b"}

    def test_suspicious_mask_frozen(self):
        report = JointDetector().analyze(fair_stream(seed=7))
        with pytest.raises(ValueError):
            report.suspicious[0] = True
