"""Unit tests for the Chrome/Perfetto trace exporter (repro.obs.trace)."""

import json
import os

import pytest

from repro.errors import ValidationError
from repro.obs import (
    MetricsRegistry,
    read_trace,
    span,
    summarize_trace,
    use_registry,
    write_trace,
)
from repro.obs.trace import trace_events


def traced_registry():
    registry = MetricsRegistry()
    registry.inc("detector.joint.calls", 2)
    with use_registry(registry):
        with span("exec.map"):
            with span("exec.task") as record:
                record.annotate(task="PopulationEvalTask")
    return registry


class TestTraceEvents:
    def test_complete_events_cover_every_span(self):
        registry = traced_registry()
        events = trace_events(registry)
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["path"] for e in complete} == {
            "exec.map",
            "exec.map.exec.task",
        }
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == os.getpid()
            assert event["cat"] == "exec"

    def test_timestamps_normalized_to_earliest_span(self):
        events = trace_events(traced_registry())
        complete = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == pytest.approx(0.0)

    def test_annotations_become_event_args(self):
        events = trace_events(traced_registry())
        task = next(e for e in events if e["name"] == "exec.task")
        assert task["args"]["task"] == "PopulationEvalTask"

    def test_counters_exported_as_counter_event(self):
        events = trace_events(traced_registry())
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"]["detector.joint.calls"] == 2.0

    def test_process_metadata_per_pid_lane(self):
        from dataclasses import replace

        registry = traced_registry()
        # Simulate a merged worker record: non-zero foreign pid.
        registry.spans[0] = replace(registry.spans[0], pid=99999)
        events = trace_events(registry)
        meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
        assert meta[os.getpid()] == "repro main"
        assert meta[99999] == "repro worker 99999"
        # Metadata events come first so viewers name lanes before drawing.
        phases = [e["ph"] for e in events]
        assert phases[: phases.count("M")] == ["M"] * phases.count("M")

    def test_empty_registry_yields_only_main_metadata(self):
        events = trace_events(MetricsRegistry())
        assert [e["ph"] for e in events] == ["M"]


class TestWriteReadRoundTrip:
    def test_round_trip_is_structurally_valid(self, tmp_path):
        path = tmp_path / "trace.json"
        registry = traced_registry()
        count = write_trace(registry, path)
        payload = read_trace(path)
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"
        assert registry.counter_value("trace.events_written") == count

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="not valid JSON"):
            read_trace(path)

    def test_read_rejects_missing_trace_events(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"events": []}))
        with pytest.raises(ValidationError, match="traceEvents"):
            read_trace(path)

    def test_read_rejects_event_without_phase(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        with pytest.raises(ValidationError, match="'ph'/'name'"):
            read_trace(path)

    def test_read_rejects_complete_event_with_bad_timestamp(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "X", "ts": "soon",
                         "dur": 1, "pid": 1}
                    ]
                }
            )
        )
        with pytest.raises(ValidationError, match="non-numeric 'ts'"):
            read_trace(path)


class TestSummarize:
    def test_summary_mentions_lanes_and_longest_spans(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(traced_registry(), path)
        text = summarize_trace(read_trace(path))
        assert "process lanes:" in text
        assert str(os.getpid()) in text
        assert "exec.map" in text

    def test_summary_of_empty_trace(self):
        text = summarize_trace({"traceEvents": []})
        assert "0 events" in text
        assert "(none)" in text

    def test_cache_hit_rate_from_counters(self):
        registry = MetricsRegistry()
        registry.inc("exec.cache.hits", 3)
        registry.inc("exec.cache.misses", 1)
        text = summarize_trace({"traceEvents": trace_events(registry)})
        assert "MP cache: 3/4 lookups hit (75%)" in text
        assert "corrupt" not in text

    def test_cache_line_on_fully_warm_run(self):
        # A warm run dispatches zero tasks but answers every lookup from
        # the cache; the hit rate must still read 100%, not 0.
        registry = MetricsRegistry()
        registry.inc("exec.cache.hits", 8)
        text = summarize_trace({"traceEvents": trace_events(registry)})
        assert "MP cache: 8/8 lookups hit (100%)" in text

    def test_corrupt_entries_surfaced(self):
        registry = MetricsRegistry()
        registry.inc("exec.cache.hits", 2)
        registry.inc("exec.cache.misses", 2)
        registry.inc("exec.cache.corrupt", 1)
        text = summarize_trace({"traceEvents": trace_events(registry)})
        assert "1 corrupt entries treated as misses" in text

    def test_no_cache_line_without_lookups(self):
        text = summarize_trace(
            {"traceEvents": trace_events(traced_registry())}
        )
        assert "MP cache" not in text

    def test_summary_reports_self_time_alongside_total(self):
        text = summarize_trace(
            {"traceEvents": trace_events(traced_registry())}
        )
        assert "(total / self):" in text
        assert "ms self" in text
        assert "self-time paths:" in text

    def test_self_time_subtracts_nested_children(self):
        events = [
            {"name": "p", "ph": "X", "ts": 0.0, "dur": 1000.0,
             "pid": 1, "tid": 1, "cat": "exec", "args": {"path": "p"}},
            {"name": "p.c", "ph": "X", "ts": 200.0, "dur": 300.0,
             "pid": 1, "tid": 1, "cat": "exec", "args": {"path": "p.c"}},
        ]
        text = summarize_trace({"traceEvents": events})
        assert "0.70 ms self  p" in text
        assert "0.30 ms self  p.c" in text


class TestProfilerLane:
    def profiled_registry(self):
        registry = traced_registry()
        registry.add_profile_samples({
            "span:exec.map;repro/cli.py:main;f.py:busy": 42.0,
            "span:-;pool.py:idle": 8.0,
        })
        registry.set_gauge("profile.hz", 100.0)
        return registry

    def test_profile_samples_become_a_dedicated_lane(self):
        from repro.obs.profile import PROFILE_TID

        events = trace_events(self.profiled_registry())
        lane = [e for e in events if e.get("cat") == "profile"]
        assert len(lane) == 2
        assert all(e["tid"] == PROFILE_TID for e in lane)
        assert all(e["pid"] == os.getpid() for e in lane)
        # 42 samples at 100 Hz = 0.42s rendered as event duration.
        stacks = {e["args"]["stack"]: e["dur"] for e in lane}
        assert stacks[
            "span:exec.map;repro/cli.py:main;f.py:busy"
        ] == pytest.approx(0.42e6)
        # The lane is named so viewers label it before drawing.
        names = [
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "profiler samples" in names
        # Metadata still leads the event list.
        phases = [e["ph"] for e in events]
        assert phases[: phases.count("M")] == ["M"] * phases.count("M")

    def test_summary_mentions_the_profiler_lane(self):
        text = summarize_trace(
            {"traceEvents": trace_events(self.profiled_registry())}
        )
        assert "profiler lane: 2 sampled stacks" in text
        assert "0.50 s of samples" in text

    def test_unprofiled_registry_has_no_profile_lane(self):
        events = trace_events(traced_registry())
        assert not any(e.get("cat") == "profile" for e in events)
        text = summarize_trace({"traceEvents": events})
        assert "profiler lane" not in text
