"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def small_world(tmp_path_factory):
    """A small fair world CSV written once for the whole module."""
    path = tmp_path_factory.mktemp("cli") / "world.csv"
    code = main(
        [
            "world",
            "--seed", "3",
            "--out", str(path),
            "--duration-days", "60",
            "--history-days", "20",
            "--arrivals-per-day", "4",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_target_parsing(self):
        args = build_parser().parse_args(
            ["attack", "--world", "w.csv", "--target", "tv1:-1",
             "--target", "tv3:+1", "--out", "a.json"]
        )
        assert [(t.product_id, t.direction) for t in args.targets] == [
            ("tv1", -1), ("tv3", 1)
        ]

    def test_bad_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["attack", "--world", "w.csv", "--target", "tv1", "--out", "a"]
            )

    def test_bad_direction_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["attack", "--world", "w.csv", "--target", "tv1:2", "--out", "a"]
            )


class TestWorldCommand:
    def test_writes_csv(self, small_world, capsys):
        text = small_world.read_text()
        assert text.startswith("product_id,rater_id,time,value,unfair")
        assert len(text.splitlines()) > 100


class TestAttackAndEvaluate:
    def test_attack_then_evaluate(self, small_world, tmp_path, capsys):
        attack_path = tmp_path / "attack.json"
        code = main(
            [
                "attack",
                "--world", str(small_world),
                "--target", "tv1:-1",
                "--target", "tv3:+1",
                "--bias", "3.0",
                "--std", "0.2",
                "--n-ratings", "30",
                "--window-start", "15",
                "--window-days", "25",
                "--out", str(attack_path),
            ]
        )
        assert code == 0
        payload = json.loads(attack_path.read_text())
        assert set(payload["products"]) == {"tv1", "tv3"}

        code = main(
            [
                "evaluate",
                "--world", str(small_world),
                "--submission", str(attack_path),
                "--scheme", "SA",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Manipulation Power" in out
        assert "SA" in out

    def test_missing_world_file(self, tmp_path, capsys):
        code = main(
            [
                "attack",
                "--world", str(tmp_path / "nope.csv"),
                "--target", "tv1:-1",
                "--out", str(tmp_path / "a.json"),
            ]
        )
        assert code == 2

    def test_attack_unknown_product_fails_cleanly(self, small_world, tmp_path):
        code = main(
            [
                "attack",
                "--world", str(small_world),
                "--target", "ghost:-1",
                "--out", str(tmp_path / "a.json"),
            ]
        )
        assert code == 2


class TestDetectCommand:
    def test_detect_on_fair_product(self, small_world, capsys):
        code = main(["detect", "--world", str(small_world), "--product", "tv1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "suspicious ratings:" in out

    def test_detect_unknown_product(self, small_world, capsys):
        code = main(["detect", "--world", str(small_world), "--product", "zz"])
        assert code == 2


class TestObservabilityFlags:
    @pytest.fixture()
    def attacked_world(self, small_world, tmp_path):
        """An attacked-world CSV: fair data plus one generated attack."""
        from repro.marketplace.io import (
            load_dataset_csv,
            load_submission_json,
            save_dataset_csv,
        )

        attack_path = tmp_path / "attack.json"
        code = main(
            [
                "attack",
                "--world", str(small_world),
                "--target", "tv1:-1",
                "--bias", "3.0",
                "--std", "0.2",
                "--n-ratings", "40",
                "--window-start", "15",
                "--window-days", "20",
                "--out", str(attack_path),
            ]
        )
        assert code == 0
        merged = load_dataset_csv(small_world).merge(
            load_submission_json(attack_path).as_dict()
        )
        out = tmp_path / "attacked.csv"
        save_dataset_csv(merged, out)
        return out, attack_path

    def test_metrics_out_written(self, small_world, attacked_world, tmp_path,
                                 capsys):
        _, attack_path = attacked_world
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "evaluate",
                "--world", str(small_world),
                "--submission", str(attack_path),
                "--scheme", "P",
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        assert "metrics written to" in capsys.readouterr().err
        payload = json.loads(metrics_path.read_text())
        counters = payload["counters"]
        # The fair and attacked evaluations share untargeted streams, so
        # the report cache must see both misses and hits.
        assert counters["pscheme.report_cache.misses"] >= 1
        assert counters["pscheme.report_cache.hits"] >= 1
        histograms = payload["histograms"]
        for kind in ("MC", "H-ARC", "L-ARC", "HC", "ME"):
            assert histograms[f"detector.{kind}.seconds"]["sum"] > 0.0
        for stage in ("detect", "trust", "aggregate"):
            name = f"span.pscheme.monthly_scores.{stage}.seconds"
            assert histograms[name]["count"] >= 1

    def test_metrics_registry_restored_after_run(self, small_world, tmp_path):
        from repro.obs import NULL_REGISTRY, get_registry

        metrics_path = tmp_path / "m.json"
        main(
            ["detect", "--world", str(small_world), "--product", "tv1",
             "--metrics-out", str(metrics_path)]
        )
        assert get_registry() is NULL_REGISTRY
        assert metrics_path.exists()

    def test_explain_table_matches_suspicious_count(self, attacked_world,
                                                    capsys):
        attacked_csv, _ = attacked_world
        code = main(
            ["detect", "--world", str(attacked_csv), "--product", "tv1",
             "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        suspicious = int(out.split("suspicious ratings:")[1].split()[0])
        assert suspicious > 0
        lines = out.splitlines()
        title_at = next(
            i for i, line in enumerate(lines)
            if line.startswith("Detection provenance for tv1")
        )
        body = [line for line in lines[title_at + 3:] if line.strip()]
        assert len(body) == suspicious
        # Every row names at least one path and one detector.
        assert all("path" in line for line in body)

    def test_explain_on_clean_product(self, small_world, capsys):
        code = main(
            ["detect", "--world", str(small_world), "--product", "tv2",
             "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        if "suspicious ratings: 0" in out:
            assert "nothing to explain" in out
        else:
            assert "Detection provenance for tv2" in out

    def test_log_level_flag_accepted(self, small_world, capsys):
        code = main(
            ["detect", "--world", str(small_world), "--product", "tv1",
             "--log-level", "INFO"]
        )
        assert code == 0


class TestPopulationCommand:
    def test_leaderboard_printed(self, capsys):
        code = main(
            ["population", "--seed", "5", "--size", "6", "--scheme", "SA",
             "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "leaderboard" in out
        assert "rank" in out


class TestSearchCommand:
    def test_search_runs(self, capsys):
        code = main(
            ["search", "--seed", "4", "--scheme", "SA", "--probes", "1",
             "--subareas", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strongest region" in out


class TestAblationCommand:
    def test_ablation_prints_table(self, capsys):
        code = main(["ablation", "--seed", "2008"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation" in out
        assert "whole-window drip" in out


class TestSensitivityCommand:
    def test_sensitivity_sweep(self, capsys):
        code = main(
            ["sensitivity", "--parameter", "larc_peak_threshold",
             "--value", "2.0", "--value", "8.0", "--fair-worlds", "1",
             "--attacks", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "larc_peak_threshold" in out

    def test_unknown_parameter_clean_error(self, capsys):
        code = main(
            ["sensitivity", "--parameter", "bogus", "--value", "1.0",
             "--fair-worlds", "1", "--attacks", "1"]
        )
        assert code == 2

    def test_sensitivity_prints_auc(self, capsys):
        code = main(
            ["sensitivity", "--parameter", "hc_suspicious_threshold",
             "--value", "0.85", "--value", "0.96", "--fair-worlds", "1",
             "--attacks", "1"]
        )
        assert code == 0
        assert "ROC AUC" in capsys.readouterr().out


class TestReportCommand:
    @pytest.fixture(scope="class")
    def html_report(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("report") / "run.html"
        code = main(
            ["report", "--seed", "7", "--size", "4", "--out", str(path)]
        )
        assert code == 0
        return path.read_text()

    def test_report_is_self_contained(self, html_report):
        # The acceptance bar: one file, zero external asset references.
        assert html_report.startswith("<!DOCTYPE html>")
        assert "http" not in html_report
        assert "<script" not in html_report
        assert "<link" not in html_report

    def test_report_has_confusion_counts_per_detector(self, html_report):
        assert "Detection scorecard" in html_report
        assert "<td>joint</td>" in html_report
        assert "<td>path1</td>" in html_report
        assert "<th>tp</th>" in html_report

    def test_report_has_roc_sparkline(self, html_report):
        assert "ROC sweep" in html_report
        assert html_report.count("<svg") >= 1
        assert "polyline" in html_report

    def test_report_has_environment_and_drift_sections(self, html_report):
        assert "Environment" in html_report
        assert "git_sha" in html_report
        assert "Assumption drift" in html_report

    def test_markdown_extension_selects_markdown(self, tmp_path, capsys):
        path = tmp_path / "run.md"
        code = main(
            ["report", "--seed", "7", "--size", "3", "--out", str(path)]
        )
        assert code == 0
        assert "markdown report written" in capsys.readouterr().out
        assert path.read_text().startswith("# Detection quality report")


class TestReportOutGlobal:
    def test_any_command_can_write_a_report(self, small_world, tmp_path,
                                            capsys):
        path = tmp_path / "detect.html"
        code = main(
            ["detect", "--world", str(small_world), "--product", "tv1",
             "--report-out", str(path)]
        )
        assert code == 0
        text = path.read_text()
        assert "http" not in text
        assert "Counters" in text
        assert "detect" in text  # title mentions the command

    def test_trace_summary_folded_into_report(self, small_world, tmp_path):
        report_path = tmp_path / "detect.html"
        trace_path = tmp_path / "detect.trace.json"
        code = main(
            ["detect", "--world", str(small_world), "--product", "tv1",
             "--report-out", str(report_path),
             "--trace-out", str(trace_path)]
        )
        assert code == 0
        assert "Trace summary" in report_path.read_text()


class TestLintCommand:
    def test_lint_clean_fixture(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        code = main(["lint", str(good)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_flags_violation(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        findings = tmp_path / "findings.json"
        code = main(["lint", str(bad), "--json", str(findings)])
        assert code == 1
        payload = json.loads(findings.read_text())
        assert payload["findings"][0]["rule"] == "wall-clock"
        capsys.readouterr()

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "rng-unseeded" in out
        assert "unordered-iter" in out


class TestMetricsStreamFlag:
    def test_stream_written_with_closing_snapshot(self, tmp_path):
        stream = tmp_path / "stream.jsonl"
        out = tmp_path / "w.csv"
        code = main(
            ["world", "--seed", "3", "--out", str(out),
             "--metrics-stream", str(stream)]
        )
        assert code == 0
        from repro.obs import read_metrics_stream

        snapshots = read_metrics_stream(stream)
        # No epoch structure in 'world': exactly one closing snapshot.
        assert len(snapshots) == 1
        assert snapshots[0][0] == 0

    def test_report_streams_one_snapshot_per_epoch(self, tmp_path):
        stream = tmp_path / "stream.jsonl"
        code = main(
            ["report", "--seed", "7", "--size", "1",
             "--out", str(tmp_path / "r.html"),
             "--metrics-stream", str(stream)]
        )
        assert code == 0
        from repro.obs import read_metrics_stream

        snapshots = read_metrics_stream(stream)
        assert len(snapshots) >= 2
        assert [epoch for epoch, _ in snapshots] == list(
            range(len(snapshots))
        )

    def test_openmetrics_export(self, tmp_path):
        target = tmp_path / "metrics.om"
        code = main(
            ["report", "--seed", "7", "--size", "1",
             "--out", str(tmp_path / "r.html"),
             "--openmetrics-out", str(target)]
        )
        assert code == 0
        from repro.obs import parse_openmetrics

        text = target.read_text(encoding="utf-8")
        assert text.endswith("# EOF\n")
        parsed = parse_openmetrics(text)
        assert parsed["counters"]["detector_HC_calls"] > 0

    def test_bad_rules_file_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("[[rule]]\nname = \"a\"\n", encoding="utf-8")
        code = main(
            ["world", "--seed", "3", "--out", str(tmp_path / "w.csv"),
             "--alert-rules", str(bad),
             "--metrics-stream", str(tmp_path / "s.jsonl")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestMonitorCommand:
    def write_stream(self, tmp_path):
        from repro.obs import MetricsStreamWriter

        path = tmp_path / "stream.jsonl"
        with MetricsStreamWriter(path) as writer:
            writer.write(0, {"drift.warnings": 0.0})
            writer.write(1, {"drift.warnings": 2.0})
        return path

    def test_monitor_once_renders_frame(self, tmp_path, capsys):
        path = self.write_stream(tmp_path)
        assert main(["monitor", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "drift.warnings" in out
        assert "alerts:" in out
        # drift.warnings moved: the default ruleset fires on replay.
        assert "FIRING" in out

    def test_monitor_select_filters_series(self, tmp_path, capsys):
        path = self.write_stream(tmp_path)
        assert main(
            ["monitor", str(path), "--once", "--select", "nomatch"]
        ) == 0
        out = capsys.readouterr().out
        assert "drift.warnings  " not in out

    def test_monitor_missing_file_renders_empty_frame(self, tmp_path,
                                                      capsys):
        absent = tmp_path / "absent.jsonl"
        assert main(["monitor", str(absent), "--once"]) == 0
        assert "no snapshots yet" in capsys.readouterr().out


class TestAlertsCommand:
    def test_default_ruleset_listed(self, capsys):
        assert main(["alerts"]) == 0
        out = capsys.readouterr().out
        assert "rule(s) OK" in out
        assert "drift-warnings-moving" in out

    def test_check_valid_file_exits_zero(self, capsys):
        assert main(["alerts", "--check"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        # --check never prints the rule table.
        assert "drift-warnings-moving" not in out

    def test_check_invalid_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[[rule]]\nname = "a"\nbogus = 1\n', encoding="utf-8")
        assert main(["alerts", "--check", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_mixed_files_validate_independently(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("not toml at [[", encoding="utf-8")
        good = tmp_path / "good.json"
        good.write_text(
            '{"rules": [{"name": "a", "metric": "drift.warnings"}]}',
            encoding="utf-8",
        )
        assert main(["alerts", "--check", str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "good.json: 1 rule(s) OK" in captured.out
        assert "error" in captured.err

    def test_runs_check_allow_alerts_flag_parses(self):
        args = build_parser().parse_args(["runs", "check", "--allow-alerts"])
        assert args.allow_alerts is True
