"""Unit tests for the self-contained run-report generator (repro.obs.report)."""

import numpy as np

from repro.obs import MetricsRegistry
from repro.obs.quality import ConfusionCounts
from repro.obs.report import (
    ReportData,
    RocSweep,
    confusion_from_counters,
    render_html,
    render_markdown,
    report_from_registry,
    svg_roc,
    svg_sparkline,
    write_report,
)


def full_report_data():
    return ReportData(
        title="test report",
        environment={"python": "3.11", "git_sha": "abc123"},
        ledger_rows=[("run01", "2026-01-01 00:00:00", "population", 0, 1.5)],
        confusions={
            "joint": ConfusionCounts(tp=5, fp=1, fn=2, tn=90),
            "path1": ConfusionCounts(tp=3, fp=0, fn=4, tn=91),
        },
        scorecard_rows=[("sub_000/tv1", "burst", True, 2.5, -0.8)],
        roc=RocSweep(
            parameter="hc_suspicious_threshold",
            points=((0.85, 0.02, 0.9), (0.92, 0.01, 0.7)),
            auc=0.88,
        ),
        trust_trajectories={"attackers": [0.5, 0.3, 0.1], "fair": [0.5, 0.6]},
        drift_warnings=["[mean-drift] tv1 days [0.0, 30.0): ..."],
        counters={"quality.joint.tp": 5.0, "detector.runs": 3.0},
        histogram_rows=[("quality.detection_latency_days", 2, 3.0, 2.5, 5.0)],
        trace_summary="span tree goes here",
        notes=["a note about the scenario"],
    )


class TestHtmlRendering:
    def test_report_is_fully_self_contained(self):
        text = render_html(full_report_data())
        assert "http" not in text
        assert "src=" not in text
        assert "<link" not in text
        assert "<script" not in text

    def test_all_sections_render(self):
        text = render_html(full_report_data())
        for heading in (
            "Environment", "Run ledger", "Detection scorecard",
            "Per-submission detection", "ROC sweep", "Trust trajectories",
            "Assumption drift", "Counters", "Histograms", "Trace summary",
        ):
            assert heading in text

    def test_confusion_table_shows_counts_and_rates(self):
        text = render_html(full_report_data())
        assert "<th>tp</th>" in text
        assert "<td>joint</td>" in text
        # precision of joint = 5/6
        assert "0.833" in text

    def test_roc_curve_and_sparkline_are_inline_svg(self):
        text = render_html(full_report_data())
        assert text.count("<svg") == 3  # one ROC + two trust sparklines
        assert "polyline" in text

    def test_drift_section_always_present(self):
        data = full_report_data()
        data.drift_warnings = ()
        text = render_html(data)
        assert "Assumption drift" in text
        assert "no assumption-drift warnings" in text

    def test_empty_sections_collapse(self):
        text = render_html(ReportData(title="bare"))
        assert "Run ledger" not in text
        assert "ROC sweep" not in text
        assert "Assumption drift" in text  # the one always-on section

    def test_titles_are_escaped(self):
        text = render_html(ReportData(title="<b>bold</b> & co"))
        assert "<b>bold</b>" not in text
        assert "&lt;b&gt;" in text


class TestMarkdownRendering:
    def test_sections_and_tables(self):
        text = render_markdown(full_report_data())
        assert "# test report" in text
        assert "## Detection scorecard" in text
        assert "| joint | 5 | 1 | 2 | 90 |" in text
        assert "## ROC sweep: hc_suspicious_threshold" in text
        assert "AUC: 0.88" in text
        assert "- attackers: 0.5, 0.3, 0.1" in text


class TestConfusionFromCounters:
    def test_round_trip_with_emit(self):
        from repro.obs.quality import emit_scorecard, score_detection
        from repro.detectors.base import PROV_PATH1, DetectionReport
        from repro.types import RatingStream

        stream = RatingStream(
            "p", np.arange(6.0), [4, 4, 4, 1, 1, 1],
            [f"u{i}" for i in range(6)],
            unfair=[False, False, False, True, True, True],
        )
        suspicious = np.array([False, False, False, True, True, False])
        report = DetectionReport(
            product_id="p",
            suspicious=suspicious,
            provenance=np.where(suspicious, PROV_PATH1, 0).astype(np.uint8),
        )
        registry = MetricsRegistry()
        card = score_detection(stream, report)
        emit_scorecard(card, registry)
        rebuilt = confusion_from_counters(
            registry.snapshot()["counters"]
        )
        assert rebuilt["joint"].as_dict() == card.joint.as_dict()
        assert rebuilt["path1"].as_dict() == (
            card.per_detector["path1"].as_dict()
        )

    def test_unrelated_counters_ignored(self):
        rebuilt = confusion_from_counters(
            {"detector.runs": 3, "quality.scorecards": 2,
             "quality.joint.tp": 7, "quality.joint.weird": 9}
        )
        assert rebuilt == {"joint": ConfusionCounts(tp=7)}


class TestReportFromRegistry:
    def test_counters_histograms_and_confusions_carried(self):
        registry = MetricsRegistry()
        registry.inc("quality.joint.tp", 4)
        registry.inc("quality.joint.tn", 10)
        registry.inc("zero.counter", 0)
        registry.observe("span.x.seconds", 0.5)
        data = report_from_registry(registry, title="t")
        assert data.counters["quality.joint.tp"] == 4
        assert "zero.counter" not in data.counters
        assert data.confusions["joint"].tp == 4
        names = [row[0] for row in data.histogram_rows]
        assert "span.x.seconds" in names


class TestSvgHelpers:
    def test_sparkline_degenerate_series(self):
        assert "not enough data" in svg_sparkline([1.0])
        assert "polyline" in svg_sparkline([1.0, 2.0, 1.5])

    def test_roc_drops_non_finite_points(self):
        svg = svg_roc([(0.1, 0.9), (float("nan"), 0.5)])
        assert svg.count("<circle") == 1


class TestWriteReport:
    def test_extension_selects_format(self, tmp_path):
        data = full_report_data()
        html_path = tmp_path / "r.html"
        md_path = tmp_path / "r.md"
        assert write_report(data, html_path) == "html"
        assert write_report(data, md_path) == "markdown"
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        assert md_path.read_text().startswith("# test report")

    def test_unknown_extension_defaults_to_html(self, tmp_path):
        path = tmp_path / "report.out"
        assert write_report(ReportData(), path) == "html"
