"""Unit tests for products, raters, and the fair-rating generator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.marketplace.fair_ratings import FairRatingConfig, FairRatingGenerator
from repro.marketplace.product import Product, default_tv_lineup
from repro.marketplace.rater import activity_weights, build_rater_pool


class TestProduct:
    def test_default_lineup_has_nine_tvs(self):
        lineup = default_tv_lineup()
        assert len(lineup) == 9
        assert len({p.product_id for p in lineup}) == 9

    def test_lineup_qualities_cluster_around_four(self):
        qualities = [p.true_quality for p in default_tv_lineup()]
        assert 3.5 < np.mean(qualities) < 4.5
        assert all(3.0 < q < 5.0 for q in qualities)

    def test_quality_outside_scale_rejected(self):
        with pytest.raises(ValidationError):
            Product("x", "X", true_quality=6.0)

    def test_nonpositive_std_rejected(self):
        with pytest.raises(ValidationError):
            Product("x", "X", 4.0, opinion_std=0.0)

    def test_nonpositive_popularity_rejected(self):
        with pytest.raises(ValidationError):
            Product("x", "X", 4.0, popularity=-1.0)


class TestRaterPool:
    def test_pool_size_and_unique_ids(self):
        pool = build_rater_pool(100, seed=0)
        assert len(pool) == 100
        assert len({r.rater_id for r in pool}) == 100

    def test_deterministic_from_seed(self):
        a = build_rater_pool(10, seed=5)
        b = build_rater_pool(10, seed=5)
        assert [r.leniency for r in a] == [r.leniency for r in b]

    def test_activity_weights_normalized(self):
        pool = build_rater_pool(50, seed=1)
        weights = activity_weights(pool)
        assert weights.shape == (50,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            build_rater_pool(0)


class TestFairRatingConfig:
    def test_defaults_match_paper_setting(self):
        config = FairRatingConfig()
        assert config.duration_days == pytest.approx(82.0)
        assert config.history_days > 0
        assert config.end_day == pytest.approx(82.0)
        assert config.history_start_day == pytest.approx(-config.history_days)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_days": 0},
            {"base_arrivals_per_day": 0},
            {"weekly_amplitude": 1.0},
            {"trend_amplitude": -0.1},
            {"value_step": 0.0},
            {"rater_pool_size": 0},
            {"history_days": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FairRatingConfig(**kwargs)


class TestFairRatingGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return FairRatingGenerator(seed=123).generate()

    def test_all_products_present(self, dataset):
        assert len(dataset) == 9

    def test_values_on_scale(self, dataset):
        for stream in dataset.streams():
            assert stream.values.min() >= 0.0
            assert stream.values.max() <= 5.0

    def test_values_quantized_to_half_stars(self, dataset):
        for stream in dataset.streams():
            remainder = np.mod(stream.values * 2.0, 1.0)
            np.testing.assert_allclose(remainder, 0.0, atol=1e-9)

    def test_mean_near_four(self, dataset):
        means = [s.mean_value() for s in dataset.streams()]
        assert 3.4 < np.mean(means) < 4.6

    def test_no_unfair_ratings(self, dataset):
        for stream in dataset.streams():
            assert not stream.unfair.any()

    def test_covers_history_and_challenge(self, dataset):
        config = FairRatingConfig()
        for stream in dataset.streams():
            first, last = stream.time_span()
            assert first < config.start_day  # history exists
            assert last < config.end_day

    def test_deterministic_from_seed(self):
        a = FairRatingGenerator(seed=9).generate()
        b = FairRatingGenerator(seed=9).generate()
        for pid in a:
            np.testing.assert_array_equal(a[pid].times, b[pid].times)
            np.testing.assert_array_equal(a[pid].values, b[pid].values)
            assert a[pid].rater_ids == b[pid].rater_ids

    def test_different_seeds_differ(self):
        a = FairRatingGenerator(seed=1).generate()
        b = FairRatingGenerator(seed=2).generate()
        assert any(len(a[p]) != len(b[p]) for p in a) or any(
            not np.array_equal(a[p].times, b[p].times) for p in a
        )

    def test_popularity_scales_volume(self, dataset):
        lineup = {p.product_id: p for p in default_tv_lineup()}
        most = max(lineup.values(), key=lambda p: p.popularity)
        least = min(lineup.values(), key=lambda p: p.popularity)
        assert len(dataset[most.product_id]) > len(dataset[least.product_id])

    def test_arrival_rate_roughly_matches_config(self, dataset):
        config = FairRatingConfig()
        total_days = config.history_days + config.duration_days
        counts = [len(s) / total_days for s in dataset.streams()]
        assert config.base_arrivals_per_day * 0.5 < np.mean(counts) < (
            config.base_arrivals_per_day * 1.5
        )

    def test_continuous_values_without_step(self):
        config = FairRatingConfig(value_step=None)
        ds = FairRatingGenerator(config=config, seed=3).generate()
        values = ds[ds.product_ids[0]].values
        remainder = np.mod(values * 2.0, 1.0)
        assert np.any(remainder > 1e-6)

    def test_requires_products(self):
        with pytest.raises(ValidationError):
            FairRatingGenerator(products=[], seed=0)
