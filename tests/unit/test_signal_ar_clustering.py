"""Unit tests for AR fitting (covariance method) and single-linkage clustering."""

import numpy as np
import pytest

from repro.errors import EmptyDataError, ValidationError
from repro.signal.ar import fit_ar_covariance, model_error
from repro.signal.clustering import (
    single_linkage_two_clusters,
    two_cluster_split_1d,
)


class TestARCovariance:
    def test_recovers_known_ar1(self):
        # x[n] = 0.8 x[n-1] + tiny noise: coefficient a_1 ~= -0.8 in the
        # convention x[n] + a_1 x[n-1] = e[n].
        rng = np.random.default_rng(0)
        x = np.zeros(500)
        for i in range(1, 500):
            x[i] = 0.8 * x[i - 1] + rng.normal(0, 0.01)
        fit = fit_ar_covariance(x, 1)
        assert fit.coefficients[0] == pytest.approx(-0.8, abs=0.02)

    def test_white_noise_has_high_normalized_error(self):
        rng = np.random.default_rng(1)
        error = model_error(rng.normal(0, 1, 400), order=4)
        assert 0.8 < error < 1.2

    def test_sinusoid_has_near_zero_error(self):
        x = np.sin(0.3 * np.arange(200))
        assert model_error(x, order=4) < 1e-10

    def test_constant_window_defined_as_noise(self):
        assert model_error(np.full(50, 4.0), order=4) == 1.0

    def test_exact_ar2_signal(self):
        # Deterministic AR(2) process has zero prediction error.
        x = np.zeros(100)
        x[0], x[1] = 1.0, 0.5
        for i in range(2, 100):
            x[i] = 1.2 * x[i - 1] - 0.5 * x[i - 2]
        fit = fit_ar_covariance(x, 2)
        assert fit.error_power == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(fit.coefficients, [-1.2, 0.5], atol=1e-6)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            fit_ar_covariance(np.ones(7), 4)

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            fit_ar_covariance(np.array([]), 1)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValidationError):
            fit_ar_covariance(np.ones(10), 0)

    def test_coefficients_frozen(self):
        fit = fit_ar_covariance(np.sin(0.5 * np.arange(50)), 2)
        with pytest.raises(ValueError):
            fit.coefficients[0] = 0.0


class TestTwoClusterSplit1D:
    def test_obvious_two_clusters(self):
        values = np.array([0.1, 0.2, 4.8, 4.9, 5.0])
        labels = two_cluster_split_1d(values)
        np.testing.assert_array_equal(labels, [0, 0, 1, 1, 1])

    def test_cluster_zero_holds_smallest(self):
        values = np.array([5.0, 0.0, 4.9])
        labels = two_cluster_split_1d(values)
        assert labels[1] == 0

    def test_single_point(self):
        np.testing.assert_array_equal(two_cluster_split_1d(np.array([3.0])), [0])

    def test_all_equal_single_cluster(self):
        labels = two_cluster_split_1d(np.full(6, 4.0))
        assert set(labels) == {0}

    def test_unsorted_input(self):
        values = np.array([5.0, 0.1, 4.9, 0.2])
        labels = two_cluster_split_1d(values)
        assert labels[0] == labels[2] == 1
        assert labels[1] == labels[3] == 0

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            two_cluster_split_1d(np.array([]))

    def test_tie_breaks_at_last_maximal_gap(self):
        # Gaps of 1 between every pair: Kruskal leaves the last gap uncut.
        labels = two_cluster_split_1d(np.array([0.0, 1.0, 2.0]))
        np.testing.assert_array_equal(labels, [0, 0, 1])


class TestGeneralSingleLinkage:
    def test_matches_fast_path_on_examples(self):
        cases = [
            np.array([0.1, 0.2, 4.8, 4.9, 5.0]),
            np.array([1.0, 1.1, 1.2, 3.0, 3.1]),
            np.array([0.0, 1.0, 2.0, 3.0]),
            np.array([2.0, 2.0, 2.0]),
            np.array([5.0]),
        ]
        for values in cases:
            np.testing.assert_array_equal(
                single_linkage_two_clusters(values),
                two_cluster_split_1d(values),
                err_msg=f"disagreement on {values}",
            )

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            single_linkage_two_clusters(np.array([]))

    def test_two_points(self):
        labels = single_linkage_two_clusters(np.array([1.0, 9.0]))
        np.testing.assert_array_equal(labels, [0, 1])
