"""Unit tests for repro.utils.rng, repro.utils.windows, repro.utils.stats."""

import numpy as np
import pytest

from repro.errors import EmptyDataError, ValidationError
from repro.utils.rng import resolve_rng, spawn_rng
from repro.utils.stats import clip_to_scale, describe, running_mean, safe_xlogx
from repro.utils.windows import centered_windows, shrink_to_bounds, sliding_window_indices


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert resolve_rng(rng) is rng

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 2**31, 20)
        b = resolve_rng(2).integers(0, 2**31, 20)
        assert not np.array_equal(a, b)


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(resolve_rng(0), 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn_rng(resolve_rng(0), 2)
        a = children[0].integers(0, 2**31, 20)
        b = children[1].integers(0, 2**31, 20)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic_from_seed(self):
        a = spawn_rng(resolve_rng(7), 3)[2].integers(0, 2**31, 5)
        b = spawn_rng(resolve_rng(7), 3)[2].integers(0, 2**31, 5)
        np.testing.assert_array_equal(a, b)

    def test_zero_count(self):
        assert spawn_rng(resolve_rng(0), 0) == []


class TestSlidingWindowIndices:
    def test_basic(self):
        assert list(sliding_window_indices(5, 3)) == [(0, 3), (1, 4), (2, 5)]

    def test_step(self):
        assert list(sliding_window_indices(6, 2, step=2)) == [(0, 2), (2, 4), (4, 6)]

    def test_too_short_series(self):
        assert list(sliding_window_indices(2, 3)) == []

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            list(sliding_window_indices(5, 0))


class TestShrinkToBounds:
    def test_full_window_fits(self):
        assert shrink_to_bounds(5, 3, 10) == (2, 8)

    def test_shrinks_near_left_edge(self):
        assert shrink_to_bounds(1, 3, 10) == (0, 2)

    def test_shrinks_near_right_edge(self):
        assert shrink_to_bounds(9, 3, 10) == (8, 10)

    def test_center_out_of_range(self):
        assert shrink_to_bounds(0, 3, 10) == (0, 0)
        assert shrink_to_bounds(10, 3, 10) == (0, 0)

    def test_tiny_series(self):
        assert shrink_to_bounds(1, 5, 2) == (0, 2)
        assert shrink_to_bounds(0, 5, 1) == (0, 0)

    def test_window_symmetric(self):
        for n in (5, 10, 37):
            for center in range(1, n):
                start, stop = shrink_to_bounds(center, 4, n)
                if stop > start:
                    assert center - start == stop - center


class TestCenteredWindows:
    def test_covers_all_interior_centers(self):
        windows = centered_windows(10, 3)
        centers = [c for c, _, _ in windows]
        assert centers == list(range(1, 10))

    def test_windows_have_min_size_two(self):
        for _, start, stop in centered_windows(50, 7):
            assert stop - start >= 2

    def test_empty_series(self):
        assert centered_windows(0, 3) == []
        assert centered_windows(1, 3) == []


class TestSafeXlogx:
    def test_zero_maps_to_zero(self):
        np.testing.assert_array_equal(safe_xlogx(np.array([0.0])), np.array([0.0]))

    def test_positive_values(self):
        np.testing.assert_allclose(
            safe_xlogx(np.array([1.0, np.e])), np.array([0.0, np.e])
        )


class TestDescribe:
    def test_basic_stats(self):
        stats = describe([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        np.testing.assert_allclose(stats.std, np.sqrt(2.0 / 3.0))

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            describe([])


class TestRunningMean:
    def test_constant_series(self):
        out = running_mean(np.full(10, 3.0), 4)
        np.testing.assert_allclose(out, np.full(10, 3.0))

    def test_preserves_length(self):
        assert running_mean(np.arange(7, dtype=float), 3).shape == (7,)

    def test_empty(self):
        assert running_mean(np.array([]), 3).size == 0


class TestClipToScale:
    def test_clips_both_sides(self):
        out = clip_to_scale(np.array([-1.0, 2.5, 9.0]), 0.0, 5.0)
        np.testing.assert_array_equal(out, np.array([0.0, 2.5, 5.0]))
