"""Unit tests for AttackSubmission, AttackGenerator, strategies, population."""

import numpy as np
import pytest

from repro.attacks.base import AttackSubmission, ProductTarget, build_attack_stream
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.population import PopulationConfig, generate_population
from repro.attacks.strategies import (
    bad_mouthing,
    ballot_stuffing,
    probabilistic_lying,
    random_unfair,
)
from repro.attacks.time_models import UniformWindow
from repro.errors import AttackSpecError, ValidationError
from repro.marketplace.challenge import RatingChallenge
from repro.types import RatingStream


@pytest.fixture(scope="module")
def challenge():
    return RatingChallenge(seed=101)


@pytest.fixture(scope="module")
def generator(challenge):
    return AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=5
    )


def targets():
    return [ProductTarget("tv1", -1), ProductTarget("tv3", +1)]


class TestProductTarget:
    def test_valid_directions(self):
        assert ProductTarget("p", 1).direction == 1
        assert ProductTarget("p", -1).direction == -1

    def test_invalid_direction(self):
        with pytest.raises(AttackSpecError):
            ProductTarget("p", 0)


class TestAttackSubmission:
    def test_streams_must_be_unfair(self):
        clean = RatingStream("p", [1.0], [4.0], ["a"])
        with pytest.raises(AttackSpecError):
            AttackSubmission("s", {"p": clean})

    def test_key_product_mismatch_rejected(self):
        stream = build_attack_stream("p", [1.0], [4.0], ["a"])
        with pytest.raises(AttackSpecError):
            AttackSubmission("s", {"q": stream})

    def test_metrics(self):
        stream = build_attack_stream("p", [10.0, 20.0, 40.0], [1, 1, 1], list("abc"))
        submission = AttackSubmission("s", {"p": stream})
        assert submission.total_ratings() == 3
        assert submission.attack_duration("p") == 30.0
        assert submission.average_rating_interval("p") == 10.0
        assert submission.rater_ids() == ("a", "b", "c")

    def test_empty_stream_metrics(self):
        stream = build_attack_stream("p", [], [], [])
        submission = AttackSubmission("s", {"p": stream})
        assert submission.attack_duration("p") == 0.0
        assert submission.average_rating_interval("p") == 0.0

    def test_stream_for_missing_product(self):
        stream = build_attack_stream("p", [1.0], [1.0], ["a"])
        submission = AttackSubmission("s", {"p": stream})
        assert submission.stream_for("q") is None


class TestAttackSpec:
    def test_defaults(self):
        spec = AttackSpec(bias_magnitude=2.0, std=0.5)
        assert spec.n_ratings == 50
        assert spec.correlation == "identity"

    def test_negative_bias_rejected(self):
        with pytest.raises(AttackSpecError):
            AttackSpec(bias_magnitude=-1.0, std=0.5)

    def test_bad_correlation_rejected(self):
        with pytest.raises(AttackSpecError):
            AttackSpec(1.0, 0.5, correlation="sneaky")

    def test_zero_ratings_rejected(self):
        with pytest.raises(AttackSpecError):
            AttackSpec(1.0, 0.5, n_ratings=0)


class TestAttackGenerator:
    def test_generates_streams_per_target(self, generator):
        spec = AttackSpec(2.0, 0.5, n_ratings=20, time_model=UniformWindow(10, 30))
        submission = generator.generate(targets(), spec)
        assert set(submission.product_ids) == {"tv1", "tv3"}
        assert submission.total_ratings() == 40

    def test_direction_sign_applied(self, generator, challenge):
        spec = AttackSpec(2.0, 0.1, n_ratings=30, time_model=UniformWindow(10, 30))
        submission = generator.generate(targets(), spec)
        fair = challenge.fair_dataset
        down = submission.streams["tv1"].values.mean() - fair["tv1"].mean_value()
        up = submission.streams["tv3"].values.mean() - fair["tv3"].mean_value()
        assert down < -1.0
        assert up > 0.3  # clipped at 5.0, so less than the nominal +2

    def test_unknown_product_rejected(self, generator):
        spec = AttackSpec(1.0, 0.5)
        with pytest.raises(AttackSpecError):
            generator.generate([ProductTarget("ghost", -1)], spec)

    def test_duplicate_target_rejected(self, generator):
        spec = AttackSpec(1.0, 0.5)
        with pytest.raises(AttackSpecError):
            generator.generate(
                [ProductTarget("tv1", -1), ProductTarget("tv1", 1)], spec
            )

    def test_too_many_ratings_rejected(self, generator):
        spec = AttackSpec(1.0, 0.5, n_ratings=51)
        with pytest.raises(AttackSpecError):
            generator.generate(targets(), spec)

    def test_empty_targets_rejected(self, generator):
        with pytest.raises(AttackSpecError):
            generator.generate([], AttackSpec(1.0, 0.5))

    def test_raters_unique_within_product(self, generator):
        spec = AttackSpec(1.0, 0.5, n_ratings=50, time_model=UniformWindow(5, 40))
        submission = generator.generate(targets(), spec)
        for stream in submission.streams.values():
            assert len(set(stream.rater_ids)) == len(stream)

    def test_submission_passes_challenge_validation(self, generator, challenge):
        spec = AttackSpec(2.5, 0.8, n_ratings=50, time_model=UniformWindow(5, 60))
        submission = generator.generate(
            targets() + [ProductTarget("tv5", -1), ProductTarget("tv7", 1)], spec
        )
        challenge.validate(submission)

    def test_per_target_spec_override(self, generator):
        base = AttackSpec(1.0, 0.2, n_ratings=10, time_model=UniformWindow(5, 10))
        override = AttackSpec(3.0, 0.2, n_ratings=25, time_model=UniformWindow(40, 10))
        submission = generator.generate(
            targets(), base, per_target_specs={"tv1": override}
        )
        assert len(submission.streams["tv1"]) == 25
        assert len(submission.streams["tv3"]) == 10

    def test_heuristic_correlation_mode(self, generator):
        spec = AttackSpec(
            2.0, 1.0, n_ratings=15, time_model=UniformWindow(10, 30),
            correlation="heuristic",
        )
        submission = generator.generate(targets(), spec)
        assert submission.total_ratings() == 30

    def test_evaluator_closure(self, generator, challenge):
        from repro.aggregation import SimpleAveragingScheme

        evaluate = generator.evaluator(
            targets(), challenge, SimpleAveragingScheme(),
            AttackSpec(1.0, 0.5, n_ratings=30, time_model=UniformWindow(10, 40)),
        )
        mp = evaluate(-3.0, 0.2)
        assert mp > 0.0


class TestStrategies:
    def test_ballot_stuffing_extremes(self, challenge):
        submission = ballot_stuffing(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), n_ratings=10, seed=0,
        )
        np.testing.assert_allclose(submission.streams["tv3"].values, 5.0)
        np.testing.assert_allclose(submission.streams["tv1"].values, 0.0)

    def test_bad_mouthing_all_minimum(self, challenge):
        submission = bad_mouthing(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), n_ratings=10, seed=0,
        )
        for stream in submission.streams.values():
            np.testing.assert_allclose(stream.values, 0.0)

    def test_random_unfair_on_scale(self, challenge):
        submission = random_unfair(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), n_ratings=30, seed=1,
        )
        values = submission.streams["tv1"].values
        assert values.min() >= 0.0 and values.max() <= 5.0
        assert values.std() > 0.5

    def test_probabilistic_lying_mixture(self, challenge):
        submission = probabilistic_lying(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), lie_probability=0.5,
            n_ratings=50, seed=2,
        )
        values = submission.streams["tv1"].values
        lies = (values == 0.0).sum()
        assert 10 <= lies <= 40

    def test_lie_probability_validated(self, challenge):
        with pytest.raises(Exception):
            probabilistic_lying(
                challenge.fair_dataset, targets(),
                challenge.config.biased_rater_ids(), lie_probability=1.5,
            )

    def test_strategy_names(self, challenge):
        submission = bad_mouthing(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), n_ratings=5, seed=0,
        )
        assert submission.strategy == "bad_mouthing"


class TestPopulation:
    def test_config_counts_sum_to_size(self):
        config = PopulationConfig(size=97)
        assert sum(c for _, c in config.archetype_counts()) == 97

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            PopulationConfig(straightforward_fraction=0.9)

    def test_population_valid_and_sized(self, challenge):
        submissions = generate_population(
            challenge, PopulationConfig(size=20), seed=3
        )
        assert len(submissions) == 20
        for submission in submissions:
            challenge.validate(submission)

    def test_population_has_archetype_mix(self, challenge):
        submissions = generate_population(
            challenge, PopulationConfig(size=40), seed=4
        )
        strategies = {s.strategy for s in submissions}
        assert "straightforward" in strategies
        assert "smart" in strategies

    def test_population_deterministic(self, challenge):
        a = generate_population(challenge, PopulationConfig(size=10), seed=5)
        b = generate_population(challenge, PopulationConfig(size=10), seed=5)
        for sa, sb in zip(a, b):
            assert sa.submission_id == sb.submission_id
            for pid in sa.product_ids:
                np.testing.assert_array_equal(
                    sa.streams[pid].values, sb.streams[pid].values
                )

    def test_each_submission_attacks_four_products(self, challenge):
        submissions = generate_population(
            challenge, PopulationConfig(size=10), seed=6
        )
        for submission in submissions:
            assert len(submission.product_ids) == 4
            directions = list(submission.params["targets"].values())
            assert directions.count(1) == 2
            assert directions.count(-1) == 2
