"""Unit tests for ground-truth detection scorecards (repro.obs.quality)."""

import numpy as np
import pytest

from repro.detectors.base import (
    PROV_MC,
    PROV_PATH1,
    PROVENANCE_FLAGS,
    DetectionReport,
)
from repro.errors import ValidationError
from repro.obs import MetricsRegistry
from repro.obs.quality import (
    DETECTOR_ORDER,
    EPOCH_DAYS,
    ConfusionCounts,
    aggregate_confusions,
    emit_scorecard,
    roc_auc,
    score_detection,
)
from repro.types import RatingStream


def make_stream(n=10, n_unfair=0, product="p"):
    times = np.arange(n, dtype=float)
    values = np.full(n, 4.0)
    unfair = np.zeros(n, bool)
    if n_unfair:
        unfair[-n_unfair:] = True
        values[-n_unfair:] = 1.0
    raters = [f"atk{i}" if unfair[i] else f"u{i}" for i in range(n)]
    return RatingStream(product, times, values, raters, unfair=unfair)


def make_report(stream, suspicious, provenance=None):
    suspicious = np.asarray(suspicious, dtype=bool)
    if provenance is None:
        provenance = np.where(suspicious, PROV_PATH1, 0).astype(np.uint8)
    return DetectionReport(
        product_id=stream.product_id,
        suspicious=suspicious,
        provenance=np.asarray(provenance, dtype=np.uint8),
    )


class TestConfusionCounts:
    def test_totals_and_rates(self):
        counts = ConfusionCounts(tp=3, fp=1, fn=2, tn=4)
        assert counts.total == 10
        assert counts.precision == pytest.approx(3 / 4)
        assert counts.recall == pytest.approx(3 / 5)
        assert counts.false_alarm_rate == pytest.approx(1 / 5)

    def test_empty_denominators_are_nan(self):
        empty = ConfusionCounts()
        assert np.isnan(empty.precision)
        assert np.isnan(empty.recall)
        assert np.isnan(empty.false_alarm_rate)

    def test_add(self):
        total = ConfusionCounts(1, 2, 3, 4) + ConfusionCounts(10, 20, 30, 40)
        assert total.as_dict() == {"tp": 11, "fp": 22, "fn": 33, "tn": 44}

    def test_from_masks(self):
        counts = ConfusionCounts.from_masks(
            [True, True, False, False], [True, False, True, False]
        )
        assert counts.as_dict() == {"tp": 1, "fp": 1, "fn": 1, "tn": 1}

    def test_from_masks_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ConfusionCounts.from_masks([True], [True, False])


class TestScoreDetection:
    def test_joint_counts_partition_the_stream(self):
        stream = make_stream(n=10, n_unfair=4)
        suspicious = np.zeros(10, bool)
        suspicious[[0, 6, 7]] = True  # one fair + two unfair flagged
        card = score_detection(stream, make_report(stream, suspicious))
        assert card.joint.as_dict() == {"tp": 2, "fp": 1, "fn": 2, "tn": 5}
        assert card.joint.total == len(stream)
        assert card.detected and card.attacked

    def test_per_detector_attribution_follows_provenance_bits(self):
        stream = make_stream(n=6, n_unfair=2)
        suspicious = np.array([False, False, False, False, True, True])
        provenance = np.zeros(6, np.uint8)
        provenance[4] = PROV_PATH1 | PROV_MC
        provenance[5] = PROV_PATH1
        card = score_detection(
            stream, make_report(stream, suspicious, provenance)
        )
        assert card.per_detector["path1"].tp == 2
        assert card.per_detector["MC"].tp == 1
        assert card.per_detector["MC"].fn == 1
        assert card.per_detector["path2"].tp == 0
        # Every provenance flag gets a row.
        assert set(card.per_detector) == set(PROVENANCE_FLAGS)

    def test_latency_and_epochs(self):
        stream = make_stream(n=10, n_unfair=4)  # first unfair at t=6
        suspicious = np.zeros(10, bool)
        suspicious[8] = True  # first flag at t=8
        card = score_detection(stream, make_report(stream, suspicious))
        assert card.detection_latency_days == pytest.approx(2.0)
        assert card.detection_latency_epochs == pytest.approx(2.0 / EPOCH_DAYS)

    def test_flags_before_the_attack_do_not_count_as_latency(self):
        stream = make_stream(n=10, n_unfair=2)  # first unfair at t=8
        suspicious = np.zeros(10, bool)
        suspicious[[0, 9]] = True
        card = score_detection(stream, make_report(stream, suspicious))
        assert card.detection_latency_days == pytest.approx(1.0)

    def test_undetected_attack_has_no_latency(self):
        stream = make_stream(n=10, n_unfair=3)
        card = score_detection(
            stream, make_report(stream, np.zeros(10, bool))
        )
        assert card.detection_latency_days is None
        assert card.bias_at_detection is None
        assert not card.detected and card.attacked

    def test_bias_at_detection_measures_published_damage(self):
        # Fair mean 4.0, unfair values 1.0: with two unfair ratings seen
        # by the first flag, the published mean already moved down.
        stream = make_stream(n=10, n_unfair=4)
        suspicious = np.zeros(10, bool)
        suspicious[7] = True  # two unfair ratings in by t=7
        card = score_detection(stream, make_report(stream, suspicious))
        upto_mean = (6 * 4.0 + 2 * 1.0) / 8
        assert card.bias_at_detection == pytest.approx(upto_mean - 4.0)

    def test_attacker_id_join_supplements_lost_flags(self):
        stream = make_stream(n=8)  # no unfair flags at all
        suspicious = np.zeros(8, bool)
        suspicious[3] = True
        card = score_detection(
            stream, make_report(stream, suspicious), attacker_ids=["u3", "u4"]
        )
        assert card.joint.as_dict() == {"tp": 1, "fp": 0, "fn": 1, "tn": 6}

    def test_attacker_ids_never_leak_into_fair_counts(self):
        stream = make_stream(n=8)
        card = score_detection(
            stream,
            make_report(stream, np.zeros(8, bool)),
            attacker_ids=["nobody_here"],
        )
        assert card.joint.as_dict() == {"tp": 0, "fp": 0, "fn": 0, "tn": 8}

    def test_shape_mismatch_rejected(self):
        stream = make_stream(n=8)
        short = make_report(make_stream(n=5), np.zeros(5, bool))
        with pytest.raises(ValidationError):
            score_detection(stream, short)


class TestChallengeRoundTrip:
    """The provenance -> scorecard join on a real seeded challenge world."""

    @pytest.fixture(scope="class")
    def world(self):
        from repro.attacks.population import (
            PopulationConfig,
            generate_population,
        )
        from repro.detectors import JointDetector
        from repro.marketplace.challenge import RatingChallenge

        challenge = RatingChallenge(seed=11)
        population = generate_population(
            challenge, PopulationConfig(size=3), seed=12
        )
        detector = JointDetector()
        cases = []
        for submission in population:
            attacked = challenge.attacked_dataset(submission)
            for pid in submission.product_ids:
                stream = attacked[pid]
                cases.append((stream, detector.analyze(stream)))
        return cases

    def test_joint_counts_match_masks_exactly(self, world):
        for stream, report in world:
            card = score_detection(stream, report)
            truth = stream.unfair
            suspicious = report.suspicious
            assert card.joint.tp == int((suspicious & truth).sum())
            assert card.joint.fp == int((suspicious & ~truth).sum())
            assert card.joint.fn == int((~suspicious & truth).sum())
            assert card.joint.tn == int((~suspicious & ~truth).sum())

    def test_every_flag_is_attributable_to_a_detector(self, world):
        for stream, report in world:
            card = score_detection(stream, report)
            flagged = card.joint.tp + card.joint.fp
            attributed = np.zeros(len(stream), bool)
            for name, bit in PROVENANCE_FLAGS.items():
                attributed |= (report.provenance & bit) != 0
            assert int(attributed.sum()) == flagged
            # No single detector can claim more than the joint verdict.
            for name in PROVENANCE_FLAGS:
                assert card.per_detector[name].tp <= card.joint.tp
                assert card.per_detector[name].fp <= card.joint.fp

    def test_latency_never_negative(self, world):
        for stream, report in world:
            card = score_detection(stream, report)
            if card.detection_latency_days is not None:
                assert card.detection_latency_days >= 0.0


class TestAggregateAndEmit:
    def test_aggregate_sums_rows_in_order(self):
        stream = make_stream(n=6, n_unfair=2)
        suspicious = np.array([False] * 4 + [True, True])
        card = score_detection(stream, make_report(stream, suspicious))
        totals = aggregate_confusions([card, card])
        assert list(totals) == list(DETECTOR_ORDER)
        assert totals["joint"].tp == 2 * card.joint.tp
        assert totals["path1"].tp == 2 * card.per_detector["path1"].tp

    def test_emit_scorecard_counters_and_histograms(self):
        registry = MetricsRegistry()
        stream = make_stream(n=10, n_unfair=4)
        suspicious = np.zeros(10, bool)
        suspicious[7] = True
        card = score_detection(stream, make_report(stream, suspicious))
        emit_scorecard(card, registry)
        assert registry.counter_value("quality.scorecards") == 1
        assert registry.counter_value("quality.detected_streams") == 1
        assert registry.counter_value("quality.joint.tp") == card.joint.tp
        assert registry.counter_value("quality.joint.tn") == card.joint.tn
        assert registry.counter_value("quality.path1.tp") == (
            card.per_detector["path1"].tp
        )
        hist = registry.histograms["quality.detection_latency_days"]
        assert hist.count == 1
        assert (
            registry.histograms["quality.detection_latency_epochs"].count == 1
        )
        assert registry.histograms["quality.bias_at_detection"].count == 1

    def test_emit_on_disabled_registry_is_a_noop(self):
        from repro.obs import NULL_REGISTRY

        stream = make_stream(n=6, n_unfair=2)
        card = score_detection(
            stream, make_report(stream, np.zeros(6, bool))
        )
        emit_scorecard(card, NULL_REGISTRY)  # must not raise


class TestRocAuc:
    def test_perfect_detector(self):
        assert roc_auc([(0.0, 1.0)]) == pytest.approx(1.0)

    def test_chance_diagonal(self):
        assert roc_auc([(0.5, 0.5)]) == pytest.approx(0.5)

    def test_anchors_added(self):
        # A single mid-curve point integrates against the (0,0)/(1,1)
        # corners, not just itself.
        assert roc_auc([(0.2, 0.8)]) == pytest.approx(
            0.5 * 0.2 * 0.8 + 0.8 * 0.8 + 0.5 * 0.8 * 0.2
        )

    def test_nan_points_dropped(self):
        assert roc_auc(
            [(0.0, 1.0), (float("nan"), 0.5)]
        ) == pytest.approx(1.0)

    def test_all_nan_is_nan(self):
        assert np.isnan(roc_auc([(float("nan"), float("nan"))]))
        assert np.isnan(roc_auc([]))
