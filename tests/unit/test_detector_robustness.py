"""Robustness battery: detectors on degenerate and adversarial inputs.

Production rating data is messy -- duplicate timestamps (batch imports),
unanimous values, single-day products, extreme values, near-empty streams.
None of these may crash a detector or produce out-of-range statistics.
"""

import numpy as np

from repro.detectors import (
    ArrivalRateDetector,
    HistogramChangeDetector,
    JointDetector,
    MeanChangeDetector,
    ModelErrorDetector,
)
from repro.types import RatingStream

ALL_DETECTORS = [
    MeanChangeDetector(),
    ArrivalRateDetector("H-ARC"),
    ArrivalRateDetector("L-ARC"),
    HistogramChangeDetector(),
    ModelErrorDetector(),
    JointDetector(),
]


def run_all(stream):
    """Run every detector; return the joint report."""
    for detector in ALL_DETECTORS[:-1]:
        detector.analyze(stream)
    return ALL_DETECTORS[-1].analyze(stream)


def stream_from(times, values, product="p"):
    raters = [f"u{i}" for i in range(len(times))]
    return RatingStream(product, times, values, raters)


class TestDegenerateStreams:
    def test_empty_stream(self):
        report = run_all(RatingStream.empty("p"))
        assert report.num_suspicious == 0

    def test_single_rating(self):
        report = run_all(stream_from([1.0], [4.0]))
        assert report.num_suspicious == 0

    def test_two_ratings(self):
        report = run_all(stream_from([1.0, 2.0], [4.0, 1.0]))
        assert report.num_suspicious == 0

    def test_all_duplicate_timestamps(self):
        n = 80
        report = run_all(stream_from([10.0] * n, np.linspace(0, 5, n)))
        assert report.suspicious.shape == (n,)

    def test_unanimous_values(self):
        n = 120
        times = np.linspace(0.0, 60.0, n)
        report = run_all(stream_from(times, np.full(n, 5.0)))
        # A constant stream has no changes of any kind.
        assert report.num_suspicious == 0

    def test_single_day_product(self):
        n = 60
        times = np.sort(np.random.default_rng(0).uniform(3.0, 4.0, n))
        values = np.clip(np.random.default_rng(1).normal(4, 0.5, n), 0, 5)
        report = run_all(stream_from(times, values))
        assert report.suspicious.shape == (n,)

    def test_extreme_scale_values_only(self):
        n = 100
        times = np.linspace(0.0, 50.0, n)
        values = np.array([0.0, 5.0] * (n // 2))
        report = run_all(stream_from(times, values))
        assert report.suspicious.dtype == bool

    def test_negative_times(self):
        # Histories start before day 0; day-binning must handle it.
        rng = np.random.default_rng(2)
        times = np.sort(rng.uniform(-40.0, 40.0, 300))
        values = np.clip(np.round(rng.normal(4, 0.6, 300) * 2) / 2, 0, 5)
        report = run_all(stream_from(times, values))
        assert report.suspicious.shape == (300,)

    def test_very_long_quiet_stream(self):
        # One rating a week for two years: sparse daily counts.
        times = np.arange(0.0, 730.0, 7.0)
        rng = np.random.default_rng(3)
        values = np.clip(rng.normal(4, 0.5, times.size), 0, 5)
        report = run_all(stream_from(times, values))
        assert report.num_suspicious <= times.size


class TestStatisticRanges:
    def test_curves_finite_on_messy_data(self):
        rng = np.random.default_rng(4)
        times = np.sort(
            np.concatenate([rng.uniform(0, 60, 150), np.full(30, 30.0)])
        )
        values = np.clip(rng.normal(4, 1.5, 180), 0, 5)
        stream = stream_from(times, values)
        report = JointDetector().analyze(stream)
        for curve in report.curves.values():
            assert np.all(np.isfinite(curve.values))

    def test_hc_values_bounded(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0, 80, 200))
        values = rng.uniform(0, 5, 200)
        curve = HistogramChangeDetector().curve(stream_from(times, values))
        assert np.all(curve.values >= 0.0)
        assert np.all(curve.values <= 1.0)

    def test_me_values_non_negative(self):
        rng = np.random.default_rng(6)
        times = np.sort(rng.uniform(0, 80, 200))
        values = np.clip(rng.normal(4, 0.5, 200), 0, 5)
        curve = ModelErrorDetector().curve(stream_from(times, values))
        assert np.all(curve.values >= 0.0)


class TestDeterminism:
    def test_detection_is_deterministic(self):
        rng = np.random.default_rng(7)
        times = np.sort(rng.uniform(0, 80, 250))
        values = np.clip(np.round(rng.normal(4, 0.7, 250) * 2) / 2, 0, 5)
        stream = stream_from(times, values)
        first = JointDetector().analyze(stream)
        second = JointDetector().analyze(stream)
        np.testing.assert_array_equal(first.suspicious, second.suspicious)
