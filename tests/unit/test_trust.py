"""Unit tests for beta trust and the Procedure 1 trust manager."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.trust.beta import BetaEvidence, beta_trust_value
from repro.trust.manager import TrustManager
from repro.types import RatingDataset, RatingStream


class TestBetaTrustValue:
    def test_no_evidence_is_half(self):
        assert beta_trust_value(0, 0) == 0.5

    def test_paper_formula(self):
        assert beta_trust_value(3, 1) == pytest.approx(4.0 / 6.0)

    def test_bounds(self):
        assert 0.0 < beta_trust_value(0, 1000) < beta_trust_value(1000, 0) < 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            beta_trust_value(-1, 0)


class TestBetaEvidence:
    def test_record_accumulates(self):
        evidence = BetaEvidence()
        evidence.record(good=3, bad=1)
        assert evidence.successes == 3
        assert evidence.failures == 1
        assert evidence.trust == pytest.approx(4.0 / 6.0)
        assert evidence.total == 4

    def test_negative_increment_rejected(self):
        with pytest.raises(ValidationError):
            BetaEvidence().record(good=-1, bad=0)

    def test_negative_init_rejected(self):
        with pytest.raises(ValidationError):
            BetaEvidence(successes=-1)

    def test_copy_is_independent(self):
        a = BetaEvidence(1, 1)
        b = a.copy()
        b.record(5, 0)
        assert a.successes == 1


def two_product_dataset():
    s1 = RatingStream(
        "p1", [1.0, 5.0, 35.0], [4.0, 4.0, 4.0], ["alice", "bob", "alice"]
    )
    s2 = RatingStream("p2", [2.0, 40.0], [4.0, 1.0], ["bob", "mallory"])
    return RatingDataset([s1, s2])


class TestTrustManager:
    def test_initial_trust(self):
        manager = TrustManager()
        assert manager.trust_of("unknown") == 0.5

    def test_custom_initial_trust(self):
        assert TrustManager(initial_trust=0.3).trust_of("x") == 0.3

    def test_invalid_initial_trust(self):
        with pytest.raises(ValidationError):
            TrustManager(initial_trust=0.0)

    def test_clean_epoch_raises_trust(self):
        manager = TrustManager()
        manager.record_epoch({"alice": (2, 0)})
        assert manager.trust_of("alice") == pytest.approx(3.0 / 4.0)

    def test_suspicious_epoch_lowers_trust(self):
        manager = TrustManager()
        manager.record_epoch({"eve": (2, 2)})
        # S = 0, F = 2: trust = (0 + 1) / (0 + 2 + 2) = 1/4.
        assert manager.trust_of("eve") == pytest.approx(0.25)

    def test_suspicious_exceeding_count_rejected(self):
        with pytest.raises(ValidationError):
            TrustManager().record_epoch({"x": (1, 2)})

    def test_run_over_dataset_cross_product(self):
        dataset = two_product_dataset()
        marks = {
            "p1": np.array([False, False, False]),
            "p2": np.array([False, True]),
        }
        manager = TrustManager()
        snapshots = manager.run(dataset, marks, epoch_times=[30.0, 60.0])
        # Epoch 1 (t < 30): alice 1 clean on p1, bob clean on p1+p2.
        assert snapshots[0].value("alice") == pytest.approx(2.0 / 3.0)
        assert snapshots[0].value("bob") == pytest.approx(3.0 / 4.0)
        assert snapshots[0].value("mallory") == 0.5  # not seen yet
        # Epoch 2: alice one more clean; mallory marked suspicious.
        assert snapshots[1].value("alice") == pytest.approx(3.0 / 4.0)
        assert snapshots[1].value("mallory") == pytest.approx(1.0 / 3.0)

    def test_run_requires_increasing_epochs(self):
        dataset = two_product_dataset()
        with pytest.raises(ValidationError):
            TrustManager().run(dataset, {}, epoch_times=[30.0, 30.0])

    def test_run_checks_mark_lengths(self):
        dataset = two_product_dataset()
        with pytest.raises(ValidationError):
            TrustManager().run(
                dataset, {"p1": np.array([True])}, epoch_times=[50.0]
            )

    def test_missing_marks_default_clean(self):
        dataset = two_product_dataset()
        snapshots = TrustManager().run(dataset, {}, epoch_times=[100.0])
        assert snapshots[0].value("mallory") == pytest.approx(2.0 / 3.0)

    def test_reset(self):
        manager = TrustManager()
        manager.record_epoch({"a": (5, 0)})
        manager.reset()
        assert manager.trust_of("a") == 0.5

    def test_snapshot_is_frozen_copy(self):
        manager = TrustManager()
        manager.record_epoch({"a": (1, 0)})
        snap = manager.snapshot(10.0)
        manager.record_epoch({"a": (1, 1)})
        assert snap.value("a") == pytest.approx(2.0 / 3.0)


class TestForgettingFactor:
    def test_default_never_forgets(self):
        manager = TrustManager()
        manager.record_epoch({"a": (4, 0)})
        manager.record_epoch({})
        assert manager.trust_of("a") == pytest.approx(5.0 / 6.0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValidationError):
            TrustManager(forgetting_factor=0.0)
        with pytest.raises(ValidationError):
            TrustManager(forgetting_factor=1.5)

    def test_fading_decays_toward_initial_trust(self):
        manager = TrustManager(forgetting_factor=0.5)
        manager.record_epoch({"a": (8, 0)})
        trust_fresh = manager.trust_of("a")
        for _ in range(10):
            manager.record_epoch({})
        assert manager.trust_of("a") < trust_fresh
        assert manager.trust_of("a") == pytest.approx(0.5, abs=0.01)

    def test_attacker_redemption_possible_with_fading(self):
        fading = TrustManager(forgetting_factor=0.7)
        eternal = TrustManager(forgetting_factor=1.0)
        for manager in (fading, eternal):
            manager.record_epoch({"eve": (5, 5)})  # caught once
            for _ in range(6):
                manager.record_epoch({"eve": (2, 0)})  # behaves well after
        assert fading.trust_of("eve") > eternal.trust_of("eve")
        assert fading.trust_of("eve") > 0.6

    def test_silent_raters_also_fade(self):
        manager = TrustManager(forgetting_factor=0.5)
        manager.record_epoch({"a": (4, 0), "b": (4, 0)})
        manager.record_epoch({"a": (4, 0)})  # b silent
        assert manager.trust_of("a") > manager.trust_of("b")
