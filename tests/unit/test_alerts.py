"""Unit tests for repro.obs.alerts: rules, engine hysteresis, loading."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry
from repro.obs.alerts import (
    DEFAULT_RULES_PATH,
    AlertEngine,
    AlertRule,
    _parse_mini_toml,
    load_rules,
)
from repro.obs.series import TimeSeriesRecorder


def feed(recorder, values, metric="m"):
    """Ingest one value per epoch, starting at epoch 0."""
    for epoch, value in enumerate(values):
        recorder.ingest_snapshot(epoch, {metric: value})


class TestAlertRuleValidation:
    def test_defaults_are_valid(self):
        rule = AlertRule(name="r", metric="m")
        assert rule.kind == "threshold"
        assert rule.severity == "warning"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"metric": ""},
            {"kind": "slope"},
            {"op": "=="},
            {"severity": "panic"},
            {"window": 0},
            {"for_epochs": 0},
            {"resolve_epochs": -1},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        base = {"name": "r", "metric": "m"}
        base.update(kwargs)
        with pytest.raises(ValidationError):
            AlertRule(**base)

    @pytest.mark.parametrize(
        "op,signal,expected",
        [
            (">", 1.1, True), (">", 1.0, False),
            (">=", 1.0, True), ("<", 0.9, True),
            ("<=", 1.0, True), ("<=", 1.1, False),
        ],
    )
    def test_breached_comparisons(self, op, signal, expected):
        rule = AlertRule(name="r", metric="m", op=op, value=1.0)
        assert rule.breached(signal) is expected


class TestSignals:
    def test_threshold_uses_latest_value(self):
        recorder = TimeSeriesRecorder()
        feed(recorder, [1.0, 5.0])
        rule = AlertRule(name="r", metric="m", kind="threshold")
        assert rule.signal(recorder, 1) == 5.0
        assert rule.signal(recorder, 0) == 1.0

    def test_no_data_yields_none(self):
        rule = AlertRule(name="r", metric="m")
        assert rule.signal(TimeSeriesRecorder(), 0) is None

    def test_rate_of_change_is_one_epoch_delta(self):
        recorder = TimeSeriesRecorder()
        feed(recorder, [2.0, 7.0])
        rule = AlertRule(name="r", metric="m", kind="rate_of_change")
        assert rule.signal(recorder, 1) == 5.0

    def test_first_appearance_counts_as_positive_delta(self):
        # A counter's first point has no predecessor: missing reads 0,
        # so a counter that starts moving registers immediately.
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(3, {"m": 4.0})
        rule = AlertRule(name="r", metric="m", kind="rate_of_change")
        assert rule.signal(recorder, 3) == 4.0

    def test_burn_rate_spans_the_window(self):
        recorder = TimeSeriesRecorder()
        feed(recorder, [0.0, 2.0, 4.0, 9.0])
        rule = AlertRule(name="r", metric="m", kind="burn_rate", window=3)
        assert rule.signal(recorder, 3) == 9.0


class TestEngineHysteresis:
    def test_fires_after_for_epochs_with_latency(self):
        rule = AlertRule(
            name="r", metric="m", op=">", value=0.0, for_epochs=2
        )
        engine = AlertEngine([rule], registry=MetricsRegistry())
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(0, {"m": 1.0})
        assert engine.evaluate(recorder, 0) == []  # breach 1: not yet
        recorder.ingest_snapshot(1, {"m": 1.0})
        events = engine.evaluate(recorder, 1)
        assert [e.state for e in events] == ["firing"]
        assert events[0].latency_epochs == 1
        assert engine.firing() == ["r"]

    def test_resolves_after_resolve_epochs(self):
        rule = AlertRule(
            name="r", metric="m", op=">", value=0.0, resolve_epochs=2
        )
        engine = AlertEngine([rule], registry=MetricsRegistry())
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(0, {"m": 1.0})
        assert [e.state for e in engine.evaluate(recorder, 0)] == ["firing"]
        recorder.ingest_snapshot(1, {"m": 0.0})
        assert engine.evaluate(recorder, 1) == []  # clear 1: still firing
        assert engine.state_of("r") == "firing"
        recorder.ingest_snapshot(2, {"m": 0.0})
        events = engine.evaluate(recorder, 2)
        assert [e.state for e in events] == ["resolved"]
        assert engine.firing() == []

    def test_interrupted_breach_streak_resets(self):
        rule = AlertRule(
            name="r", metric="m", op=">", value=0.0, for_epochs=2
        )
        engine = AlertEngine([rule], registry=MetricsRegistry())
        recorder = TimeSeriesRecorder()
        for epoch, value in enumerate([1.0, 0.0, 1.0]):
            recorder.ingest_snapshot(epoch, {"m": value})
            engine.evaluate(recorder, epoch)
        # Never two consecutive breaches: must not fire.
        assert engine.firing() == []

    def test_alert_metrics_emitted(self):
        registry = MetricsRegistry()
        rule = AlertRule(name="r", metric="m", op=">", value=0.0)
        engine = AlertEngine([rule], registry=registry)
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(0, {"m": 1.0})
        engine.evaluate(recorder, 0)
        assert registry.counter_value("alert.evaluations") == 1.0
        assert registry.counter_value("alert.events") == 1.0
        assert registry.counter_value("alert.firing") == 1.0
        assert registry.gauge("alert.active").value == 1.0

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(name="r", metric="m")
        with pytest.raises(ValidationError):
            AlertEngine([rule, rule])

    def test_unknown_rule_state_raises(self):
        engine = AlertEngine([])
        with pytest.raises(ValidationError):
            engine.state_of("ghost")

    def test_event_as_dict_is_json_serializable(self):
        rule = AlertRule(name="r", metric="m", op=">", value=0.0)
        engine = AlertEngine([rule], registry=MetricsRegistry())
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(0, {"m": 1.0})
        (event,) = engine.evaluate(recorder, 0)
        payload = json.loads(json.dumps(event.as_dict()))
        assert payload["rule"] == "r"
        assert payload["state"] == "firing"


class TestLoadRules:
    def test_toml_rules_load(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rule]]\nname = "a"\nmetric = "drift.warnings"\n'
            'kind = "rate_of_change"\nvalue = 2\nseverity = "critical"\n'
            '\n[[rule]]\nname = "b"\nmetric = "alert.active"\n',
            encoding="utf-8",
        )
        rules = load_rules(path)
        assert [r.name for r in rules] == ["a", "b"]
        assert rules[0].kind == "rate_of_change"
        assert rules[0].value == 2.0

    def test_json_rules_load(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                {"rules": [{"name": "a", "metric": "m", "op": ">="}]}
            ),
            encoding="utf-8",
        )
        (rule,) = load_rules(path)
        assert rule.op == ">="

    def test_unknown_keys_rejected_with_path(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rule]]\nname = "a"\nmetric = "m"\nthresh = 3\n',
            encoding="utf-8",
        )
        with pytest.raises(ValidationError, match="unknown keys"):
            load_rules(path)

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rule]]\nname = "a"\nmetric = "m"\n'
            '[[rule]]\nname = "a"\nmetric = "n"\n',
            encoding="utf-8",
        )
        with pytest.raises(ValidationError, match="duplicate"):
            load_rules(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_rules(tmp_path / "absent.toml")

    def test_mini_toml_parses_the_rule_grammar(self):
        payload = _parse_mini_toml(
            "# comment\n"
            "[[rule]]\n"
            'name = "a"\n'
            "value = 1.5\n"
            "window = 3\n"
            "enabled = true\n"
        )
        assert payload == {
            "rule": [
                {"name": "a", "value": 1.5, "window": 3, "enabled": True}
            ]
        }

    def test_mini_toml_rejects_stray_assignment(self):
        with pytest.raises(ValidationError, match="expected"):
            _parse_mini_toml('name = "a"\n')

    def test_mini_toml_rejects_unsupported_value(self):
        with pytest.raises(ValidationError, match="unsupported value"):
            _parse_mini_toml('[[rule]]\nname = [1, 2]\n')


class TestDefaultRuleset:
    def test_packaged_ruleset_loads(self):
        rules = load_rules(DEFAULT_RULES_PATH)
        assert len(rules) >= 3
        names = {rule.name for rule in rules}
        assert "drift-warnings-moving" in names
        kinds = {rule.kind for rule in rules}
        assert kinds == {"threshold", "rate_of_change", "burn_rate"}
