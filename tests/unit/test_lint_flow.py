"""repro.lint.flow: the four interprocedural rule families.

Each family gets a bad/good fixture pair built as a small multi-file
package under tmp_path, run through the real Linter with only that rule
selected -- the same path ``repro lint`` takes, so these tests cover the
extract -> link -> check pipeline end to end rather than poking rule
internals.
"""

import textwrap

from repro.lint import default_rules
from repro.lint.core import LintConfig, Linter


def run_rules(tmp_path, files, select):
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    config = LintConfig(
        select=set(select), baseline_path=None, stale_check=False,
    )
    return Linter(default_rules(config), config).run([tmp_path.as_posix()])


TASK_BASE = """
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class EvalTask:
        seed: int

        def run(self):
            raise NotImplementedError
"""


class TestRngTaint:
    def test_unplumbed_rng_on_run_path_is_flagged_with_chain(self, tmp_path):
        result = run_rules(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": TASK_BASE,
            "pkg/probe.py": """
                from dataclasses import dataclass

                import numpy as np

                from pkg.base import EvalTask


                def entropy():
                    return np.random.default_rng().normal()


                @dataclass(frozen=True)
                class ProbeTask(EvalTask):
                    def run(self):
                        return entropy()
            """,
        }, {"rng-taint"})
        (finding,) = result.findings
        assert finding.rule == "rng-taint"
        assert "entropy" in finding.message
        assert " <- " in finding.message
        assert "ProbeTask.run" in finding.message

    def test_seed_plumbed_from_task_field_is_clean(self, tmp_path):
        result = run_rules(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": TASK_BASE,
            "pkg/probe.py": """
                from dataclasses import dataclass

                import numpy as np

                from pkg.base import EvalTask


                def sample(seed):
                    return np.random.default_rng(seed).normal()


                @dataclass(frozen=True)
                class ProbeTask(EvalTask):
                    def run(self):
                        return sample(self.seed)
            """,
        }, {"rng-taint"})
        assert result.findings == []

    def test_constant_seed_off_run_path_is_not_this_rules_business(self, tmp_path):
        result = run_rules(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": TASK_BASE,
            "pkg/loose.py": """
                import numpy as np


                def rehearse():
                    return np.random.default_rng()
            """,
        }, {"rng-taint"})
        assert result.findings == []

    def test_site_pragma_suppresses(self, tmp_path):
        result = run_rules(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": TASK_BASE,
            "pkg/probe.py": """
                from dataclasses import dataclass

                import numpy as np

                from pkg.base import EvalTask


                @dataclass(frozen=True)
                class ProbeTask(EvalTask):
                    def run(self):
                        return np.random.default_rng().normal()  # lint: ignore[rng-taint]
            """,
        }, {"rng-taint"})
        assert result.findings == []


WORKER_POOL = textwrap.dedent("""
    _REGISTRY = {}


    def get_shared_world(key):
        return _REGISTRY[key]


    def _run_task_timed(task):
        return _apply(task)
""")


class TestWorkerStateMutation:
    def test_global_and_shared_writes_in_worker_closure_are_flagged(self, tmp_path):
        files = {"pool.py": WORKER_POOL + textwrap.dedent("""
            def _apply(task):
                world = get_shared_world(task)
                world.items[task] = 1
                _REGISTRY[task] = world
                return world
        """)}
        result = run_rules(tmp_path, files, {"worker-state-mutation"})
        messages = sorted(f.message for f in result.findings)
        assert len(messages) == 2
        assert any("_REGISTRY" in m for m in messages)
        assert any("world" in m for m in messages)

    def test_local_state_in_worker_closure_is_clean(self, tmp_path):
        files = {"pool.py": WORKER_POOL + textwrap.dedent("""
            def _apply(task):
                scratch = {}
                scratch[task] = 1
                return scratch
        """)}
        result = run_rules(tmp_path, files, {"worker-state-mutation"})
        assert result.findings == []

    def test_writes_outside_worker_closure_are_clean(self, tmp_path):
        result = run_rules(tmp_path, {
            "config.py": """
                _SETTINGS = {}


                def configure(key, value):
                    _SETTINGS[key] = value
            """,
        }, {"worker-state-mutation"})
        assert result.findings == []

    def test_sanctioned_shared_registry_is_clean(self, tmp_path):
        result = run_rules(tmp_path, {
            "repro/__init__.py": "",
            "repro/exec/__init__.py": "",
            "repro/exec/tasks.py": """
                _SHARED = {}


                def _run_task_timed(task):
                    _SHARED[task] = 1
                    return task
            """,
        }, {"worker-state-mutation"})
        assert result.findings == []


class TestPickleReachability:
    def test_opaque_and_transitive_fields_are_flagged(self, tmp_path):
        result = run_rules(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": TASK_BASE,
            "pkg/tasks.py": """
                from dataclasses import dataclass
                from typing import Callable

                from pkg.base import EvalTask


                @dataclass(frozen=True)
                class Inner:
                    fn: object


                @dataclass(frozen=True)
                class OpaqueTask(EvalTask):
                    payload: object
                    hook: Callable
                    inner: Inner

                    def run(self):
                        return self.payload
            """,
        }, {"pickle-reachability"})
        flagged = sorted(f.message for f in result.findings)
        assert len(flagged) == 3
        assert any("payload" in m for m in flagged)
        assert any("hook" in m for m in flagged)
        assert any("inner" in m for m in flagged)

    def test_picklable_and_numpy_fields_are_clean(self, tmp_path):
        result = run_rules(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": TASK_BASE,
            "pkg/tasks.py": """
                from dataclasses import dataclass
                from typing import Optional, Tuple

                import numpy as np

                from pkg.base import EvalTask


                @dataclass(frozen=True)
                class Leaf:
                    weight: float
                    name: str


                @dataclass(frozen=True)
                class GoodTask(EvalTask):
                    values: np.ndarray
                    label: Optional[str]
                    leaves: Tuple[Leaf, ...]

                    def run(self):
                        return float(self.values.sum())
            """,
        }, {"pickle-reachability"})
        assert result.findings == []


class TestWallclockFingerprint:
    FILES = {
        "repro/__init__.py": "",
        "repro/exec/__init__.py": "",
        "repro/exec/hashing.py": """
            def derive_seed(*parts):
                return 0
        """,
    }

    def test_clock_reaching_hash_feed_is_flagged_at_feed_site(self, tmp_path):
        files = dict(self.FILES)
        files["repro/keys.py"] = """
            import time

            from repro.exec.hashing import derive_seed


            def now_tag():
                return int(time.time())  # lint: ignore[wall-clock]


            def fingerprint(root):
                return derive_seed(root, now_tag())
        """
        result = run_rules(tmp_path, files, {"wallclock-fingerprint"})
        (finding,) = result.findings
        assert finding.rule == "wallclock-fingerprint"
        assert "now_tag" in finding.message
        assert finding.path.endswith("keys.py")

    def test_pure_inputs_are_clean(self, tmp_path):
        files = dict(self.FILES)
        files["repro/keys.py"] = """
            from repro.exec.hashing import derive_seed


            def label(root):
                return str(root)


            def fingerprint(root):
                return derive_seed(root, label(root))
        """
        result = run_rules(tmp_path, files, {"wallclock-fingerprint"})
        assert result.findings == []

    def test_interprocedural_pragma_at_clock_site_suppresses(self, tmp_path):
        files = dict(self.FILES)
        files["repro/keys.py"] = """
            import time

            from repro.exec.hashing import derive_seed


            def coarse_day():
                # lint: ignore[wall-clock]
                return int(time.time() // 86400)  # lint: ignore[wallclock-fingerprint]


            def fingerprint(root):
                return derive_seed(root, coarse_day())
        """
        result = run_rules(tmp_path, files, {"wallclock-fingerprint"})
        assert result.findings == []


class TestSpanEscape:
    FILES = {
        "repro/__init__.py": "",
        "repro/obs/__init__.py": """
            class span:
                def __init__(self, name):
                    self.name = name

                def __enter__(self):
                    return self

                def __exit__(self, *exc):
                    return False
        """,
    }

    def test_bare_call_to_span_returning_helper_is_flagged(self, tmp_path):
        files = dict(self.FILES)
        files["repro/phases.py"] = """
            from repro.obs import span


            def open_phase(name):
                return span(name)  # lint: ignore[span-balance]


            def run_phase(name):
                open_phase(name)
                return name
        """
        result = run_rules(tmp_path, files, {"span-escape"})
        (finding,) = result.findings
        assert finding.rule == "span-escape"
        assert "open_phase" in finding.message

    def test_with_consumed_helper_is_clean(self, tmp_path):
        files = dict(self.FILES)
        files["repro/phases.py"] = """
            from repro.obs import span


            def open_phase(name):
                return span(name)  # lint: ignore[span-balance]


            def run_phase(name):
                with open_phase(name):
                    return name
        """
        result = run_rules(tmp_path, files, {"span-escape"})
        assert result.findings == []

    def test_wrapper_chains_propagate_span_returning(self, tmp_path):
        files = dict(self.FILES)
        files["repro/phases.py"] = """
            from repro.obs import span


            def open_phase(name):
                return span(name)  # lint: ignore[span-balance]


            def open_wrapped(name):
                return open_phase(name)


            def run_phase(name):
                open_wrapped(name)
                return name
        """
        result = run_rules(tmp_path, files, {"span-escape"})
        (finding,) = result.findings
        assert "open_wrapped" in finding.message
