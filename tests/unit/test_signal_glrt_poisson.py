"""Unit tests for the Gaussian and Poisson GLRT statistics."""

import numpy as np
import pytest

from repro.errors import EmptyDataError
from repro.signal.glrt import gaussian_mean_change_statistic, mean_change_decision
from repro.signal.poisson import poisson_rate_change_statistic, rate_change_decision


class TestGaussianMeanChange:
    def test_zero_for_identical_means(self):
        x = np.full(10, 4.0)
        assert gaussian_mean_change_statistic(x, x) == 0.0

    def test_matches_paper_form_for_balanced_halves(self):
        # Balanced case: statistic must equal W * (A1 - A2)^2.
        w = 7
        x1 = np.full(w, 4.0)
        x2 = np.full(w, 3.0)
        assert gaussian_mean_change_statistic(x1, x2) == pytest.approx(w * 1.0)

    def test_unbalanced_halves(self):
        x1 = np.full(4, 2.0)
        x2 = np.full(12, 5.0)
        expected = 2.0 * (4 * 12) / 16 * 9.0
        assert gaussian_mean_change_statistic(x1, x2) == pytest.approx(expected)

    def test_symmetric_in_halves(self):
        rng = np.random.default_rng(0)
        x1, x2 = rng.normal(4, 1, 9), rng.normal(3, 1, 13)
        assert gaussian_mean_change_statistic(x1, x2) == pytest.approx(
            gaussian_mean_change_statistic(x2, x1)
        )

    def test_empty_half_raises(self):
        with pytest.raises(EmptyDataError):
            gaussian_mean_change_statistic(np.array([]), np.array([1.0]))

    def test_grows_with_mean_gap(self):
        x1 = np.full(10, 4.0)
        small = gaussian_mean_change_statistic(x1, np.full(10, 3.5))
        large = gaussian_mean_change_statistic(x1, np.full(10, 1.0))
        assert large > small

    def test_decision_thresholding(self):
        x1 = np.full(20, 4.0)
        x2 = np.full(20, 3.0)
        assert mean_change_decision(x1, x2, sigma=0.5, gamma=10.0)
        assert not mean_change_decision(x1, x2, sigma=5.0, gamma=10.0)

    def test_decision_requires_positive_sigma(self):
        with pytest.raises(Exception):
            mean_change_decision(np.ones(3), np.ones(3), sigma=0.0, gamma=1.0)


class TestPoissonRateChange:
    def test_zero_for_equal_rates(self):
        y = np.full(10, 3.0)
        assert poisson_rate_change_statistic(y, y) == 0.0

    def test_positive_for_rate_change(self):
        y1 = np.full(10, 1.0)
        y2 = np.full(10, 5.0)
        assert poisson_rate_change_statistic(y1, y2) > 0.0

    def test_handles_zero_counts(self):
        y1 = np.zeros(10)
        y2 = np.full(10, 3.0)
        stat = poisson_rate_change_statistic(y1, y2)
        assert np.isfinite(stat) and stat > 0

    def test_both_zero_is_zero(self):
        assert poisson_rate_change_statistic(np.zeros(5), np.zeros(5)) == 0.0

    def test_total_flag_scales_by_window(self):
        y1 = np.full(6, 1.0)
        y2 = np.full(6, 4.0)
        per_day = poisson_rate_change_statistic(y1, y2)
        total = poisson_rate_change_statistic(y1, y2, total=True)
        assert total == pytest.approx(12 * per_day)

    def test_manual_value(self):
        # a = b = 1, y1 = [1], y2 = [e]: statistic = 0.5*0 + 0.5*e - pooled
        y1, y2 = np.array([1.0]), np.array([np.e])
        pooled = (1 + np.e) / 2
        expected = 0.5 * 0.0 + 0.5 * np.e - pooled * np.log(pooled)
        assert poisson_rate_change_statistic(y1, y2) == pytest.approx(expected)

    def test_empty_half_raises(self):
        with pytest.raises(EmptyDataError):
            poisson_rate_change_statistic(np.array([]), np.ones(3))

    def test_negative_counts_rejected(self):
        with pytest.raises(EmptyDataError):
            poisson_rate_change_statistic(np.array([-1.0]), np.ones(3))

    def test_decision(self):
        y1 = np.full(15, 1.0)
        y2 = np.full(15, 6.0)
        assert rate_change_decision(y1, y2, ln_gamma=1.0)
        assert not rate_change_decision(y1, y1, ln_gamma=1.0)

    def test_symmetry(self):
        y1 = np.full(8, 2.0)
        y2 = np.full(8, 7.0)
        assert poisson_rate_change_statistic(y1, y2) == pytest.approx(
            poisson_rate_change_statistic(y2, y1)
        )
