"""Unit tests for dataset CSV and submission JSON serialization."""

import numpy as np
import pytest

from repro.attacks.base import AttackSubmission, build_attack_stream
from repro.errors import ValidationError
from repro.marketplace.io import (
    dataset_from_csv,
    dataset_to_csv,
    load_dataset_csv,
    load_submission_json,
    save_dataset_csv,
    save_submission_json,
    submission_from_json,
    submission_to_json,
)
from repro.types import RatingDataset, RatingStream


def sample_dataset():
    s1 = RatingStream(
        "p1", [0.5, 1.25, 2.0], [4.0, 3.5, 5.0], ["a", "b", "c"],
        [False, True, False],
    )
    s2 = RatingStream("p2", [0.75], [2.0], ["d"])
    return RatingDataset([s1, s2])


def sample_submission():
    stream = build_attack_stream(
        "p1", [10.0, 20.5], [0.5, 1.0], ["atk_0", "atk_1"]
    )
    return AttackSubmission(
        "sub_x", {"p1": stream}, strategy="burst",
        params={"bias": -3.0, "targets": {"p1": -1}},
    )


class TestDatasetCsv:
    def test_roundtrip(self):
        original = sample_dataset()
        restored = dataset_from_csv(dataset_to_csv(original))
        assert set(restored.product_ids) == set(original.product_ids)
        for pid in original:
            np.testing.assert_array_equal(restored[pid].times, original[pid].times)
            np.testing.assert_array_equal(restored[pid].values, original[pid].values)
            assert restored[pid].rater_ids == original[pid].rater_ids
            np.testing.assert_array_equal(restored[pid].unfair, original[pid].unfair)

    def test_header_written(self):
        text = dataset_to_csv(sample_dataset())
        assert text.splitlines()[0] == "product_id,rater_id,time,value,unfair"

    def test_empty_csv_rejected(self):
        with pytest.raises(ValidationError):
            dataset_from_csv("")

    def test_wrong_header_rejected(self):
        with pytest.raises(ValidationError, match="header"):
            dataset_from_csv("a,b,c\n1,2,3\n")

    def test_bad_field_count_rejected(self):
        text = "product_id,rater_id,time,value,unfair\np1,a,1.0,4.0\n"
        with pytest.raises(ValidationError, match="5 fields"):
            dataset_from_csv(text)

    def test_bad_number_rejected(self):
        text = "product_id,rater_id,time,value,unfair\np1,a,abc,4.0,0\n"
        with pytest.raises(ValidationError):
            dataset_from_csv(text)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "data.csv"
        save_dataset_csv(sample_dataset(), path)
        restored = load_dataset_csv(path)
        assert restored.total_ratings() == 4

    def test_fair_world_roundtrip(self):
        from repro.marketplace import FairRatingGenerator, FairRatingConfig

        config = FairRatingConfig(duration_days=10.0, history_days=0.0)
        original = FairRatingGenerator(config=config, seed=0).generate()
        restored = dataset_from_csv(dataset_to_csv(original))
        assert restored.total_ratings() == original.total_ratings()
        for pid in original:
            np.testing.assert_array_equal(
                restored[pid].values, original[pid].values
            )


class TestSubmissionJson:
    def test_roundtrip(self):
        original = sample_submission()
        restored = submission_from_json(submission_to_json(original))
        assert restored.submission_id == original.submission_id
        assert restored.strategy == original.strategy
        assert restored.params["bias"] == -3.0
        np.testing.assert_array_equal(
            restored.streams["p1"].values, original.streams["p1"].values
        )
        assert restored.streams["p1"].unfair.all()

    def test_invalid_json_rejected(self):
        with pytest.raises(ValidationError):
            submission_from_json("{not json")

    def test_missing_keys_rejected(self):
        with pytest.raises(ValidationError, match="products"):
            submission_from_json('{"submission_id": "x"}')

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "sub.json"
        save_submission_json(sample_submission(), path)
        restored = load_submission_json(path)
        assert restored.total_ratings() == 2

    def test_numpy_params_serializable(self):
        stream = build_attack_stream("p", [1.0], [0.0], ["a"])
        submission = AttackSubmission(
            "s", {"p": stream},
            params={"bias": np.float64(2.0), "n": np.int64(3), "arr": (1, 2)},
        )
        restored = submission_from_json(submission_to_json(submission))
        assert restored.params["bias"] == 2.0
        assert restored.params["n"] == 3
        assert restored.params["arr"] == [1, 2]
