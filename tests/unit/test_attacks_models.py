"""Unit tests for attack value models, time models, and correlation mappers."""

import numpy as np
import pytest

from repro.attacks.correlation import (
    heuristic_correlation_match,
    identity_match,
    random_match,
)
from repro.attacks.time_models import (
    ConcentratedBurst,
    EvenlySpaced,
    PoissonTimes,
    UniformWindow,
    sample_times,
)
from repro.attacks.value_models import ValueSetSpec, generate_value_set
from repro.errors import AttackSpecError
from repro.types import RatingScale, RatingStream


class TestValueSetSpec:
    def test_target_mean(self):
        assert ValueSetSpec(bias=-2.0, std=0.5).target_mean(4.0) == 2.0

    def test_negative_std_rejected(self):
        with pytest.raises(AttackSpecError):
            ValueSetSpec(bias=0.0, std=-0.1)


class TestGenerateValueSet:
    def test_exact_moments_when_unclipped(self):
        spec = ValueSetSpec(bias=-1.5, std=0.4)
        values = generate_value_set(50, 4.0, spec, seed=0)
        assert values.mean() == pytest.approx(2.5, abs=1e-9)
        assert values.std() == pytest.approx(0.4, abs=1e-9)

    def test_values_clipped_to_scale(self):
        spec = ValueSetSpec(bias=-4.0, std=1.0)
        values = generate_value_set(50, 4.0, spec, seed=1)
        assert values.min() >= 0.0
        assert values.max() <= 5.0

    def test_zero_std_constant(self):
        values = generate_value_set(10, 4.0, ValueSetSpec(-2.0, 0.0), seed=2)
        np.testing.assert_allclose(values, 2.0)

    def test_single_value(self):
        values = generate_value_set(1, 4.0, ValueSetSpec(1.0, 0.5), seed=3)
        assert values.shape == (1,)
        assert values[0] == pytest.approx(5.0)

    def test_quantisation(self):
        values = generate_value_set(
            30, 4.0, ValueSetSpec(-1.0, 0.7), seed=4, value_step=0.5
        )
        np.testing.assert_allclose(np.mod(values * 2.0, 1.0), 0.0, atol=1e-9)

    def test_invalid_count(self):
        with pytest.raises(AttackSpecError):
            generate_value_set(0, 4.0, ValueSetSpec(0.0, 1.0))

    def test_invalid_step(self):
        with pytest.raises(AttackSpecError):
            generate_value_set(5, 4.0, ValueSetSpec(0.0, 1.0), value_step=0.0)

    def test_custom_scale(self):
        scale = RatingScale(1.0, 10.0)
        values = generate_value_set(
            40, 7.0, ValueSetSpec(-8.0, 0.5), scale=scale, seed=5
        )
        assert values.min() >= 1.0

    def test_deterministic(self):
        a = generate_value_set(20, 4.0, ValueSetSpec(-1.0, 0.5), seed=9)
        b = generate_value_set(20, 4.0, ValueSetSpec(-1.0, 0.5), seed=9)
        np.testing.assert_array_equal(a, b)


class TestTimeModels:
    def test_uniform_window_bounds(self):
        times = sample_times(UniformWindow(10.0, 20.0), 100, seed=0)
        assert times.min() >= 10.0
        assert times.max() <= 30.0
        assert np.all(np.diff(times) >= 0)

    def test_uniform_invalid_duration(self):
        with pytest.raises(AttackSpecError):
            UniformWindow(0.0, 0.0)

    def test_burst_width(self):
        times = sample_times(ConcentratedBurst(40.0, width=1.0), 50, seed=1)
        assert times.max() - times.min() <= 1.0
        assert abs(times.mean() - 40.0) < 1.0

    def test_evenly_spaced_interval(self):
        times = sample_times(EvenlySpaced(5.0, 2.0), 10, seed=2)
        np.testing.assert_allclose(np.diff(times), 2.0)
        assert times[0] == 5.0

    def test_evenly_spaced_jitter_bounded(self):
        model = EvenlySpaced(0.0, 4.0, jitter=0.5)
        times = sample_times(model, 50, seed=3)
        gaps = np.diff(times)
        assert np.all(gaps > 0.0)
        assert abs(gaps.mean() - 4.0) < 0.5

    def test_evenly_spaced_invalid_jitter(self):
        with pytest.raises(AttackSpecError):
            EvenlySpaced(0.0, 1.0, jitter=1.0)

    def test_poisson_rate(self):
        times = sample_times(PoissonTimes(0.0, rate=2.0), 400, seed=4)
        mean_gap = np.diff(times).mean()
        assert mean_gap == pytest.approx(0.5, rel=0.2)

    def test_poisson_invalid_rate(self):
        with pytest.raises(AttackSpecError):
            PoissonTimes(0.0, rate=0.0)

    def test_zero_count_rejected(self):
        with pytest.raises(AttackSpecError):
            sample_times(UniformWindow(0.0, 1.0), 0)


def fair_reference():
    times = np.array([0.0, 10.0, 20.0, 30.0])
    values = np.array([5.0, 1.0, 5.0, 1.0])
    return RatingStream("p", times, values, ["a", "b", "c", "d"])


class TestCorrelationMappers:
    def test_identity_keeps_value_order(self):
        times = np.array([3.0, 1.0, 2.0])
        values = np.array([10.0, 20.0, 30.0])
        out_t, out_v = identity_match(times, values)
        np.testing.assert_array_equal(out_t, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(out_v, [10.0, 20.0, 30.0])

    def test_random_is_permutation(self):
        times = np.arange(10, dtype=float)
        values = np.arange(10, dtype=float) * 0.5
        _t, shuffled = random_match(times, values, seed=0)
        assert sorted(shuffled) == sorted(values)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AttackSpecError):
            identity_match(np.arange(3.0), np.arange(4.0))

    def test_heuristic_anti_correlates(self):
        # Attack at t=11 (NearV = 1.0) and t=21 (NearV = 5.0), with values
        # {0.0, 4.9}: Procedure 3 gives the far-from-1.0 value (4.9) to
        # t=11 and the far-from-5.0 value (0.0) to t=21.
        times = np.array([11.0, 21.0])
        values = np.array([0.0, 4.9])
        out_t, out_v = heuristic_correlation_match(times, values, fair_reference())
        np.testing.assert_array_equal(out_t, [11.0, 21.0])
        np.testing.assert_array_equal(out_v, [4.9, 0.0])

    def test_heuristic_preserves_value_multiset(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0.0, 30.0, 20))
        values = rng.uniform(0.0, 5.0, 20)
        _t, matched = heuristic_correlation_match(times, values, fair_reference())
        np.testing.assert_allclose(sorted(matched), sorted(values))

    def test_heuristic_before_first_fair_rating_uses_default(self):
        times = np.array([-5.0])
        values = np.array([2.0])
        out_t, out_v = heuristic_correlation_match(
            times, values, fair_reference(), default_near_value=3.0
        )
        assert out_v[0] == 2.0

    def test_heuristic_empty_fair_stream(self):
        empty = RatingStream.empty("p")
        times = np.array([1.0, 2.0])
        values = np.array([0.0, 5.0])
        out_t, out_v = heuristic_correlation_match(times, values, empty)
        # default NearV = 2.5: farthest first -> both distances equal (2.5);
        # ties resolve deterministically.
        assert sorted(out_v) == [0.0, 5.0]
