"""Unit tests for the observability subsystem (repro.obs) and the
instrumentation threaded through the pipeline."""

import json
import logging

import numpy as np
import pytest

from repro.aggregation import PScheme
from repro.attacks.optimizer import SearchArea, heuristic_region_search
from repro.detectors import JointDetector, provenance_labels
from repro.detectors.base import (
    PROV_L_ARC,
    PROV_MC,
    PROV_PATH1,
    DetectionReport,
)
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    current_span_path,
    format_metrics,
    get_registry,
    registry_to_dict,
    set_registry,
    setup_logging,
    span,
    use_registry,
    write_json,
)
from repro.types import RatingDataset, RatingStream


def fair_stream(seed=0, days=100, per_day=5, product="p"):
    rng = np.random.default_rng(seed)
    n = int(days * per_day)
    times = np.sort(rng.uniform(0.0, days, n))
    values = np.clip(np.round(rng.normal(4.0, 0.6, n) * 2.0) / 2.0, 0, 5)
    return RatingStream(product, times, values, [f"u{i}" for i in range(n)])


def attacked_stream(seed=0, n_attack=50):
    base = fair_stream(seed=seed)
    rng = np.random.default_rng(seed + 1000)
    times = np.sort(rng.uniform(45.0, 60.0, n_attack))
    values = np.clip(rng.normal(0.8, 0.3, n_attack), 0, 5)
    attack = RatingStream(
        base.product_id, times, values,
        [f"atk{i}" for i in range(n_attack)], unfair=np.ones(n_attack, bool),
    )
    return base.merge(attack)


def small_dataset(seed=0):
    return RatingDataset([fair_stream(seed=seed)])


class TestRegistryPrimitives:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        assert reg.counter_value("a") == 3
        assert reg.counter_value("never") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("a", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.5)
        assert reg.gauges["g"].value == 7.5

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in [1.0, 2.0, 3.0, 4.0]:
            reg.observe("h", v)
        summary = reg.histograms["h"].summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] <= summary["p50"] <= summary["max"]

    def test_empty_histogram_summary(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.histograms["h"].summary() == {"count": 0}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not NULL_REGISTRY.enabled

    def test_null_registry_is_noop(self):
        NULL_REGISTRY.inc("x")
        NULL_REGISTRY.observe("y", 1.0)
        NULL_REGISTRY.set_gauge("z", 1.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_set_and_restore(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_use_registry_restores_on_exit(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            get_registry().inc("inside")
        assert get_registry() is NULL_REGISTRY
        assert reg.counter_value("inside") == 1


class TestSpans:
    def test_nested_paths_and_records(self):
        reg = MetricsRegistry()
        with span("outer", reg) as outer:
            assert current_span_path() == "outer"
            with span("inner", reg) as inner:
                assert current_span_path() == "outer.inner"
            assert inner.path == "outer.inner"
            assert inner.depth == 1
        assert current_span_path() == ""
        assert "span.outer.seconds" in reg.histograms
        assert "span.outer.inner.seconds" in reg.histograms
        assert outer.duration >= inner.duration >= 0.0

    def test_durations_monotone_under_nesting(self):
        reg = MetricsRegistry()
        with span("parent", reg):
            for _ in range(3):
                with span("child", reg):
                    sum(range(1000))
        parent = reg.histograms["span.parent.seconds"]
        child = reg.histograms["span.parent.child.seconds"]
        assert child.count == 3
        # The parent encloses all three children.
        assert parent.total >= child.total

    def test_annotations_exported(self):
        reg = MetricsRegistry()
        with span("work", reg) as record:
            record.annotate(items=5)
        dump = registry_to_dict(reg)
        assert dump["spans"][0]["annotations"] == {"items": 5}

    def test_null_registry_fast_path(self):
        with span("anything") as record:
            assert record.path == ""
        assert current_span_path() == ""

    def test_uses_global_registry_when_unspecified(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("global-span"):
                pass
        assert "span.global-span.seconds" in reg.histograms


class TestExporters:
    def test_write_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 0.5)
        reg.observe("h", 1.5)
        with span("s", reg):
            pass
        out = tmp_path / "m.json"
        write_json(reg, str(out))
        payload = json.loads(out.read_text())
        assert payload["counters"]["c"] == 2
        assert payload["gauges"]["g"] == 0.5
        assert payload["histograms"]["h"]["count"] == 1
        assert payload["spans"][0]["path"] == "s"

    def test_format_metrics_tables(self):
        reg = MetricsRegistry()
        reg.inc("requests", 3)
        reg.observe("latency", 0.25)
        text = format_metrics(reg)
        assert "Counters" in text and "Histograms" in text
        assert "requests" in text and "latency" in text

    def test_format_metrics_empty(self):
        assert format_metrics(MetricsRegistry()) == "(no metrics collected)"


class TestLoggingSetup:
    def test_idempotent_handler_install(self):
        logger = setup_logging("INFO")
        logger2 = setup_logging("DEBUG")
        assert logger is logger2
        assert len(logger.handlers) == 1
        assert logger.level == logging.DEBUG
        assert logger.propagate is False

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging("LOUD")


class TestPSchemeTelemetry:
    def test_scores_cache_hits_after_repeat_call(self):
        reg = MetricsRegistry()
        scheme = PScheme(registry=reg)
        dataset = small_dataset()
        first = scheme.monthly_scores(dataset)
        second = scheme.monthly_scores(dataset)
        assert reg.counter_value("pscheme.scores_cache.misses") == 1
        assert reg.counter_value("pscheme.scores_cache.hits") >= 1
        np.testing.assert_allclose(first["p"], second["p"])

    def test_report_cache_counters(self):
        reg = MetricsRegistry()
        scheme = PScheme(registry=reg)
        dataset = small_dataset()
        scheme.detect(dataset)
        assert reg.counter_value("pscheme.report_cache.misses") == 1
        scheme.detect(dataset)
        assert reg.counter_value("pscheme.report_cache.hits") == 1

    def test_stage_spans_recorded(self):
        reg = MetricsRegistry()
        scheme = PScheme(registry=reg)
        scheme.monthly_scores(small_dataset())
        for stage in ("detect", "trust", "aggregate"):
            name = f"span.pscheme.monthly_scores.{stage}.seconds"
            assert name in reg.histograms, name
            assert reg.histograms[name].total >= 0.0
        total = reg.histograms["span.pscheme.monthly_scores.seconds"]
        stages = sum(
            reg.histograms[f"span.pscheme.monthly_scores.{s}.seconds"].total
            for s in ("detect", "trust", "aggregate")
        )
        assert total.total >= stages

    def test_detector_timings_recorded(self):
        reg = MetricsRegistry()
        scheme = PScheme(registry=reg)
        scheme.monthly_scores(small_dataset())
        for kind in ("MC", "H-ARC", "L-ARC", "HC", "ME"):
            hist = reg.histograms[f"detector.{kind}.seconds"]
            assert hist.count >= 1
            assert hist.total > 0.0

    def test_trust_telemetry(self):
        reg = MetricsRegistry()
        scheme = PScheme(registry=reg)
        scheme.monthly_scores(small_dataset())
        assert reg.counter_value("trust.epochs") >= 1
        assert reg.histograms["trust.value"].count >= 1
        assert 0.0 <= reg.histograms["trust.value"].min
        assert reg.histograms["trust.value"].max <= 1.0

    def test_no_registry_means_no_collection(self):
        scheme = PScheme()
        scheme.monthly_scores(small_dataset())
        assert NULL_REGISTRY.snapshot()["counters"] == {}


class TestCachePoisoningRegression:
    def test_detect_returns_write_protected_masks(self):
        scheme = PScheme()
        dataset = small_dataset()
        marks = scheme.detect(dataset)
        mask = marks["p"]
        with pytest.raises(ValueError):
            mask[0] = True

    def test_mutation_attempt_cannot_poison_cache_hits(self):
        scheme = PScheme()
        dataset = RatingDataset([attacked_stream()])
        first = scheme.detect(dataset)["p"]
        original = first.copy()
        with pytest.raises(ValueError):
            first[:] = False
        second = scheme.detect(dataset)["p"]
        np.testing.assert_array_equal(second, original)

    def test_trust_pass_masks_also_protected(self):
        scheme = PScheme()
        dataset = small_dataset()
        marks = scheme.detect(dataset, trust_lookup=lambda rid: 0.5)
        with pytest.raises(ValueError):
            marks["p"][0] = True


class TestProvenance:
    def test_provenance_matches_suspicious_mask(self):
        report = JointDetector().analyze(attacked_stream())
        assert report.any_detection
        assert report.provenance_consistent
        np.testing.assert_array_equal(
            report.provenance != 0, report.suspicious
        )

    def test_marked_ratings_name_contributors(self):
        report = JointDetector().analyze(attacked_stream())
        index = int(np.nonzero(report.suspicious)[0][0])
        labels = report.provenance_of(index)
        assert any(label in ("path1", "path2") for label in labels)
        assert any(
            label in ("MC", "H-ARC", "L-ARC", "HC", "ME") for label in labels
        )

    def test_fair_stream_has_empty_provenance(self):
        report = JointDetector().analyze(fair_stream())
        assert report.provenance_consistent
        if not report.any_detection:
            assert not report.provenance.any()

    def test_provenance_labels_decoding(self):
        code = PROV_PATH1 | PROV_MC | PROV_L_ARC
        assert provenance_labels(code) == ("path1", "MC", "L-ARC")
        assert provenance_labels(0) == ()

    def test_default_provenance_is_zeros(self):
        report = DetectionReport("p", np.zeros(4, dtype=bool))
        assert report.provenance.shape == (4,)
        assert not report.provenance.any()
        with pytest.raises(ValueError):
            report.provenance[0] = 1

    def test_short_stream_report_consistent(self):
        stream = fair_stream()
        short = RatingStream(
            "p", stream.times[:5], stream.values[:5],
            tuple(stream.rater_ids[:5]),
        )
        report = JointDetector().analyze(short)
        assert report.provenance_consistent


class TestSearchTelemetry:
    def test_probe_counters_and_timings(self):
        reg = MetricsRegistry()
        area = SearchArea(bias_min=-4.0, bias_max=0.0, std_min=0.0, std_max=2.0)
        result = heuristic_region_search(
            lambda bias, std: -bias * (1.0 + std),
            area,
            n_subareas=4,
            probes_per_subarea=2,
            max_rounds=2,
            registry=reg,
        )
        probes = reg.counter_value("search.probes")
        assert probes >= 8  # 2 rounds x 4 subareas x 2 probes, plus final
        assert reg.histograms["search.probe_seconds"].count == probes
        assert reg.histograms["search.probe_mp"].count == probes
        assert reg.gauges["search.best_mp"].value == pytest.approx(
            result.best_mp
        )


class TestHistogramEdgeCases:
    def test_percentile_on_empty_is_nan(self):
        from repro.obs import Histogram

        hist = Histogram()
        for q in (0, 50, 99, 100):
            assert np.isnan(hist.percentile(q))

    def test_percentile_on_single_sample_is_that_sample(self):
        from repro.obs import Histogram

        hist = Histogram()
        hist.observe(2.5)
        for q in (0, 37, 50, 99, 100):
            assert hist.percentile(q) == pytest.approx(2.5)

    def test_merge_state_with_empty_donor_is_noop(self):
        from repro.obs import Histogram

        hist = Histogram()
        hist.observe(1.0)
        hist.merge_state(*Histogram().state())
        assert hist.count == 1
        assert hist.min == hist.max == 1.0

    def test_merge_state_into_empty_reproduces_donor(self):
        from repro.obs import Histogram

        donor = Histogram()
        for v in (3.0, 1.0, 2.0):
            donor.observe(v)
        hist = Histogram()
        hist.merge_state(*donor.state())
        assert hist.summary() == donor.summary()


class TestSpansAcrossThreads:
    def test_span_stacks_are_thread_local(self):
        import threading

        registry = MetricsRegistry()
        paths = {}

        def worker(tag):
            with span(f"outer-{tag}", registry):
                with span("inner", registry) as record:
                    paths[tag] = record.path

        with use_registry(registry):
            with span("main-span", registry):
                threads = [
                    threading.Thread(target=worker, args=(i,)) for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        # Other threads never see this thread's open spans: their paths
        # start at their own roots, not under "main-span".
        assert paths[0] == "outer-0.inner"
        assert paths[1] == "outer-1.inner"

    def test_fresh_span_stack_isolates_and_restores(self):
        from repro.obs import fresh_span_stack

        registry = MetricsRegistry()
        with span("outer", registry):
            assert current_span_path() == "outer"
            with fresh_span_stack():
                assert current_span_path() == ""
                with span("task-root", registry) as record:
                    assert record.path == "task-root"
                    assert record.depth == 0
            assert current_span_path() == "outer"


class TestNullRegistryCapsulePath:
    def test_null_registry_adopt_span_is_noop(self):
        from repro.obs import SpanRecord

        NULL_REGISTRY.adopt_span(SpanRecord(name="x", path="x", depth=0))
        assert NULL_REGISTRY.spans == []

    def test_capture_of_null_registry_is_empty(self):
        from repro.obs import TelemetryCapsule
        from repro.obs.registry import NullRegistry

        null = NullRegistry()
        null.inc("anything", 5)
        null.observe("h", 1.0)
        capsule = TelemetryCapsule.capture(null)
        assert capsule.empty

    def test_merge_into_disabled_registry_is_noop(self):
        from repro.obs import TelemetryCapsule

        donor = MetricsRegistry()
        donor.inc("detector.joint.calls", 2)
        capsule = TelemetryCapsule.capture(donor)
        disabled = MetricsRegistry()
        disabled.enabled = False
        capsule.merge_into(disabled)
        assert disabled.snapshot()["counters"] == {}
