"""Unit tests for repro.types (Rating, RatingStream, RatingDataset)."""

import numpy as np
import pytest

from repro.errors import EmptyDataError, ValidationError
from repro.types import DEFAULT_SCALE, Rating, RatingDataset, RatingScale, RatingStream


def make_stream(product_id="p1", n=5, unfair_every=0):
    times = np.arange(n, dtype=float)
    values = 4.0 - 0.1 * np.arange(n)
    raters = [f"u{i}" for i in range(n)]
    unfair = [unfair_every and i % unfair_every == 0 for i in range(n)]
    return RatingStream(product_id, times, values, raters, unfair)


class TestRatingScale:
    def test_default_scale(self):
        assert DEFAULT_SCALE.minimum == 0.0
        assert DEFAULT_SCALE.maximum == 5.0
        assert DEFAULT_SCALE.width == 5.0

    def test_contains(self):
        assert DEFAULT_SCALE.contains(0.0)
        assert DEFAULT_SCALE.contains(5.0)
        assert not DEFAULT_SCALE.contains(5.01)
        assert not DEFAULT_SCALE.contains(-0.01)

    def test_clip(self):
        out = DEFAULT_SCALE.clip(np.array([-1.0, 6.0, 3.0]))
        np.testing.assert_array_equal(out, np.array([0.0, 5.0, 3.0]))

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            RatingScale(5.0, 5.0)
        with pytest.raises(ValidationError):
            RatingScale(5.0, 1.0)


class TestRating:
    def test_fields(self):
        rating = Rating(time=1.5, rater_id="u1", product_id="p1", value=4.0)
        assert rating.unfair is False

    def test_ordering_by_time(self):
        early = Rating(time=1.0, rater_id="b", product_id="p", value=1.0)
        late = Rating(time=2.0, rater_id="a", product_id="p", value=0.0)
        assert early < late

    def test_rejects_nan_time(self):
        with pytest.raises(ValidationError):
            Rating(time=float("nan"), rater_id="u", product_id="p", value=1.0)

    def test_rejects_inf_value(self):
        with pytest.raises(ValidationError):
            Rating(time=0.0, rater_id="u", product_id="p", value=float("inf"))


class TestRatingStreamConstruction:
    def test_sorts_by_time(self):
        stream = RatingStream("p", [3.0, 1.0, 2.0], [1, 2, 3], ["a", "b", "c"])
        np.testing.assert_array_equal(stream.times, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(stream.values, [2.0, 3.0, 1.0])
        assert stream.rater_ids == ("b", "c", "a")

    def test_stable_sort_preserves_tie_order(self):
        stream = RatingStream("p", [1.0, 1.0], [5, 4], ["first", "second"])
        assert stream.rater_ids == ("first", "second")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            RatingStream("p", [1.0], [2.0, 3.0], ["a"])
        with pytest.raises(ValidationError):
            RatingStream("p", [1.0], [2.0], ["a", "b"])

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError):
            RatingStream("p", [np.nan], [1.0], ["a"])
        with pytest.raises(ValidationError):
            RatingStream("p", [0.0], [np.inf], ["a"])

    def test_arrays_are_frozen(self):
        stream = make_stream()
        with pytest.raises(ValueError):
            stream.times[0] = 99.0
        with pytest.raises(ValueError):
            stream.values[0] = 99.0

    def test_from_ratings_roundtrip(self):
        ratings = [
            Rating(time=2.0, rater_id="u2", product_id="p", value=3.0, unfair=True),
            Rating(time=1.0, rater_id="u1", product_id="p", value=4.0),
        ]
        stream = RatingStream.from_ratings("p", ratings)
        assert len(stream) == 2
        assert list(stream)[0].rater_id == "u1"
        assert list(stream)[1].unfair is True

    def test_from_ratings_rejects_wrong_product(self):
        with pytest.raises(ValidationError):
            RatingStream.from_ratings(
                "p", [Rating(time=0.0, rater_id="u", product_id="q", value=1.0)]
            )

    def test_empty_stream(self):
        stream = RatingStream.empty("p")
        assert len(stream) == 0
        with pytest.raises(EmptyDataError):
            stream.time_span()
        with pytest.raises(EmptyDataError):
            stream.mean_value()


class TestRatingStreamViews:
    def test_subset(self):
        stream = make_stream(n=4)
        sub = stream.subset(np.array([True, False, True, False]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.times, [0.0, 2.0])

    def test_subset_wrong_length(self):
        with pytest.raises(ValidationError):
            make_stream(n=3).subset(np.array([True]))

    def test_fair_unfair_split(self):
        stream = make_stream(n=6, unfair_every=2)  # indices 0,2,4 unfair
        assert len(stream.unfair_only()) == 3
        assert len(stream.fair_only()) == 3
        assert not stream.fair_only().unfair.any()
        assert stream.unfair_only().unfair.all()

    def test_between(self):
        stream = make_stream(n=10)
        window = stream.between(2.0, 5.0)
        np.testing.assert_array_equal(window.times, [2.0, 3.0, 4.0])

    def test_merge(self):
        a = make_stream(n=3)
        b = RatingStream("p1", [0.5, 1.5], [1.0, 1.0], ["x", "y"], [True, True])
        merged = a.merge(b)
        assert len(merged) == 5
        assert merged.unfair.sum() == 2
        assert np.all(np.diff(merged.times) >= 0)

    def test_merge_wrong_product_rejected(self):
        with pytest.raises(ValidationError):
            make_stream("p1").merge(make_stream("p2"))

    def test_daily_counts(self):
        stream = RatingStream("p", [0.1, 0.9, 1.5, 3.2], [1, 2, 3, 4], list("abcd"))
        days, counts = stream.daily_counts()
        np.testing.assert_array_equal(days, [0, 1, 2, 3])
        np.testing.assert_array_equal(counts, [2, 1, 0, 1])

    def test_daily_counts_with_explicit_span(self):
        stream = RatingStream("p", [1.5], [1.0], ["a"])
        days, counts = stream.daily_counts(start_day=0.0, end_day=4.0)
        np.testing.assert_array_equal(days, [0, 1, 2, 3])
        assert counts.sum() == 1

    def test_daily_counts_empty(self):
        days, counts = RatingStream.empty("p").daily_counts()
        assert days.size == 0 and counts.size == 0

    def test_rating_at(self):
        stream = make_stream(n=3)
        rating = stream.rating_at(1)
        assert rating.product_id == "p1"
        assert rating.time == 1.0


class TestRatingDataset:
    def make_dataset(self):
        return RatingDataset([make_stream("a", 3), make_stream("b", 4)])

    def test_mapping_protocol(self):
        ds = self.make_dataset()
        assert len(ds) == 2
        assert "a" in ds and "c" not in ds
        assert ds["b"].product_id == "b"
        assert ds.product_ids == ("a", "b")

    def test_duplicate_product_rejected(self):
        with pytest.raises(ValidationError):
            RatingDataset([make_stream("a"), make_stream("a")])

    def test_total_ratings(self):
        assert self.make_dataset().total_ratings() == 7

    def test_merge_adds_and_combines(self):
        ds = self.make_dataset()
        extra = {
            "a": RatingStream("a", [10.0], [1.0], ["z"], [True]),
            "c": make_stream("c", 2),
        }
        merged = ds.merge(extra)
        assert len(merged) == 3
        assert len(merged["a"]) == 4
        # original untouched
        assert len(ds["a"]) == 3

    def test_fair_only(self):
        ds = RatingDataset([make_stream("a", 6, unfair_every=2)])
        assert ds.fair_only().total_ratings() == 3

    def test_rater_ids_sorted_unique(self):
        ds = self.make_dataset()
        assert ds.rater_ids() == ("u0", "u1", "u2", "u3")

    def test_map_streams(self):
        ds = self.make_dataset()
        halved = ds.map_streams(lambda s: s.between(0.0, 2.0))
        assert halved.total_ratings() == 4
