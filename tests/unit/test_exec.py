"""Unit tests for the repro.exec execution engine."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.errors import ExecutionError, ValidationError
from repro.exec import (
    EvalTask,
    MPCache,
    ParallelEvaluator,
    PopulationEvalTask,
    RegionProbeTask,
    canonical_bytes,
    derive_seed,
    get_shared_scheme,
    share_challenge,
    stable_fingerprint,
)
from repro.marketplace.challenge import RatingChallenge
from repro.obs.registry import MetricsRegistry


# --------------------------------------------------------------------- #
# Hashing
# --------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class _Point:
    x: float
    y: int
    label: str


class TestCanonicalBytes:
    def test_covers_value_types(self):
        values = [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            float("nan"),
            "text",
            b"bytes",
            np.arange(4.0),
            (1, 2),
            [1, 2],
            {"a": 1},
            {3, 1, 2},
            _Point(1.0, 2, "p"),
        ]
        for value in values:
            assert isinstance(canonical_bytes(value), bytes)

    def test_distinct_values_distinct_encodings(self):
        pairs = [
            (0, 0.0),  # int vs float are different cache identities
            (True, 1),
            ("1", 1),
            ((1, 2), (2, 1)),
            (np.float64(1.5), np.float32(1.5).item() + 1e-9),
            (_Point(1.0, 2, "p"), _Point(1.0, 2, "q")),
        ]
        for a, b in pairs:
            assert canonical_bytes(a) != canonical_bytes(b)

    def test_set_encoding_order_independent(self):
        assert canonical_bytes({1, 2, 3}) == canonical_bytes({3, 2, 1})

    def test_dict_encoding_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes(
            {"b": 2, "a": 1}
        )

    def test_ndarray_dtype_and_shape_matter(self):
        a = np.arange(4, dtype=np.int64)
        assert canonical_bytes(a) != canonical_bytes(a.astype(np.float64))
        assert canonical_bytes(a) != canonical_bytes(a.reshape(2, 2))

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    def test_fingerprint_is_stable_hex(self):
        fp = stable_fingerprint(_Point(1.0, 2, "p"))
        assert fp == stable_fingerprint(_Point(1.0, 2, "p"))
        int(fp, 16)  # hex, safe as a filename


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1.5) == derive_seed(7, "a", 1.5)

    def test_sensitive_to_every_part(self):
        base = derive_seed(7, "a", 1.5, 0)
        assert derive_seed(8, "a", 1.5, 0) != base
        assert derive_seed(7, "b", 1.5, 0) != base
        assert derive_seed(7, "a", 1.6, 0) != base
        assert derive_seed(7, "a", 1.5, 1) != base

    def test_in_numpy_seed_range(self):
        for trial in range(20):
            seed = derive_seed(trial, "x")
            assert 0 <= seed < 2**63
            np.random.default_rng(seed)


# --------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------- #


class TestMPCache:
    def test_memory_roundtrip(self):
        cache = MPCache(registry=MetricsRegistry())
        hit, _ = cache.get("k")
        assert not hit
        cache.put("k", {"v": 1})
        hit, value = cache.get("k")
        assert hit and value == {"v": 1}

    def test_disk_roundtrip_and_metrics(self, tmp_path):
        reg = MetricsRegistry()
        cache = MPCache(cache_dir=tmp_path, registry=reg)
        cache.put("a", [1, 2, 3])
        cache.clear_memory()
        assert len(cache) == 0
        hit, value = cache.get("a")
        assert hit and value == [1, 2, 3]
        assert reg.counter_value("exec.cache.disk_hits") == 1
        assert reg.counter_value("exec.cache.puts") == 1

    def test_second_process_would_see_entry(self, tmp_path):
        MPCache(cache_dir=tmp_path, registry=MetricsRegistry()).put("a", 41)
        fresh = MPCache(cache_dir=tmp_path, registry=MetricsRegistry())
        hit, value = fresh.get("a")
        assert hit and value == 41

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        reg = MetricsRegistry()
        cache = MPCache(cache_dir=tmp_path, registry=reg)
        (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
        hit, _ = cache.get("bad")
        assert not hit
        assert reg.counter_value("exec.cache.misses") == 1
        assert reg.counter_value("exec.cache.corrupt") == 1

    def test_corrupt_entries_counted_but_warned_once(self, tmp_path):
        import logging

        reg = MetricsRegistry()
        cache = MPCache(cache_dir=tmp_path, registry=reg)
        for name in ("bad1", "bad2", "bad3"):
            (tmp_path / f"{name}.pkl").write_bytes(b"torn")
        # Listen on the module logger directly: the repro tree does not
        # propagate to root once setup_logging has run elsewhere.
        records = []
        handler = logging.Handler()
        handler.emit = records.append
        cache_logger = logging.getLogger("repro.exec.cache")
        cache_logger.addHandler(handler)
        old_level = cache_logger.level
        cache_logger.setLevel(logging.WARNING)
        try:
            for name in ("bad1", "bad2", "bad3"):
                assert cache.get(name) == (False, None)
        finally:
            cache_logger.removeHandler(handler)
            cache_logger.setLevel(old_level)
        assert reg.counter_value("exec.cache.corrupt") == 3
        warnings = [r for r in records if "unreadable" in r.getMessage()]
        assert len(warnings) == 1

    def test_missing_entry_is_not_counted_corrupt(self, tmp_path):
        reg = MetricsRegistry()
        cache = MPCache(cache_dir=tmp_path, registry=reg)
        hit, _ = cache.get("never-written")
        assert not hit
        assert reg.counter_value("exec.cache.corrupt") == 0
        assert reg.counter_value("exec.cache.misses") == 1

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = MPCache(cache_dir=tmp_path, registry=MetricsRegistry())
        for i in range(5):
            cache.put(f"k{i}", np.arange(i))
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".pkl")]
        assert leftovers == []


# --------------------------------------------------------------------- #
# Tasks
# --------------------------------------------------------------------- #


class TestTasks:
    def test_population_task_matches_direct_evaluation(self):
        from repro.experiments.context import ExperimentContext

        context = ExperimentContext(seed=13, population_size=2)
        task = PopulationEvalTask(
            root_seed=13, population_size=2, scheme_name="SA", index=1
        )
        direct = context.challenge.evaluate(
            context.population[1], context.scheme("SA"), validate=False
        )
        via_task = task.run()
        assert via_task.total == direct.total
        assert via_task.per_product == direct.per_product

    def test_tasks_pickle(self):
        task = RegionProbeTask(
            challenge_seed=3, scheme_name="SA", targets=(), bias=-2.0,
            std=0.5, trial=0, seed_root=8,
        )
        assert pickle.loads(pickle.dumps(task)) == task

    def test_fingerprint_changes_with_any_field(self):
        base = PopulationEvalTask(
            root_seed=1, population_size=2, scheme_name="SA", index=0
        )
        variants = [
            dataclasses.replace(base, root_seed=2),
            dataclasses.replace(base, scheme_name="BF"),
            dataclasses.replace(base, index=1),
        ]
        fingerprints = {base.fingerprint} | {v.fingerprint for v in variants}
        assert len(fingerprints) == 4

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValidationError):
            get_shared_scheme(("challenge", 0), "nope")

    def test_share_challenge_requires_seed(self):
        challenge = RatingChallenge(seed=4)
        share_challenge(challenge)  # reconstructible: fine
        opaque = RatingChallenge(fair_dataset=challenge.fair_dataset)
        assert opaque.seed is None
        with pytest.raises(ValidationError):
            share_challenge(opaque)

    def test_base_task_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            EvalTask().run()


# --------------------------------------------------------------------- #
# ParallelEvaluator
# --------------------------------------------------------------------- #


_CALLS = []


@dataclasses.dataclass(frozen=True)
class _SquareTask(EvalTask):
    value: int

    def run(self) -> int:
        _CALLS.append(self.value)
        return self.value**2


@dataclasses.dataclass(frozen=True)
class _BoomTask(EvalTask):
    def run(self):
        raise ValueError("boom")


class TestParallelEvaluator:
    def setup_method(self):
        _CALLS.clear()

    def test_serial_map_preserves_order(self):
        evaluator = ParallelEvaluator(workers=0, registry=MetricsRegistry())
        tasks = [_SquareTask(v) for v in (3, 1, 2)]
        assert evaluator.map(tasks) == [9, 1, 4]
        assert _CALLS == [3, 1, 2]

    def test_cache_elides_repeat_work(self):
        reg = MetricsRegistry()
        evaluator = ParallelEvaluator(
            workers=0, cache=MPCache(registry=reg), registry=reg
        )
        first = evaluator.map([_SquareTask(5)])
        second = evaluator.map([_SquareTask(5)])
        assert first == second == [25]
        assert _CALLS == [5]  # second map never re-ran the task
        assert reg.counter_value("exec.cache.hits") == 1

    def test_duplicate_tasks_in_one_map_hit_cache(self):
        evaluator = ParallelEvaluator(
            workers=0, cache=MPCache(registry=MetricsRegistry()),
            registry=MetricsRegistry(),
        )
        assert evaluator.map([_SquareTask(2)] * 3) == [4, 4, 4]
        assert _CALLS == [2]

    def test_failure_raises_execution_error(self):
        reg = MetricsRegistry()
        evaluator = ParallelEvaluator(workers=0, registry=reg)
        with pytest.raises(ExecutionError, match="boom"):
            evaluator.map([_BoomTask()])
        assert reg.counter_value("exec.failures") == 1

    def test_task_metrics_recorded(self):
        reg = MetricsRegistry()
        evaluator = ParallelEvaluator(workers=0, registry=reg)
        evaluator.map([_SquareTask(v) for v in range(4)])
        assert reg.counter_value("exec.tasks") == 4
        assert reg.histograms["exec.task_seconds"].count == 4

    def test_pool_matches_serial(self):
        tasks = [
            PopulationEvalTask(
                root_seed=13, population_size=3, scheme_name="SA", index=i
            )
            for i in range(3)
        ]
        serial = ParallelEvaluator(workers=0, registry=MetricsRegistry()).map(tasks)
        with ParallelEvaluator(workers=2, registry=MetricsRegistry()) as pooled:
            parallel = pooled.map(tasks)
        for a, b in zip(serial, parallel):
            assert a.total == b.total
            assert a.per_product == b.per_product
            assert set(a.deltas) == set(b.deltas)
            for pid in a.deltas:
                assert np.array_equal(a.deltas[pid], b.deltas[pid])

    def test_context_manager_close_keeps_serial_path_usable(self):
        evaluator = ParallelEvaluator(workers=0, registry=MetricsRegistry())
        with evaluator:
            pass
        assert evaluator.map([_SquareTask(6)]) == [36]

    def test_explicit_chunksize(self):
        reg = MetricsRegistry()
        tasks = [
            PopulationEvalTask(
                root_seed=13, population_size=3, scheme_name="SA", index=i
            )
            for i in range(3)
        ]
        with ParallelEvaluator(workers=2, registry=reg, chunksize=1) as evaluator:
            evaluator.map(tasks)
        if reg.counter_value("exec.pool_fallbacks") == 0:
            assert reg.counter_value("exec.chunks") == 3
