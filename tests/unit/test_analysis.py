"""Unit tests for the analysis modules (bias-variance, time, correlation, reporting)."""

import numpy as np
import pytest

from repro.analysis.bias_variance import (
    Region,
    SubmissionPoint,
    VarianceBiasAnalysis,
    classify_region,
    submission_bias_std,
)
from repro.analysis.correlation_exp import CorrelationExperiment, CorrelationRow
from repro.analysis.reporting import format_histogram, format_series, format_table
from repro.analysis.time_domain import TimeDomainAnalysis, TimePoint
from repro.attacks.base import AttackSubmission, build_attack_stream
from repro.errors import ValidationError
from repro.marketplace.mp import MPResult
from repro.types import RatingDataset, RatingStream


class TestClassifyRegion:
    def test_r1_large_bias_small_variance(self):
        assert classify_region(-3.5, 0.3) is Region.R1

    def test_r2_medium_bias_small_variance(self):
        assert classify_region(-1.5, 0.3) is Region.R2

    def test_r3_medium_bias_large_variance(self):
        assert classify_region(-1.5, 1.0) is Region.R3

    def test_positive_bias_other(self):
        assert classify_region(0.5, 0.3) is Region.OTHER

    def test_large_bias_large_variance_other(self):
        assert classify_region(-3.5, 1.5) is Region.OTHER

    def test_custom_splits(self):
        assert classify_region(-2.0, 0.3, bias_split=-1.5) is Region.R1


def mp_result(per_product, name="SA"):
    deltas = {pid: np.array([v]) for pid, v in per_product.items()}
    return MPResult(
        scheme_name=name,
        deltas=deltas,
        per_product=dict(per_product),
        total=float(sum(per_product.values())),
    )


def make_submission(sid, bias, std, fair_mean=4.0, n=20, product="p", duration=30.0):
    rng = np.random.default_rng(hash(sid) % 2**31)
    values = np.clip(fair_mean + bias + std * rng.standard_normal(n), 0, 5)
    # re-standardize to hit moments closely
    if n > 1 and std > 0:
        values = (values - values.mean()) / max(values.std(), 1e-9) * std
        values = np.clip(values + fair_mean + bias, 0, 5)
    times = np.linspace(1.0, 1.0 + duration, n)
    stream = build_attack_stream(product, times, values, [f"a{i}" for i in range(n)])
    return AttackSubmission(sid, {product: stream})


def fair_dataset(product="p", mean=4.0):
    times = np.linspace(0.0, 80.0, 200)
    values = np.full(200, mean)
    return RatingDataset(
        [RatingStream(product, times, values, [f"u{i}" for i in range(200)])]
    )


class TestSubmissionBiasStd:
    def test_computed_against_fair_mean(self):
        submission = make_submission("s", bias=-2.0, std=0.0)
        bias, std = submission_bias_std(submission, fair_dataset(), "p")
        assert bias == pytest.approx(-2.0, abs=0.05)
        assert std == pytest.approx(0.0, abs=0.05)

    def test_none_for_unattacked_product(self):
        submission = make_submission("s", -1.0, 0.5)
        assert submission_bias_std(submission, fair_dataset("q", 4.0), "q") is None


class TestVarianceBiasAnalysis:
    def build(self, n=25):
        submissions = []
        results = {}
        rng = np.random.default_rng(0)
        for i in range(n):
            bias = float(rng.uniform(-4.0, 0.0))
            std = float(rng.uniform(0.0, 1.2))
            sid = f"s{i}"
            submissions.append(make_submission(sid, bias, std))
            # MP correlated with |bias| so winners are the large-bias ones.
            results[sid] = mp_result({"p": abs(bias) + 0.01 * i})
        return submissions, results

    def test_points_built_with_marks(self):
        submissions, results = self.build()
        analysis = VarianceBiasAnalysis(top_n=5)
        points = analysis.build_points(submissions, results, fair_dataset(), "p")
        assert len(points) == 25
        amp = [p for p in points if "AMP" in p.marks]
        lmp = [p for p in points if "LMP" in p.marks]
        assert len(amp) == 5
        assert len(lmp) == 5

    def test_winners_follow_mp(self):
        submissions, results = self.build()
        analysis = VarianceBiasAnalysis(top_n=5)
        points = analysis.build_points(submissions, results, fair_dataset(), "p")
        winners = {p.submission_id for p in points if "LMP" in p.marks}
        expected = {
            s.submission_id
            for s in sorted(submissions, key=lambda s: -results[s.submission_id].total)[:5]
        }
        assert winners == expected

    def test_color_legend(self):
        point = SubmissionPoint("s", "x", -1.0, 0.5, 1.0, 1.0, marks={"AMP", "LMP"})
        assert point.color == "red"
        point.marks = {"AMP", "UMP"}
        assert point.color == "blue"
        point.marks = {"AMP"}
        assert point.color == "green"
        point.marks = {"LMP"}
        assert point.color == "pink"
        point.marks = {"UMP"}
        assert point.color == "cyan"
        point.marks = set()
        assert point.color == "grey"

    def test_missing_result_rejected(self):
        submissions, results = self.build(3)
        del results["s0"]
        with pytest.raises(ValidationError):
            VarianceBiasAnalysis().build_points(
                submissions, results, fair_dataset(), "p"
            )

    def test_region_counts_and_dominant(self):
        submissions, results = self.build()
        analysis = VarianceBiasAnalysis(top_n=8)
        points = analysis.build_points(submissions, results, fair_dataset(), "p")
        counts = analysis.winner_region_counts(points)
        assert sum(counts.values()) == 8
        assert analysis.dominant_winner_region(points) is not None

    def test_mean_winner_point(self):
        submissions, results = self.build()
        analysis = VarianceBiasAnalysis(top_n=5)
        points = analysis.build_points(submissions, results, fair_dataset(), "p")
        centroid = analysis.mean_winner_point(points)
        assert centroid is not None
        assert -4.0 <= centroid[0] <= 0.0


class TestTimeDomainAnalysis:
    def build_points(self):
        # MP peaks at interval 3 days.
        points = []
        for i, interval in enumerate(np.linspace(0.5, 10.0, 30)):
            mp = float(np.exp(-((interval - 3.0) ** 2) / 2.0))
            points.append(TimePoint(f"s{i}", "x", float(interval), mp))
        return points

    def test_envelope_and_best_interval(self):
        analysis = TimeDomainAnalysis(n_bins=10, max_interval=10.0)
        best = analysis.best_interval(self.build_points())
        assert best == pytest.approx(3.0, abs=1.0)

    def test_interior_optimum_detected(self):
        analysis = TimeDomainAnalysis(n_bins=10, max_interval=10.0)
        assert analysis.is_interior_optimum(self.build_points())

    def test_monotone_curve_not_interior(self):
        points = [
            TimePoint(f"s{i}", "x", float(i + 0.5), float(10 - i)) for i in range(10)
        ]
        analysis = TimeDomainAnalysis(n_bins=5, max_interval=10.0)
        assert not analysis.is_interior_optimum(points)

    def test_build_points_from_submissions(self):
        submission = make_submission("s0", -2.0, 0.5, duration=30.0, n=16)
        results = {"s0": mp_result({"p": 1.0})}
        analysis = TimeDomainAnalysis()
        points = analysis.build_points([submission], results, "p")
        assert len(points) == 1
        assert points[0].average_interval == pytest.approx(30.0 / 16)

    def test_empty_points_rejected(self):
        with pytest.raises(ValidationError):
            TimeDomainAnalysis().binned_envelope([])

    def test_invalid_bins(self):
        with pytest.raises(ValidationError):
            TimeDomainAnalysis(n_bins=1)


class TestCorrelationRow:
    def test_random_mean_and_wins(self):
        row = CorrelationRow("s", 1.0, 1.2, (0.9, 1.1))
        assert row.random_mean == pytest.approx(1.0)
        assert row.heuristic_wins

    def test_loss(self):
        row = CorrelationRow("s", 1.0, 0.8, (0.9,))
        assert not row.heuristic_wins


class TestCorrelationExperimentHelpers:
    def test_select_top(self):
        submissions = [make_submission(f"s{i}", -1.0, 0.2) for i in range(5)]
        results = {f"s{i}": mp_result({"p": float(i)}) for i in range(5)}
        experiment = CorrelationExperiment(top_n=2)
        top = experiment.select_top(submissions, results)
        assert [s.submission_id for s in top] == ["s4", "s3"]

    def test_win_fraction(self):
        rows = [
            CorrelationRow("a", 1.0, 1.5, (1.0,)),
            CorrelationRow("b", 1.0, 0.5, (1.0,)),
        ]
        assert CorrelationExperiment.heuristic_win_fraction(rows) == 0.5

    def test_win_fraction_empty_rejected(self):
        with pytest.raises(ValidationError):
            CorrelationExperiment.heuristic_win_fraction([])

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            CorrelationExperiment(top_n=0)
        with pytest.raises(ValidationError):
            CorrelationExperiment(random_shuffles=0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [10, 0.123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert "0.123" in lines[3]

    def test_format_table_nan_dash(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_format_table_bool(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series("curve", [1.0, 2.0], [0.1, 0.2])
        assert "curve" in text
        assert text.count("\n") == 4

    def test_format_series_mismatch(self):
        with pytest.raises(ValidationError):
            format_series("c", [1.0], [0.1, 0.2])

    def test_format_histogram(self):
        text = format_histogram("h", ["a", "bb"], [2, 4], width=8)
        assert "####" in text

    def test_format_histogram_mismatch(self):
        with pytest.raises(ValidationError):
            format_histogram("h", ["a"], [1, 2])

    def test_format_histogram_all_zero(self):
        text = format_histogram("h", ["a"], [0])
        assert "0" in text
