"""Unit tests for the defender-side metrics."""

import numpy as np
import pytest

from repro.aggregation import SimpleAveragingScheme
from repro.detectors import JointDetector
from repro.errors import EmptyDataError, ValidationError
from repro.marketplace.metrics import (
    DetectionQuality,
    detection_quality,
    score_fidelity,
)
from repro.marketplace.product import Product
from repro.types import RatingDataset, RatingStream


def quality_products():
    return [Product("a", "A", 4.0), Product("b", "B", 3.0)]


def clean_dataset(mean_a=4.0, mean_b=3.0):
    streams = []
    for pid, mean in (("a", mean_a), ("b", mean_b)):
        times = np.linspace(0.0, 89.0, 180)
        values = np.full(180, mean)
        streams.append(
            RatingStream(pid, times, values, [f"{pid}{i}" for i in range(180)])
        )
    return RatingDataset(streams)


class TestScoreFidelity:
    def test_perfect_scores(self):
        fidelity = score_fidelity(
            SimpleAveragingScheme(), clean_dataset(), quality_products(),
            start_day=0.0, end_day=90.0,
        )
        assert fidelity.rmse == pytest.approx(0.0)
        assert fidelity.mae == pytest.approx(0.0)
        assert fidelity.n_scores == 6

    def test_biased_scores_measured(self):
        fidelity = score_fidelity(
            SimpleAveragingScheme(), clean_dataset(mean_a=4.5),
            quality_products(), start_day=0.0, end_day=90.0,
        )
        assert fidelity.rmse == pytest.approx(np.sqrt(0.25 / 2))
        assert fidelity.worst_product == "a"
        assert fidelity.worst_error == pytest.approx(0.5)

    def test_unknown_product_rejected(self):
        with pytest.raises(ValidationError):
            score_fidelity(
                SimpleAveragingScheme(), clean_dataset(),
                [Product("a", "A", 4.0)], start_day=0.0, end_day=90.0,
            )

    def test_no_scores_rejected(self):
        empty = RatingDataset([RatingStream.empty("a"), RatingStream.empty("b")])
        with pytest.raises(EmptyDataError):
            score_fidelity(
                SimpleAveragingScheme(), empty, quality_products(),
                start_day=0.0, end_day=90.0,
            )


class TestDetectionQuality:
    def test_properties(self):
        quality = DetectionQuality(
            true_positives=8, false_positives=2,
            false_negatives=2, true_negatives=88,
        )
        assert quality.precision == pytest.approx(0.8)
        assert quality.recall == pytest.approx(0.8)
        assert quality.false_alarm_rate == pytest.approx(2.0 / 90.0)
        assert quality.f1 == pytest.approx(0.8)

    def test_degenerate_cases(self):
        nothing = DetectionQuality(0, 0, 0, 100)
        assert nothing.precision == 1.0
        assert nothing.recall == 1.0
        assert nothing.false_alarm_rate == 0.0

    def test_pooling_with_explicit_marks(self):
        dataset = clean_dataset()
        marks = {
            "a": np.zeros(180, dtype=bool),
            "b": np.zeros(180, dtype=bool),
        }
        marks["a"][:5] = True
        quality = detection_quality(None, dataset, marks=marks)
        assert quality.false_positives == 5
        assert quality.true_negatives == 355

    def test_misaligned_marks_rejected(self):
        dataset = clean_dataset()
        with pytest.raises(ValidationError):
            detection_quality(
                None, dataset,
                marks={"a": np.zeros(3, bool), "b": np.zeros(180, bool)},
            )

    def test_with_real_detector_and_attack(self):
        from repro.marketplace import RatingChallenge
        from repro.attacks import AttackGenerator, AttackSpec, ProductTarget, UniformWindow

        challenge = RatingChallenge(seed=17)
        generator = AttackGenerator(
            challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=17
        )
        submission = generator.generate(
            [ProductTarget("tv1", -1)],
            AttackSpec(3.0, 0.2, 50, UniformWindow(30.0, 20.0)),
        )
        attacked = challenge.attacked_dataset(submission)
        quality = detection_quality(JointDetector(), attacked)
        assert quality.recall > 0.8
        assert quality.precision > 0.8
        assert quality.false_alarm_rate < 0.01
