"""Unit tests for the assumption drift monitors (repro.obs.drift)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry
from repro.obs.drift import (
    DriftMonitor,
    DriftMonitorConfig,
    arrival_dispersion,
    chi2_quantile,
    ljung_box_statistic,
)
from repro.types import RatingDataset, RatingStream


def poisson_stream(seed=0, days=60.0, rate=5.0, mean=4.0, product="p"):
    rng = np.random.default_rng(seed)
    n = rng.poisson(rate * days)
    times = np.sort(rng.uniform(0.0, days, n))
    values = np.clip(rng.normal(mean, 0.6, n), 0, 5)
    return RatingStream(product, times, values, [f"u{i}" for i in range(n)])


class TestStatistics:
    def test_dispersion_near_one_for_poisson_counts(self):
        rng = np.random.default_rng(3)
        counts = rng.poisson(5.0, 2000)
        assert arrival_dispersion(counts) == pytest.approx(1.0, abs=0.15)

    def test_dispersion_high_for_bursts(self):
        counts = np.zeros(30)
        counts[15] = 90  # everything lands on one day
        assert arrival_dispersion(counts) > 3.0

    def test_dispersion_low_for_scripted_arrivals(self):
        assert arrival_dispersion(np.full(30, 4)) == 0.0

    def test_dispersion_empty_is_nan(self):
        assert np.isnan(arrival_dispersion(np.array([])))
        assert np.isnan(arrival_dispersion(np.zeros(10)))

    def test_ljung_box_small_for_white_noise(self):
        rng = np.random.default_rng(5)
        q = ljung_box_statistic(rng.normal(0, 1, 500), lags=8)
        assert q < chi2_quantile(8, 0.999)

    def test_ljung_box_large_for_autocorrelated_series(self):
        # A slow sine sweep is maximally non-white.
        t = np.linspace(0, 8 * np.pi, 400)
        q = ljung_box_statistic(np.sin(t), lags=8)
        assert q > chi2_quantile(8, 0.999)

    def test_ljung_box_short_or_constant_is_nan(self):
        assert np.isnan(ljung_box_statistic(np.ones(5), lags=8))
        assert np.isnan(ljung_box_statistic(np.full(100, 2.5), lags=8))

    def test_ljung_box_rejects_bad_lags(self):
        with pytest.raises(ValidationError):
            ljung_box_statistic(np.ones(100), lags=0)

    def test_chi2_quantile_close_to_tabulated(self):
        # Reference values: chi2.ppf from scipy (not a dependency here).
        assert chi2_quantile(8, 0.99) == pytest.approx(20.09, rel=0.02)
        assert chi2_quantile(8, 0.999) == pytest.approx(26.12, rel=0.02)
        assert chi2_quantile(1, 0.95) == pytest.approx(3.84, rel=0.05)

    def test_chi2_quantile_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            chi2_quantile(0, 0.99)
        with pytest.raises(ValidationError):
            chi2_quantile(8, 1.0)


class TestDriftMonitorConfig:
    def test_defaults_validate(self):
        config = DriftMonitorConfig()
        assert config.whiteness_threshold > 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValidationError):
            DriftMonitorConfig(dispersion_low=2.0, dispersion_high=1.0)
        with pytest.raises(ValidationError):
            DriftMonitorConfig(min_ratings=0)
        with pytest.raises(ValidationError):
            DriftMonitorConfig(mean_drift_threshold=0.0)


class TestDriftMonitor:
    def test_fair_poisson_stream_stays_silent(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(registry=registry)
        stream = poisson_stream(seed=1)
        warnings = monitor.check_stream(stream, 0.0, 60.0)
        assert warnings == []
        assert registry.counter_value("drift.checks") == 1
        assert registry.counter_value("drift.warnings") == 0

    def test_burst_trips_arrival_dispersion(self):
        base = poisson_stream(seed=2)
        n = 60
        burst = RatingStream(
            "p",
            np.sort(np.random.default_rng(9).uniform(30.0, 30.5, n)),
            np.full(n, 4.0),
            [f"b{i}" for i in range(n)],
        )
        monitor = DriftMonitor()
        monitor.calibrate(RatingDataset([base]))
        kinds = {
            w.kind for w in monitor.check_stream(base.merge(burst), 0.0, 60.0)
        }
        assert "arrival-dispersion" in kinds

    def test_mean_shift_trips_mean_drift(self):
        monitor = DriftMonitor(
            config=DriftMonitorConfig(fair_mean=4.0)
        )
        shifted = poisson_stream(seed=3, mean=2.5)
        kinds = {w.kind for w in monitor.check_stream(shifted, 0.0, 60.0)}
        assert "mean-drift" in kinds

    def test_oscillation_trips_residual_whiteness(self):
        rng = np.random.default_rng(4)
        n = 300
        times = np.sort(rng.uniform(0.0, 60.0, n))
        values = 4.0 + 1.0 * np.sin(times / 3.0)
        stream = RatingStream("p", times, values, [f"u{i}" for i in range(n)])
        monitor = DriftMonitor(config=DriftMonitorConfig(fair_mean=4.0))
        kinds = {w.kind for w in monitor.check_stream(stream, 0.0, 60.0)}
        assert "residual-whiteness" in kinds

    def test_below_min_ratings_skips_silently(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(registry=registry)
        tiny = RatingStream("p", [1.0, 2.0], [4.0, 4.0], ["a", "b"])
        assert monitor.check_stream(tiny, 0.0, 60.0) == []
        assert registry.counter_value("drift.checks") == 0

    def test_self_calibration_on_first_window(self):
        monitor = DriftMonitor()
        assert monitor.fair_mean is None
        monitor.check_stream(poisson_stream(seed=6), 0.0, 60.0)
        assert monitor.fair_mean == pytest.approx(4.0, abs=0.3)

    def test_calibrate_sets_fair_mean_from_dataset(self):
        monitor = DriftMonitor()
        monitor.calibrate(RatingDataset([poisson_stream(seed=7)]))
        assert monitor.fair_mean == pytest.approx(4.0, abs=0.3)

    def test_violation_counters_per_kind(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(
            config=DriftMonitorConfig(fair_mean=4.0), registry=registry
        )
        monitor.check_stream(poisson_stream(seed=8, mean=2.0), 0.0, 60.0)
        assert registry.counter_value("drift.mean.violations") >= 1
        assert registry.counter_value("drift.warnings") >= 1

    def test_check_epoch_covers_every_product(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(
            config=DriftMonitorConfig(fair_mean=4.0), registry=registry
        )
        dataset = RatingDataset(
            [poisson_stream(seed=9, product="a"),
             poisson_stream(seed=10, product="b")]
        )
        monitor.check_epoch(dataset, 0.0, 60.0)
        assert registry.counter_value("drift.checks") == 2

    def test_warning_str_is_informative(self):
        monitor = DriftMonitor(config=DriftMonitorConfig(fair_mean=4.0))
        warnings = monitor.check_stream(
            poisson_stream(seed=11, mean=2.0), 0.0, 60.0
        )
        text = str(warnings[0])
        assert "mean-drift" in text and "days [0.0, 60.0)" in text


class TestSeededFairWorldsStaySilent:
    """The calibrated thresholds must not cry wolf on the fair worlds."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_fair_challenge_world_produces_no_warnings(self, seed):
        from repro.marketplace.challenge import RatingChallenge

        challenge = RatingChallenge(seed=seed)
        monitor = DriftMonitor()
        monitor.calibrate(challenge.fair_dataset)
        warnings = []
        start = challenge.start_day
        while start < challenge.end_day:
            stop = min(start + 30.0, challenge.end_day)
            warnings.extend(
                monitor.check_epoch(challenge.fair_dataset, start, stop)
            )
            start = stop
        assert warnings == []


class TestOnlineIntegration:
    def test_epoch_report_carries_drift_warnings(self):
        from repro.aggregation import SimpleAveragingScheme
        from repro.online import OnlineRatingSystem
        from repro.types import Rating

        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        rng = np.random.default_rng(13)
        # One normal epoch, then a bursty low-value epoch on the product.
        for i, day in enumerate(np.sort(rng.uniform(0.0, 30.0, 80))):
            system.submit(Rating(
                time=float(day), rater_id=f"u{i}", product_id="p",
                value=float(np.clip(rng.normal(4, 0.6), 0, 5)),
            ))
        first = system.close_epoch()
        assert first.drift_warnings == ()
        assert first.telemetry["drift_warnings"] == 0.0
        for i, day in enumerate(np.sort(rng.uniform(44.8, 45.2, 120))):
            system.submit(Rating(
                time=float(day), rater_id=f"b{i}", product_id="p", value=1.0,
            ))
        second = system.close_epoch()
        kinds = {w.kind for w in second.drift_warnings}
        assert kinds & {
            "arrival-dispersion", "residual-whiteness", "mean-drift"
        }
        assert second.telemetry["drift_warnings"] == float(
            len(second.drift_warnings)
        )

    def test_monitor_can_be_disabled(self):
        from repro.aggregation import SimpleAveragingScheme
        from repro.online import OnlineRatingSystem
        from repro.types import Rating

        system = OnlineRatingSystem(
            SimpleAveragingScheme(), monitor_drift=False
        )
        for i in range(40):
            system.submit(Rating(
                time=float(i % 30), rater_id=f"u{i}", product_id="p",
                value=4.0,
            ))
        report = system.close_epoch()
        assert report.drift_warnings == ()
        assert system.drift_monitor is None
