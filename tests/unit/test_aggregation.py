"""Unit tests for the aggregation schemes (SA, Eq. 7, BF, P)."""

import numpy as np
import pytest

from repro.aggregation.base import dataset_fingerprint, month_windows
from repro.aggregation.beta_filter import BetaFilterConfig, BetaFilterScheme
from repro.aggregation.pscheme import PScheme, PSchemeConfig
from repro.aggregation.simple import SimpleAveragingScheme
from repro.aggregation.weighted import trust_weighted_average
from repro.errors import EmptyDataError, ValidationError
from repro.types import RatingDataset, RatingStream


def constant_dataset(value=4.0, n_per_day=2, days=90):
    times = np.repeat(np.arange(days, dtype=float), n_per_day) + 0.5
    values = np.full(times.size, value)
    raters = [f"u{i}" for i in range(times.size)]
    return RatingDataset([RatingStream("p", times, values, raters)])


class TestMonthWindows:
    def test_windows_cover_span(self):
        windows = month_windows(0.0, 90.0)
        assert windows == [(0.0, 30.0), (30.0, 60.0), (60.0, 90.0)]

    def test_partial_final_window(self):
        windows = month_windows(0.0, 82.0)
        assert len(windows) == 3
        assert windows[-1] == (60.0, 90.0)


class TestTrustWeightedAverage:
    def test_equal_trust_is_plain_mean(self):
        assert trust_weighted_average([1.0, 3.0], [0.8, 0.8]) == pytest.approx(2.0)

    def test_neutral_raters_excluded(self):
        # Rater at 0.5 has zero weight.
        assert trust_weighted_average([0.0, 4.0], [0.5, 0.9]) == pytest.approx(4.0)

    def test_below_neutral_excluded(self):
        assert trust_weighted_average([0.0, 4.0], [0.1, 0.9]) == pytest.approx(4.0)

    def test_all_neutral_falls_back_to_mean(self):
        assert trust_weighted_average([1.0, 3.0], [0.5, 0.5]) == pytest.approx(2.0)

    def test_weighting_formula(self):
        # weights: max(0.9-0.5,0)=0.4 and max(0.6-0.5,0)=0.1
        expected = (5.0 * 0.4 + 0.0 * 0.1) / 0.5
        assert trust_weighted_average([5.0, 0.0], [0.9, 0.6]) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            trust_weighted_average([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            trust_weighted_average([1.0], [0.5, 0.5])

    def test_invalid_trust_rejected(self):
        with pytest.raises(ValidationError):
            trust_weighted_average([1.0], [1.5])


class TestSimpleAveraging:
    def test_monthly_means(self):
        ds = constant_dataset(4.0)
        scores = SimpleAveragingScheme().monthly_scores(ds, 30.0, 0.0, 90.0)
        np.testing.assert_allclose(scores["p"], 4.0)

    def test_empty_month_is_nan(self):
        times = np.linspace(0.0, 25.0, 20)
        ds = RatingDataset(
            [RatingStream("p", times, np.full(20, 3.0), [f"u{i}" for i in range(20)])]
        )
        scores = SimpleAveragingScheme().monthly_scores(ds, 30.0, 0.0, 90.0)
        assert scores["p"][0] == pytest.approx(3.0)
        assert np.isnan(scores["p"][1]) and np.isnan(scores["p"][2])

    def test_final_scores_helper(self):
        ds = constant_dataset(4.0)
        finals = SimpleAveragingScheme().final_scores(ds, 30.0, 0.0, 90.0)
        assert finals["p"] == pytest.approx(4.0)


class TestBetaFilterScheme:
    def test_extreme_minority_filtered(self):
        # 40 honest ratings at 4.0 plus 4 zeros: zeros are incompatible.
        values = np.concatenate([np.full(40, 4.0), np.zeros(4)])
        keep = BetaFilterScheme().filter_window(values)
        assert keep[:40].all()
        assert not keep[40:].any()

    def test_moderate_values_survive(self):
        # Value 2.0 on a 4.0 majority is within a single rating's beta CI.
        values = np.concatenate([np.full(40, 4.0), np.full(5, 2.0)])
        keep = BetaFilterScheme().filter_window(values)
        assert keep.all()

    def test_large_colluding_block_shields_itself(self):
        # Half the window at 0 drags the mean majority down far enough
        # that the filter passes them: the paper's majority-rule failure.
        values = np.concatenate([np.full(30, 4.0), np.zeros(30)])
        keep = BetaFilterScheme().filter_window(values)
        assert keep[30:].all()

    def test_single_rating_never_filtered(self):
        assert BetaFilterScheme().filter_window(np.array([0.0])).all()

    def test_monthly_scores_filter_attack(self):
        ds = constant_dataset(4.0)
        n = 10
        attack = RatingStream(
            "p", np.linspace(35.0, 55.0, n), np.zeros(n),
            [f"atk{i}" for i in range(n)], unfair=np.ones(n, bool),
        )
        attacked = ds.merge({"p": attack})
        bf = BetaFilterScheme()
        scores = bf.monthly_scores(attacked, 30.0, 0.0, 90.0)
        sa = SimpleAveragingScheme().monthly_scores(attacked, 30.0, 0.0, 90.0)
        # BF's month-2 score is closer to the fair 4.0 than SA's.
        assert abs(scores["p"][1] - 4.0) < abs(sa["p"][1] - 4.0)

    def test_repeatedly_filtered_rater_excluded(self):
        config = BetaFilterConfig(exclude_trust_threshold=0.45)
        bf = BetaFilterScheme(config)
        # "eve" gets filtered in months 1 and 2 (extreme zero each time);
        # by month 3 her trust (1/4 after two filtered-only months) is
        # below the exclusion threshold.
        streams = []
        times, values, raters = [], [], []
        for month in range(3):
            base = 30.0 * month
            for i in range(30):
                times.append(base + 1.0 + i * 0.5)
                values.append(4.0)
                raters.append(f"u{month}_{i}")
            times.append(base + 20.0)
            values.append(0.0)
            raters.append("eve")
        streams.append(RatingStream("p", times, values, raters))
        ds = RatingDataset(streams)
        scores = bf.monthly_scores(ds, 30.0, 0.0, 90.0)
        assert np.all(np.isfinite(scores["p"]))

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            BetaFilterConfig(quantile=0.0)
        with pytest.raises(ValidationError):
            BetaFilterConfig(max_iterations=0)
        with pytest.raises(ValidationError):
            BetaFilterConfig(exclude_trust_threshold=1.5)


class TestPScheme:
    def test_fair_data_scores_match_simple_mean(self):
        # With no attack and no detections, Eq. 7 reduces to a weighted
        # mean over uniformly-trusted raters ~= plain mean.
        ds = constant_dataset(4.0)
        p_scores = PScheme().monthly_scores(ds, 30.0, 0.0, 90.0)
        np.testing.assert_allclose(p_scores["p"], 4.0)

    def test_cache_returns_equal_results(self):
        ds = constant_dataset(4.0)
        scheme = PScheme()
        first = scheme.monthly_scores(ds, 30.0, 0.0, 90.0)
        second = scheme.monthly_scores(ds, 30.0, 0.0, 90.0)
        np.testing.assert_array_equal(first["p"], second["p"])

    def test_cache_disabled(self):
        scheme = PScheme(PSchemeConfig(cache_size=0))
        ds = constant_dataset(4.0)
        scores = scheme.monthly_scores(ds, 30.0, 0.0, 90.0)
        assert np.isfinite(scores["p"]).all()

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            PSchemeConfig(initial_trust=1.0)
        with pytest.raises(ValidationError):
            PSchemeConfig(filter_trust_threshold=-0.1)
        with pytest.raises(ValidationError):
            PSchemeConfig(cache_size=-1)

    def test_name(self):
        assert PScheme().name == "P"
        assert SimpleAveragingScheme().name == "SA"
        assert BetaFilterScheme().name == "BF"


class TestDatasetFingerprint:
    def test_identical_data_same_fingerprint(self):
        assert dataset_fingerprint(constant_dataset()) == dataset_fingerprint(
            constant_dataset()
        )

    def test_value_change_changes_fingerprint(self):
        assert dataset_fingerprint(constant_dataset(4.0)) != dataset_fingerprint(
            constant_dataset(3.9)
        )
