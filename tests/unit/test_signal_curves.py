"""Unit tests for indicator-curve construction."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.signal.curves import (
    arrival_rate_curve,
    histogram_change_curve,
    mean_change_curve_by_count,
    mean_change_curve_by_time,
    model_error_curve,
)


def step_series(n=100, change_at=50, low=4.0, high=1.0):
    """Times 0..n-1, values stepping from low to high at change_at."""
    times = np.arange(n, dtype=float)
    values = np.where(times < change_at, low, high)
    return times, values


class TestMeanChangeCurveByCount:
    def test_peak_at_change_point(self):
        times, values = step_series()
        curve = mean_change_curve_by_count(times, values, half_width=10)
        peak_index = curve.indices[int(np.argmax(curve.values))]
        assert peak_index == 50

    def test_flat_series_is_zero(self):
        times = np.arange(30, dtype=float)
        curve = mean_change_curve_by_count(times, np.full(30, 4.0), 5)
        np.testing.assert_allclose(curve.values, 0.0)

    def test_short_series_empty_curve(self):
        curve = mean_change_curve_by_count(np.array([0.0]), np.array([4.0]), 5)
        assert curve.is_empty

    def test_curve_arrays_aligned(self):
        times, values = step_series(40)
        curve = mean_change_curve_by_count(times, values, 8)
        assert len(curve.times) == len(curve.values) == len(curve.indices)


class TestMeanChangeCurveByTime:
    def test_peak_near_change_point(self):
        times, values = step_series(200, change_at=100)
        curve = mean_change_curve_by_time(times, values, window_days=40.0)
        peak_time = curve.times[int(np.argmax(curve.values))]
        assert 95 <= peak_time <= 105

    def test_zero_where_half_empty(self):
        # The first rating has no earlier ratings in its window half.
        times, values = step_series(50)
        curve = mean_change_curve_by_time(times, values, 10.0)
        assert curve.values[0] == 0.0

    def test_statistic_magnitude_balanced(self):
        # Step of 3.0 with ~20 ratings per half: stat ~ 2*(10)*(9) = 180.
        times, values = step_series(200, change_at=100, low=4.0, high=1.0)
        curve = mean_change_curve_by_time(times, values, 40.0)
        assert curve.max_value() == pytest.approx(2 * 10 * 9.0, rel=0.1)

    def test_empty_and_single(self):
        assert mean_change_curve_by_time(np.array([]), np.array([]), 5.0).is_empty
        assert mean_change_curve_by_time(np.array([1.0]), np.array([4.0]), 5.0).is_empty


class TestArrivalRateCurve:
    def test_peak_at_rate_change(self):
        counts = np.concatenate([np.full(40, 2.0), np.full(40, 10.0)])
        days = np.arange(80, dtype=float)
        curve = arrival_rate_curve(days, counts, 15)
        peak_day = curve.times[int(np.argmax(curve.values))]
        assert 38 <= peak_day <= 42

    def test_constant_rate_near_zero(self):
        days = np.arange(60, dtype=float)
        curve = arrival_rate_curve(days, np.full(60, 5.0), 15)
        np.testing.assert_allclose(curve.values, 0.0, atol=1e-9)

    def test_total_llr_vs_per_day(self):
        counts = np.concatenate([np.full(30, 2.0), np.full(30, 8.0)])
        days = np.arange(60, dtype=float)
        total = arrival_rate_curve(days, counts, 15, total_llr=True)
        per_day = arrival_rate_curve(days, counts, 15, total_llr=False)
        # At the exact centre, windows are full (30 days): ratio 30.
        c = 30
        i = int(np.where(total.indices == c)[0][0])
        assert total.values[i] == pytest.approx(30 * per_day.values[i])

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValidationError):
            arrival_rate_curve(np.arange(5.0), np.ones(4), 2)

    def test_kind_label(self):
        days = np.arange(10, dtype=float)
        curve = arrival_rate_curve(days, np.ones(10), 3, kind="L-ARC")
        assert curve.kind == "L-ARC"


class TestHistogramChangeCurve:
    def test_balanced_bimodal_high(self):
        times = np.arange(40, dtype=float)
        values = np.array([4.5, 0.5] * 20)
        curve = histogram_change_curve(times, values, 40)
        assert curve.values[0] == pytest.approx(1.0)

    def test_unimodal_low(self):
        rng = np.random.default_rng(3)
        times = np.arange(60, dtype=float)
        values = np.clip(rng.normal(4.0, 0.3, 60), 0, 5)
        curve = histogram_change_curve(times, values, 40)
        assert curve.max_value() < 0.8

    def test_window_too_large_empty(self):
        curve = histogram_change_curve(np.arange(5.0), np.ones(5), 40)
        assert curve.is_empty

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(4)
        times = np.arange(100, dtype=float)
        values = rng.uniform(0, 5, 100)
        curve = histogram_change_curve(times, values, 20)
        assert np.all(curve.values >= 0.0) and np.all(curve.values <= 1.0)


class TestModelErrorCurve:
    def test_noise_window_high_error(self):
        rng = np.random.default_rng(5)
        times = np.arange(120, dtype=float)
        values = rng.normal(4, 0.5, 120)
        curve = model_error_curve(times, values, 40, order=4)
        assert float(np.median(curve.values)) > 0.5

    def test_deterministic_signal_low_error(self):
        times = np.arange(120, dtype=float)
        values = 3.0 + np.sin(0.4 * times)
        curve = model_error_curve(times, values, 40, order=4)
        assert curve.values.min() < 1e-8

    def test_window_smaller_than_order_rejected(self):
        with pytest.raises(ValidationError):
            model_error_curve(np.arange(50.0), np.ones(50), 6, order=4)

    def test_short_series_empty(self):
        curve = model_error_curve(np.arange(10.0), np.ones(10), 40, order=4)
        assert curve.is_empty


class TestCurveHelpers:
    def test_above_below(self):
        times, values = step_series(60, 30)
        curve = mean_change_curve_by_count(times, values, 10)
        assert curve.above(curve.max_value() - 1e-9).sum() >= 1
        assert curve.below(0.0).sum() == 0

    def test_misaligned_curve_arrays_rejected(self):
        from repro.signal.curves import Curve

        with pytest.raises(ValidationError):
            Curve(
                kind="MC",
                times=np.array([1.0, 2.0]),
                indices=np.array([1]),
                values=np.array([0.5, 0.7]),
            )
