"""repro.lint.graph: summary extraction, linking, and the analysis store.

The whole-program rules are only as good as the graph under them, so
this suite pins the graph layer directly: what one module's summary
records (calls, taint verdicts, writes, clock reads, span facts), that
summaries survive the JSON round-trip the cache depends on, and how the
linker binds names across modules -- imports, package re-exports,
annotation- and constructor-driven method binding, subclass fan-out,
and the unique-name fallback for dynamic dispatch.
"""

import json
import textwrap
from pathlib import Path

from repro.lint.core import ModuleSource, walk_python_files
from repro.lint.graph import (
    ModuleSummary,
    build_program,
    extract_summary,
    module_name_for,
)
from repro.lint.store import AnalysisStore, content_digest


def write_tree(tmp_path, files):
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return tmp_path


def parse_one(tmp_path, source, filename="mod.py"):
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return ModuleSource.parse(target.as_posix(), target.read_text())


def build(tmp_path, files):
    write_tree(tmp_path, files)
    summaries = []
    for path in walk_python_files([str(tmp_path)]):
        module = ModuleSource.parse(path.as_posix(), path.read_text())
        summaries.append(extract_summary(module))
    return build_program(summaries)


def fn(program, name):
    (fid,) = program.find_functions(name)
    return program.functions[fid]


class TestModuleNaming:
    def test_package_climb(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sub/__init__.py": "",
            "pkg/sub/mod.py": "",
        })
        assert module_name_for(tmp_path / "pkg/sub/mod.py") == "pkg.sub.mod"
        assert module_name_for(tmp_path / "pkg/sub/__init__.py") == "pkg.sub"

    def test_bare_file_keeps_stem(self, tmp_path):
        write_tree(tmp_path, {"loose.py": ""})
        assert module_name_for(tmp_path / "loose.py") == "loose"


class TestExtraction:
    def test_rng_sites_classify_seeding_and_taint(self, tmp_path):
        module = parse_one(tmp_path, """
            import numpy as np

            def unseeded():
                return np.random.default_rng()

            def constant():
                return np.random.default_rng(42)

            def plumbed(seed):
                return np.random.default_rng(seed)
        """)
        summary = extract_summary(module)
        by_fn = {
            name: facts.rng_sites[0]
            for name, facts in summary.functions.items()
        }
        assert not by_fn["unseeded"]["seeded"]
        assert by_fn["constant"]["seeded"] and not by_fn["constant"]["tainted"]
        assert by_fn["plumbed"]["seeded"] and by_fn["plumbed"]["tainted"]

    def test_taint_flows_through_assignment_loop_and_comprehension(self, tmp_path):
        module = parse_one(tmp_path, """
            import numpy as np

            def spawn(rng, count):
                children = rng.bit_generator.seed_seq.spawn(count)
                return [np.random.default_rng(c) for c in children]

            def loop(seed_root):
                derived = seed_root + 1
                out = []
                for item in [derived]:
                    out.append(np.random.default_rng(item))
                return out
        """)
        summary = extract_summary(module)
        for facts in summary.functions.values():
            for site in facts.rng_sites:
                assert site["tainted"], facts.name

    def test_global_and_shared_writes(self, tmp_path):
        module = parse_one(tmp_path, """
            _CACHE = {}
            _FLAG = False

            def get_shared_world(key):
                return _CACHE[key]

            def mutate(key, task):
                global _FLAG
                _FLAG = True
                world = get_shared_world(key)
                world.items[key] = task
                _CACHE[key] = world

            def harmless(key):
                local = {}
                local[key] = 1
                return local
        """)
        summary = extract_summary(module)
        mutate = summary.functions["mutate"]
        global_names = {w["name"] for w in mutate.global_writes}
        assert global_names == {"_FLAG", "_CACHE"}
        assert [w["name"] for w in mutate.shared_writes] == ["world"]
        assert not summary.functions["harmless"].global_writes

    def test_wallclock_suppression_honors_only_interprocedural_pragma(self, tmp_path):
        module = parse_one(tmp_path, """
            import time

            def per_file_blessed():
                return time.time()  # lint: ignore[wall-clock]

            def chain_blessed():
                return time.time()  # lint: ignore[wallclock-fingerprint]
        """)
        summary = extract_summary(module)
        assert not summary.functions["per_file_blessed"].wallclock[0]["suppressed"]
        assert summary.functions["chain_blessed"].wallclock[0]["suppressed"]

    def test_hash_feed_collects_nested_call_targets(self, tmp_path):
        module = parse_one(tmp_path, """
            from repro.exec.hashing import derive_seed

            def now_tag():
                return 0

            def fingerprint(root):
                return derive_seed(root, now_tag())
        """)
        summary = extract_summary(module)
        (feed,) = summary.functions["fingerprint"].hash_feeds
        assert feed["api"] == "derive_seed"
        assert ["local", "now_tag"] in feed["targets"]

    def test_span_return_direct_and_via_name(self, tmp_path):
        module = parse_one(tmp_path, """
            from repro.obs import span

            def direct(name):
                return span(name)

            def via_name(name):
                record = span(name)
                return record

            def unrelated(name):
                return name
        """)
        summary = extract_summary(module)
        assert summary.functions["direct"].returns_span
        assert summary.functions["via_name"].returns_span
        assert not summary.functions["unrelated"].returns_span

    def test_summary_round_trips_through_json(self, tmp_path):
        module = parse_one(tmp_path, """
            import numpy as np
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Probe:
                seed: int

                def run(self):
                    return np.random.default_rng(self.seed)

            def outer():
                def inner():
                    return 1
                return inner()
        """)
        summary = extract_summary(module, digest="abc")
        payload = json.loads(json.dumps(summary.to_dict()))
        restored = ModuleSummary.from_dict(payload)
        assert restored.to_dict() == summary.to_dict()
        assert restored.classes["Probe"].is_dataclass
        assert restored.local_defs == ["inner"]


class TestLinking:
    def test_cross_module_and_reexport_resolution(self, tmp_path):
        program = build(tmp_path, {
            "pkg/__init__.py": "from pkg.inner import helper\n",
            "pkg/inner.py": """
                def helper():
                    return 1
            """,
            "user.py": """
                import pkg
                from pkg.inner import helper

                def direct():
                    return helper()

                def through_package():
                    return pkg.helper()
            """,
        })
        helper_id = program.find_functions("helper")[0]
        assert fn(program, "direct").edges == [helper_id]
        assert fn(program, "through_package").edges == [helper_id]

    def test_annotation_binding_includes_subclass_overrides(self, tmp_path):
        program = build(tmp_path, {
            "shapes.py": """
                class Base:
                    def run(self):
                        return 0

                class Derived(Base):
                    def run(self):
                        return 1

                def drive(task: Base):
                    return task.run()
            """,
        })
        edges = set(fn(program, "drive").edges)
        assert edges == {"shapes:Base.run", "shapes:Derived.run"}

    def test_constructor_assignment_binds_attribute_methods(self, tmp_path):
        program = build(tmp_path, {
            "engine.py": """
                class Worker:
                    def step(self):
                        return 1

                class Engine:
                    def __init__(self):
                        self.worker = Worker()

                    def tick(self):
                        return self.worker.step()
            """,
        })
        assert fn(program, "tick").edges == ["engine:Worker.step"]

    def test_dynamic_dispatch_binds_only_unique_names(self, tmp_path):
        program = build(tmp_path, {
            "a.py": """
                def only_here():
                    return 1

                def twice():
                    return 1
            """,
            "b.py": """
                def twice():
                    return 2

                def caller(x):
                    x.only_here()
                    x.twice()
            """,
        })
        assert fn(program, "caller").edges == ["a:only_here"]

    def test_reachability_keeps_parent_chains(self, tmp_path):
        program = build(tmp_path, {
            "chain.py": """
                def top():
                    return mid()

                def mid():
                    return bottom()

                def bottom():
                    return 1

                def island():
                    return 2
            """,
        })
        parents = program.reachable(["chain:top"])
        assert set(parents) == {"chain:top", "chain:mid", "chain:bottom"}
        assert program.chain(parents, "chain:bottom") == [
            "chain:top", "chain:mid", "chain:bottom",
        ]
        assert "chain:island" not in parents

    def test_task_classes_span_modules(self, tmp_path):
        program = build(tmp_path, {
            "base.py": """
                class EvalTask:
                    def run(self):
                        raise NotImplementedError
            """,
            "derived.py": """
                from base import EvalTask

                class ProbeTask(EvalTask):
                    def run(self):
                        return 1.0
            """,
        })
        assert program.task_classes() == ["base:EvalTask", "derived:ProbeTask"]

    def test_reverse_dependency_closure(self, tmp_path):
        program = build(tmp_path, {
            "core_mod.py": "def f():\n    return 1\n",
            "mid_mod.py": "from core_mod import f\n",
            "top_mod.py": "import mid_mod\n",
            "island_mod.py": "def g():\n    return 2\n",
        })
        core_path = (tmp_path / "core_mod.py").as_posix()
        wanted = program.reverse_dependency_closure([core_path])
        names = {Path(p).name for p in wanted}
        assert names == {"core_mod.py", "mid_mod.py", "top_mod.py"}
        unknown = program.reverse_dependency_closure(["nowhere.py"])
        assert unknown == {"nowhere.py"}


class TestAnalysisStore:
    def test_warm_hit_and_digest_invalidation(self, tmp_path):
        store_path = tmp_path / "cache.json"
        module = parse_one(tmp_path, "def f():\n    return 1\n")
        digest = content_digest(module.text)
        store = AnalysisStore(store_path)
        store.put(extract_summary(module, digest))
        store.save()

        warm = AnalysisStore(store_path)
        assert warm.get(module.path, digest) is not None
        assert warm.hits == [module.path]
        assert warm.get(module.path, "other-digest") is None

    def test_schema_version_mismatch_discards_entries(self, tmp_path):
        store_path = tmp_path / "cache.json"
        store_path.write_text(json.dumps({
            "version": -1,
            "entries": {"mod.py": {"digest": "d", "summary": {}}},
        }))
        assert AnalysisStore(store_path).entries == {}

    def test_corrupt_store_is_ignored(self, tmp_path):
        store_path = tmp_path / "cache.json"
        store_path.write_text("{not json")
        assert AnalysisStore(store_path).entries == {}

    def test_prune_drops_vanished_files(self, tmp_path):
        store_path = tmp_path / "cache.json"
        module = parse_one(tmp_path, "def f():\n    return 1\n")
        store = AnalysisStore(store_path)
        store.put(extract_summary(module, content_digest(module.text)))
        store.prune([])
        assert store.entries == {}
