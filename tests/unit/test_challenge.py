"""Unit tests for the Rating Challenge rules and evaluation."""

import numpy as np
import pytest

from repro.aggregation.simple import SimpleAveragingScheme
from repro.attacks.base import AttackSubmission, build_attack_stream
from repro.errors import ChallengeRuleError, ValidationError
from repro.marketplace.challenge import ChallengeConfig, RatingChallenge


@pytest.fixture(scope="module")
def challenge():
    return RatingChallenge(seed=77)


def make_submission(challenge, product_ids=("tv1",), times=None, values=None, n=10,
                    rater_ids=None):
    rids = rater_ids if rater_ids is not None else challenge.config.biased_rater_ids()[:n]
    streams = {}
    for pid in product_ids:
        t = times if times is not None else np.linspace(5.0, 60.0, n)
        v = values if values is not None else np.full(n, 1.0)
        streams[pid] = build_attack_stream(pid, t, v, rids)
    return AttackSubmission("test_sub", streams)


class TestChallengeConfig:
    def test_default_rules(self):
        config = ChallengeConfig()
        assert config.n_biased_raters == 50
        assert config.max_attacked_products == 4

    def test_biased_rater_ids_unique(self):
        ids = ChallengeConfig().biased_rater_ids()
        assert len(ids) == 50
        assert len(set(ids)) == 50

    def test_invalid_configs(self):
        with pytest.raises(ValidationError):
            ChallengeConfig(n_biased_raters=0)
        with pytest.raises(ValidationError):
            ChallengeConfig(period_days=0)


class TestValidation:
    def test_valid_submission_passes(self, challenge):
        challenge.validate(make_submission(challenge))

    def test_unknown_product_rejected(self, challenge):
        submission = make_submission(challenge, product_ids=("nonexistent",))
        with pytest.raises(ChallengeRuleError, match="not part of the challenge"):
            challenge.validate(submission)

    def test_too_many_products_rejected(self, challenge):
        pids = challenge.fair_dataset.product_ids[:5]
        submission = make_submission(challenge, product_ids=pids)
        with pytest.raises(ChallengeRuleError, match="at most"):
            challenge.validate(submission)

    def test_foreign_rater_rejected(self, challenge):
        submission = make_submission(
            challenge, n=2, rater_ids=["intruder", "attacker_01"],
        )
        with pytest.raises(ChallengeRuleError, match="biased raters"):
            challenge.validate(submission)

    def test_duplicate_rater_on_product_rejected(self, challenge):
        rids = [challenge.config.biased_rater_ids()[0]] * 2
        submission = make_submission(challenge, n=2, rater_ids=rids)
        with pytest.raises(ChallengeRuleError, match="more than once"):
            challenge.validate(submission)

    def test_same_rater_on_two_products_allowed(self, challenge):
        submission = make_submission(challenge, product_ids=("tv1", "tv2"), n=5)
        challenge.validate(submission)

    def test_time_before_window_rejected(self, challenge):
        times = np.array([-10.0] + [20.0] * 4)
        submission = make_submission(challenge, times=times, n=5)
        with pytest.raises(ChallengeRuleError, match="outside the challenge window"):
            challenge.validate(submission)

    def test_time_after_window_rejected(self, challenge):
        times = np.array([20.0] * 4 + [challenge.end_day + 1.0])
        submission = make_submission(challenge, times=times, n=5)
        with pytest.raises(ChallengeRuleError, match="outside the challenge window"):
            challenge.validate(submission)

    def test_history_period_not_attackable(self, challenge):
        # Times in the fair history (before day 0) violate the rules.
        times = np.full(5, challenge.start_day - 5.0)
        submission = make_submission(challenge, times=times, n=5)
        with pytest.raises(ChallengeRuleError):
            challenge.validate(submission)

    def test_value_off_scale_rejected(self, challenge):
        values = np.array([1.0, 5.5, 1.0])
        submission = make_submission(challenge, values=values, n=3)
        with pytest.raises(ChallengeRuleError, match="outside the scale"):
            challenge.validate(submission)


class TestEvaluation:
    def test_evaluate_returns_positive_mp_for_real_attack(self, challenge):
        submission = make_submission(challenge, n=40)
        result = challenge.evaluate(submission, SimpleAveragingScheme())
        assert result.total > 0.0
        assert set(result.per_product) == set(challenge.fair_dataset.product_ids)

    def test_attacked_dataset_merges_marks(self, challenge):
        submission = make_submission(challenge, n=10)
        attacked = challenge.attacked_dataset(submission)
        assert attacked["tv1"].unfair.sum() == 10
        assert challenge.fair_dataset["tv1"].unfair.sum() == 0

    def test_evaluate_validates_by_default(self, challenge):
        submission = make_submission(challenge, product_ids=("nonexistent",))
        with pytest.raises(ChallengeRuleError):
            challenge.evaluate(submission, SimpleAveragingScheme())

    def test_leaderboard_sorted_descending(self, challenge):
        weak = make_submission(challenge, n=3)
        strong = make_submission(challenge, n=45)
        strong = AttackSubmission("strong", dict(strong.streams))
        weak = AttackSubmission("weak", dict(weak.streams))
        board = challenge.leaderboard([weak, strong], SimpleAveragingScheme())
        assert board[0].submission_id == "strong"
        assert board[0].rank == 1
        assert board[1].rank == 2
        assert board[0].total_mp >= board[1].total_mp

    def test_shared_fair_dataset(self):
        base = RatingChallenge(seed=3)
        clone = RatingChallenge(fair_dataset=base.fair_dataset)
        assert clone.fair_dataset is base.fair_dataset
