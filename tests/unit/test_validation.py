"""Unit tests for repro.utils.validation."""

import math

import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_coerces_int_to_float(self):
        value = check_positive(3, "x")
        assert isinstance(value, float)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive(math.inf, "x")

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_positive("three", "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="window"):
            check_positive(-1, "window")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_non_negative(2.5, "x") == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-1e-9, "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(5, "n") == 5

    def test_accepts_integral_float(self):
        assert check_positive_int(5.0, "n") == 5

    def test_rejects_fractional_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(5.5, "n")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")

    def test_custom_minimum(self):
        assert check_positive_int(2, "n", minimum=2) == 2
        with pytest.raises(ValidationError):
            check_positive_int(1, "n", minimum=2)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive_int("5", "n")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_in_range(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, math.nan])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, "x", low=0.0, high=1.0) == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, "x", low=0.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ValidationError):
            check_in_range(1.0, "x", high=1.0, high_inclusive=False)

    def test_open_ended(self):
        assert check_in_range(1e9, "x", low=0.0) == 1e9
        assert check_in_range(-1e9, "x", high=0.0) == -1e9

    def test_below_low_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(-1.0, "x", low=0.0)

    def test_above_high_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(2.0, "x", high=1.0)
