"""Unit tests for the run ledger and regression checks (repro.obs.ledger)."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry, use_registry
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    begin_run_capture,
    build_record,
    check_ledger,
    diff_records,
    end_run_capture,
    note_tasks,
    record_digest,
    runtime_environment,
)


def make_record(
    run_id="aaaaaa",
    timestamp=1000.0,
    command="population",
    status=0,
    wall=2.0,
    digests=None,
    counters=None,
    fingerprint="wf-1",
    argv=None,
    timings=None,
):
    return RunRecord(
        run_id=run_id,
        timestamp=timestamp,
        command=command,
        argv=list(argv) if argv is not None else [command],
        status=status,
        workload={"tasks": 4, "fingerprint": fingerprint},
        digests=dict(digests or {"population.top_mp": 1.25}),
        metrics={"counters": dict(counters or {"detector.joint.calls": 8.0}),
                 "gauges": {}},
        timings={"wall_seconds": wall, **(timings or {})},
        env={},
    )


class FakeTask:
    def __init__(self, fingerprint):
        self.fingerprint = fingerprint


class TestRunCapture:
    def test_digests_and_tasks_collected_while_active(self):
        capture = begin_run_capture()
        try:
            record_digest("population.top_mp", 1.5)
            with use_registry(MetricsRegistry()):
                note_tasks([FakeTask("f1"), FakeTask("f2")])
        finally:
            assert end_run_capture() is capture
        assert capture.digests == {"population.top_mp": 1.5}
        assert capture.workload["tasks"] == 2
        assert capture.workload["fingerprint"]

    def test_workload_fingerprint_tracks_task_identity(self):
        def fingerprint_of(names):
            capture = begin_run_capture()
            with use_registry(MetricsRegistry()):
                note_tasks([FakeTask(n) for n in names])
            end_run_capture()
            return capture.workload["fingerprint"]

        assert fingerprint_of(["a", "b"]) == fingerprint_of(["a", "b"])
        assert fingerprint_of(["a", "b"]) != fingerprint_of(["a", "c"])

    def test_noop_when_inactive(self):
        end_run_capture()
        record_digest("ignored", 1.0)  # must not raise
        note_tasks([FakeTask("f")])


class TestBuildRecord:
    def test_record_carries_metrics_timings_and_env(self):
        registry = MetricsRegistry()
        registry.inc("detector.joint.calls", 3)
        for value in (0.1, 0.2, 0.3):
            registry.observe("exec.task_seconds", value)
        capture = begin_run_capture()
        record_digest("population.top_mp", 1.25)
        end_run_capture()
        record = build_record(
            command="population",
            argv=["population", "--size", "4"],
            registry=registry,
            wall_seconds=1.5,
            capture=capture,
            timestamp=1234.5,
        )
        assert record.status == 0
        assert record.digests == {"population.top_mp": 1.25}
        assert record.metrics["counters"]["detector.joint.calls"] == 3.0
        assert record.timings["wall_seconds"] == 1.5
        assert record.timings["task_count"] == 3.0
        assert record.timings["task_p50"] == pytest.approx(0.2)
        assert set(record.env) >= {"python", "cpu_count", "platform"}
        assert len(record.run_id) == 12

    def test_record_carries_span_self_time_percentiles(self):
        from repro.obs.spans import SpanRecord

        registry = MetricsRegistry()
        registry.adopt_span(
            SpanRecord("p", "p", 0, start=0.0, duration=10.0)
        )
        registry.adopt_span(
            SpanRecord("c", "p.c", 1, start=1.0, duration=4.0)
        )
        record = build_record(
            command="population", argv=["population"], registry=registry,
            timestamp=1.0,
        )
        # Self time: the child's 4s came out of the parent's 10s.
        assert record.timings["self.p.p50"] == pytest.approx(6.0)
        assert record.timings["self.p.p90"] == pytest.approx(6.0)
        assert record.timings["self.p.c.p50"] == pytest.approx(4.0)

    def test_self_time_paths_capped_to_heaviest(self):
        from repro.obs.ledger import MAX_SELF_TIME_PATHS
        from repro.obs.spans import SpanRecord

        registry = MetricsRegistry()
        for index in range(MAX_SELF_TIME_PATHS + 4):
            registry.adopt_span(SpanRecord(
                f"s{index}", f"s{index}", 0,
                start=float(index * 100), duration=float(index + 1),
            ))
        record = build_record(
            command="population", argv=["population"], registry=registry,
            timestamp=1.0,
        )
        self_keys = {
            name for name in record.timings if name.startswith("self.")
        }
        assert len(self_keys) == 2 * MAX_SELF_TIME_PATHS
        # The lightest paths were dropped, the heaviest kept.
        assert "self.s0.p50" not in self_keys
        assert f"self.s{MAX_SELF_TIME_PATHS + 3}.p50" in self_keys

    def test_run_id_deterministic_in_inputs(self):
        registry = MetricsRegistry()
        kwargs = dict(command="detect", argv=["detect"], registry=registry,
                      timestamp=99.0)
        assert (
            build_record(**kwargs).run_id == build_record(**kwargs).run_id
        )
        assert (
            build_record(**kwargs).run_id
            != build_record(**{**kwargs, "timestamp": 100.0}).run_id
        )

    def test_runtime_environment_shape(self):
        env = runtime_environment()
        assert isinstance(env["python"], str)
        assert env["cpu_count"] is None or env["cpu_count"] >= 1


class TestRunLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "sub" / "ledger.jsonl")
        with use_registry(MetricsRegistry()):
            ledger.append(make_record("aaa111"))
            ledger.append(make_record("bbb222", timestamp=2000.0))
        records = list(ledger.records())
        assert [r.run_id for r in records] == ["aaa111", "bbb222"]
        assert records[0].digests == {"population.top_mp": 1.25}
        assert ledger.latest().run_id == "bbb222"
        assert len(ledger) == 2

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        registry = MetricsRegistry()
        with use_registry(registry):
            ledger.append(make_record("aaa111"))
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("{torn write\n")
                handle.write("[1, 2, 3]\n")
            ledger.append(make_record("bbb222"))
            assert [r.run_id for r in ledger.records()] == ["aaa111", "bbb222"]
        assert registry.counter_value("ledger.corrupt_lines") == 2.0

    def test_find_by_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        with use_registry(MetricsRegistry()):
            ledger.append(make_record("abc123"))
            ledger.append(make_record("abd456"))
        assert ledger.find("abc").run_id == "abc123"
        with pytest.raises(ValidationError, match="ambiguous"):
            ledger.find("ab")
        with pytest.raises(ValidationError, match="no run matching"):
            ledger.find("zzz")

    def test_missing_ledger_is_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "nope.jsonl")
        assert list(ledger.records()) == []
        assert ledger.latest() is None


class TestDiff:
    def test_diff_reports_digest_counter_and_wall_changes(self):
        a = make_record("aaa", wall=1.0)
        b = make_record(
            "bbb",
            wall=2.0,
            digests={"population.top_mp": 1.5},
            counters={"detector.joint.calls": 9.0},
        )
        text = "\n".join(diff_records(a, b))
        assert "digest population.top_mp: 1.25 -> 1.5" in text
        assert "counter detector.joint.calls: 8 -> 9" in text
        assert "(2.00x)" in text

    def test_diff_of_identical_records_is_empty(self):
        assert diff_records(make_record(), make_record()) == []


class TestCheckLedger:
    def write(self, tmp_path, records):
        path = tmp_path / "ledger.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.as_dict()) + "\n")
        return RunLedger(path)

    def baseline(self, n=3):
        return [
            make_record(f"base{i:02d}", timestamp=1000.0 + i) for i in range(n)
        ]

    def test_clean_run_passes(self, tmp_path):
        ledger = self.write(
            tmp_path, self.baseline() + [make_record("latest", timestamp=2000.0)]
        )
        report = check_ledger(ledger)
        assert report.ok
        assert report.baseline_size == 3
        assert "OK" in report.to_text()

    def test_digest_drift_flagged(self, tmp_path):
        bad = make_record(
            "latest", timestamp=2000.0, digests={"population.top_mp": 1.75}
        )
        report = check_ledger(self.write(tmp_path, self.baseline() + [bad]))
        assert [f.kind for f in report.findings] == ["result-digest"]
        assert report.findings[0].latest == 1.75

    def test_digest_tolerance_allows_small_drift(self, tmp_path):
        bad = make_record(
            "latest", timestamp=2000.0, digests={"population.top_mp": 1.30}
        )
        ledger = self.write(tmp_path, self.baseline() + [bad])
        assert not check_ledger(ledger).ok
        assert check_ledger(ledger, digest_tolerance=0.1).ok

    def test_counter_drift_flagged_but_ignored_prefixes_skipped(self, tmp_path):
        bad = make_record(
            "latest",
            timestamp=2000.0,
            counters={
                "detector.joint.calls": 11.0,
                "exec.cache.misses": 500.0,  # topology bookkeeping: ignored
            },
        )
        report = check_ledger(self.write(tmp_path, self.baseline() + [bad]))
        assert [f.name for f in report.findings] == ["detector.joint.calls"]

    def test_timing_regression_flagged(self, tmp_path):
        slow = make_record("latest", timestamp=2000.0, wall=10.0)
        report = check_ledger(self.write(tmp_path, self.baseline() + [slow]))
        assert [f.kind for f in report.findings] == ["timing"]
        report = check_ledger(
            self.write(tmp_path, self.baseline() + [slow]),
            max_timing_ratio=10.0,
        )
        assert report.ok

    def test_self_timing_regression_flagged(self, tmp_path):
        base = [
            make_record(f"base{i:02d}", timestamp=1000.0 + i,
                        timings={"self.detect.p50": 0.2})
            for i in range(3)
        ]
        slow = make_record("latest", timestamp=2000.0,
                           timings={"self.detect.p50": 0.5})
        report = check_ledger(self.write(tmp_path, base + [slow]))
        assert [f.name for f in report.findings] == ["self.detect.p50"]
        assert "self-time" in report.findings[0].detail
        # The same ratio knob that gates wall clock gates self time.
        assert check_ledger(
            self.write(tmp_path, base + [slow]), max_timing_ratio=3.0
        ).ok

    def test_self_timing_below_floor_skipped(self, tmp_path):
        base = [
            make_record(f"base{i:02d}", timestamp=1000.0 + i,
                        timings={"self.tiny.p50": 0.01})
            for i in range(3)
        ]
        # 4x regression, but on a sub-floor phase: scheduling noise.
        noisy = make_record("latest", timestamp=2000.0,
                            timings={"self.tiny.p50": 0.04})
        assert check_ledger(self.write(tmp_path, base + [noisy])).ok

    def test_self_timing_without_history_skipped(self, tmp_path):
        # Baseline records predate the self.* fields (old fixtures):
        # the new fields must not flag against an empty history.
        first = make_record("latest", timestamp=2000.0,
                            timings={"self.detect.p50": 5.0})
        assert check_ledger(
            self.write(tmp_path, self.baseline() + [first])
        ).ok

    def test_nonzero_status_flagged(self, tmp_path):
        bad = make_record("latest", timestamp=2000.0, status=2)
        report = check_ledger(self.write(tmp_path, self.baseline() + [bad]))
        assert "status" in [f.kind for f in report.findings]

    def test_baseline_excludes_other_commands_and_workloads(self, tmp_path):
        noise = [
            make_record("othr01", command="detect"),
            make_record("othr02", fingerprint="wf-other"),
            make_record("fail01", status=1),
        ]
        ledger = self.write(
            tmp_path, noise + [make_record("latest", timestamp=2000.0)]
        )
        report = check_ledger(ledger)
        assert report.baseline_size == 0
        assert report.ok
        assert report.no_baseline
        assert "no comparable baseline" in report.to_text()
        assert "NO BASELINE" in report.to_text()

    def test_fingerprintless_runs_compare_by_argv(self, tmp_path):
        # Legacy serial CLI runs carry no workload fingerprint; two such
        # runs are only comparable when their argv is identical --
        # otherwise seed-11 and seed-2008 runs would cross-compare.
        same = dict(fingerprint=None, argv=["population", "--seed", "7"])
        other = dict(fingerprint=None, argv=["population", "--seed", "9"])
        ledger = self.write(
            tmp_path,
            [
                make_record("othr01", **other),
                make_record("base01", **same),
                make_record("latest", timestamp=2000.0, **same),
            ],
        )
        assert check_ledger(ledger).baseline_size == 1

    def test_window_bounds_the_baseline(self, tmp_path):
        ledger = self.write(
            tmp_path,
            self.baseline(6) + [make_record("latest", timestamp=2000.0)],
        )
        assert check_ledger(ledger, window=2).baseline_size == 2

    def test_empty_ledger_reports_notice(self, tmp_path):
        report = check_ledger(self.write(tmp_path, []))
        assert report.ok
        assert report.no_baseline
        assert "empty" in report.to_text()

    def test_comparable_baseline_clears_no_baseline_flag(self, tmp_path):
        ledger = self.write(
            tmp_path, self.baseline() + [make_record("latest", timestamp=2000.0)]
        )
        assert not check_ledger(ledger).no_baseline


class TestRunsCli:
    """The ``repro runs`` subcommands, exercised through cli.main."""

    def seed_ledger(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with use_registry(MetricsRegistry()):
            ledger = RunLedger(path)
            for i in range(3):
                ledger.append(make_record(f"run{i:03d}", timestamp=1000.0 + i))
        return path

    def test_runs_list_and_show(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seed_ledger(tmp_path)
        assert main(["runs", "list", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run000" in out and "run002" in out
        assert main(["runs", "show", "run001", "--ledger", str(path)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == "run001"

    def test_runs_diff_defaults_to_last_two(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seed_ledger(tmp_path)
        assert main(["runs", "diff", "--ledger", str(path)]) == 0
        assert "run001" in capsys.readouterr().out

    def test_runs_check_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seed_ledger(tmp_path)
        assert main(["runs", "check", "--ledger", str(path)]) == 0
        with use_registry(MetricsRegistry()):
            RunLedger(path).append(
                make_record(
                    "regress",
                    timestamp=2000.0,
                    wall=50.0,
                    digests={"population.top_mp": 9.0},
                )
            )
        assert main(["runs", "check", "--ledger", str(path)]) == 1
        out = capsys.readouterr().out
        assert "result-digest" in out and "timing" in out

    def test_runs_check_without_baseline_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        # Empty ledger: nothing to check at all.
        empty = tmp_path / "empty.jsonl"
        assert main(["runs", "check", "--ledger", str(empty)]) == 3
        # One record, zero comparable earlier runs: same distinct code.
        path = tmp_path / "one.jsonl"
        with use_registry(MetricsRegistry()):
            RunLedger(path).append(make_record("only01"))
        assert main(["runs", "check", "--ledger", str(path)]) == 3
        out = capsys.readouterr().out
        assert "no comparable baseline" in out

    def test_runs_commands_do_not_append_to_the_ledger(self, tmp_path):
        from repro.cli import main

        path = self.seed_ledger(tmp_path)
        before = path.read_text()
        assert main(["runs", "list", "--ledger", str(path)]) == 0
        assert path.read_text() == before


class TestAlertsInLedger:
    def firing_event(self, rule="drift-warnings-moving"):
        return {
            "rule": rule, "metric": "drift.warnings", "state": "firing",
            "epoch": 1, "value": 2.0, "threshold": 0.0,
            "severity": "warning", "latency_epochs": 0, "description": "",
        }

    def test_build_record_collects_engine_events(self):
        from repro.obs import AlertEngine, AlertRule
        from repro.obs.series import TimeSeriesRecorder

        registry = MetricsRegistry()
        rule = AlertRule(name="r", metric="m", op=">", value=0.0)
        recorder = TimeSeriesRecorder(
            engine=AlertEngine([rule], registry=registry)
        )
        registry.attach_series(recorder)
        recorder.ingest_snapshot(0, {"m": 1.0})
        recorder.engine.evaluate(recorder, 0, registry=registry)
        record = build_record(
            command="population", argv=["population"], registry=registry,
            timestamp=1.0,
        )
        assert [e["state"] for e in record.alerts] == ["firing"]
        assert record.firing_alerts()[0]["rule"] == "r"

    def test_alerts_round_trip_through_json(self):
        record = make_record("withalert")
        record.alerts = [self.firing_event()]
        clone = RunRecord.from_dict(
            json.loads(json.dumps(record.as_dict()))
        )
        assert clone.alerts == record.alerts
        assert [e["rule"] for e in clone.firing_alerts()] == [
            "drift-warnings-moving"
        ]

    def test_resolved_events_are_not_firing(self):
        record = make_record("resolved")
        record.alerts = [dict(self.firing_event(), state="resolved")]
        assert record.firing_alerts() == []

    def test_old_records_without_alerts_still_load(self):
        payload = make_record("old").as_dict()
        payload.pop("alerts", None)
        assert RunRecord.from_dict(payload).alerts == []


class TestCheckLedgerAlerts:
    def write(self, tmp_path, records):
        path = tmp_path / "ledger.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.as_dict()) + "\n")
        return RunLedger(path)

    def baseline(self, n=3):
        return [
            make_record(f"base{i:02d}", timestamp=1000.0 + i)
            for i in range(n)
        ]

    def firing_record(self, run_id="latest", timestamp=2000.0):
        record = make_record(run_id, timestamp=timestamp)
        record.alerts = [
            {
                "rule": "drift-dispersion-burst", "metric":
                "drift.dispersion.violations", "state": "firing",
                "epoch": 2, "value": 1.0, "threshold": 0.0,
                "severity": "critical", "latency_epochs": 0,
                "description": "",
            }
        ]
        return record

    def test_newly_firing_alert_flagged(self, tmp_path):
        ledger = self.write(tmp_path, self.baseline() + [self.firing_record()])
        report = check_ledger(ledger)
        assert not report.ok
        kinds = [f.kind for f in report.findings]
        assert "alert" in kinds
        finding = next(f for f in report.findings if f.kind == "alert")
        assert "drift-dispersion-burst" in finding.detail
        assert finding.latest == 1.0

    def test_allow_alerts_waives_the_check(self, tmp_path):
        ledger = self.write(tmp_path, self.baseline() + [self.firing_record()])
        assert check_ledger(ledger, allow_alerts=True).ok

    def test_alerting_baseline_not_flagged(self, tmp_path):
        # The baseline already fires: nothing *newly* regressed.
        baseline = [
            self.firing_record(f"base{i:02d}", timestamp=1000.0 + i)
            for i in range(3)
        ]
        ledger = self.write(tmp_path, baseline + [self.firing_record()])
        assert check_ledger(ledger).ok

    def test_clean_latest_not_flagged(self, tmp_path):
        ledger = self.write(
            tmp_path,
            self.baseline() + [make_record("latest", timestamp=2000.0)],
        )
        assert check_ledger(ledger).ok
