"""Unit tests for the span-attributed sampling profiler (repro.obs.profile)."""

import json
import time

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry, span, use_registry
from repro.obs.profile import (
    DEFAULT_HZ,
    PROFILE_TID,
    SpanProfiler,
    attributed_fraction,
    collapsed_stacks,
    disable_profiling,
    enable_profiling,
    maybe_task_profiler,
    profile_trace_events,
    profiling_enabled,
    profiling_hz,
    read_profile,
    read_speedscope,
    registry_hz,
    reparent_profile_key,
    self_seconds_by_span,
    span_self_seconds,
    span_self_times,
    speedscope_document,
    top_frames,
    write_profile,
    write_speedscope,
)
from repro.obs.spans import SpanRecord


def busy(seconds: float) -> None:
    """Burn CPU so the sampler has something to catch."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(500))


SAMPLES = {
    "span:detect.detector.ME;repro/cli.py:main;_methods.py:_mean": 30.0,
    "span:detect.detector.ME;repro/cli.py:main;ar.py:fit": 10.0,
    "span:detect.detector.HC;repro/cli.py:main;hist.py:counts": 20.0,
    "span:-;repro/cli.py:main": 40.0,
}


class TestSampling:
    def test_samples_attribute_to_the_open_span(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with SpanProfiler(registry, hz=250) as profiler:
                with span("unit.hot"):
                    busy(0.25)
        assert sum(profiler.samples.values()) > 0
        assert all(key.startswith("span:") for key in profiler.samples)
        in_span = sum(
            count
            for key, count in profiler.samples.items()
            if key.startswith("span:unit.hot;")
        )
        assert in_span / sum(profiler.samples.values()) > 0.5
        # Frames below the span root are src-relative python labels.
        some_key = next(
            key for key in profiler.samples if key.startswith("span:unit.hot;")
        )
        assert ";" in some_key
        for label in some_key.split(";")[1:]:
            assert ":" in label

    def test_stop_flushes_samples_and_metrics_into_registry(self):
        registry = MetricsRegistry()
        with SpanProfiler(registry, hz=250):
            with use_registry(registry), span("unit.flush"):
                busy(0.1)
        assert registry.profile
        assert registry.counter_value("profile.samples") == pytest.approx(
            sum(registry.profile.values())
        )
        assert registry.gauges["profile.hz"].value == 250.0
        assert registry_hz(registry) == 250.0

    def test_stop_is_idempotent_and_start_returns_self(self):
        profiler = SpanProfiler(MetricsRegistry(), hz=100)
        assert profiler.start() is profiler
        assert profiler.running
        first = profiler.stop()
        assert not profiler.running
        assert profiler.stop() == first

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValidationError, match="hz must be positive"):
            SpanProfiler(MetricsRegistry(), hz=0)

    def test_inner_profiler_wins_over_outer(self):
        # When the execution engine starts a per-task profiler under a
        # CLI-level one, only the innermost records: the outer must not
        # double-count the same threads.
        outer = SpanProfiler(MetricsRegistry(), hz=100).start()
        inner = SpanProfiler(MetricsRegistry(), hz=100).start()
        try:
            outer._sample_once()
            assert outer.samples == {}
            inner._sample_once()
            assert inner.samples
        finally:
            inner.stop()
            outer.stop()

    def test_unattributed_samples_use_the_dash_span(self):
        profiler = SpanProfiler(MetricsRegistry(), hz=100).start()
        try:
            profiler._sample_once()  # no span open on this thread
        finally:
            profiler.stop()
        assert any(key.startswith("span:-;") for key in profiler.samples)


class TestEnablement:
    def test_disabled_is_the_default_and_task_profiler_is_none(self):
        assert not profiling_enabled()
        assert maybe_task_profiler(MetricsRegistry()) is None

    def test_enable_then_disable_round_trip(self):
        enable_profiling(hz=123)
        try:
            assert profiling_enabled()
            assert profiling_hz() == 123
            profiler = maybe_task_profiler(MetricsRegistry())
            assert profiler is not None
            assert profiler.running
            assert profiler.hz == 123
            profiler.stop()
        finally:
            disable_profiling()
        assert not profiling_enabled()


class TestAggregation:
    def test_reparent_prefixes_the_span_segment(self):
        key = "span:detect;repro/cli.py:main"
        assert (
            reparent_profile_key(key, "exec.map.exec.task")
            == "span:exec.map.exec.task.detect;repro/cli.py:main"
        )

    def test_reparent_leaves_unattributed_and_foreign_keys_alone(self):
        assert reparent_profile_key("span:-;f.py:g", "exec.task") == "span:-;f.py:g"
        assert reparent_profile_key("noise", "exec.task") == "noise"
        assert reparent_profile_key("span:detect;f.py:g", "") == "span:detect;f.py:g"

    def test_attributed_fraction(self):
        assert attributed_fraction({}) == 1.0
        assert attributed_fraction(SAMPLES) == pytest.approx(0.6)

    def test_self_seconds_by_span_groups_by_innermost_span(self):
        by_span = self_seconds_by_span(SAMPLES, hz=10)
        assert by_span == pytest.approx(
            {"detect.detector.ME": 4.0, "detect.detector.HC": 2.0, "-": 4.0}
        )

    def test_top_frames_ranks_leaf_frames(self):
        frames = top_frames(SAMPLES, 2)
        assert frames[0] == ("repro/cli.py:main", 40.0)
        assert frames[1] == ("_methods.py:_mean", 30.0)


class TestSpanSelfTimes:
    def test_child_time_is_subtracted_from_parent(self):
        spans = [
            SpanRecord("child", "parent.child", 1, start=1.0, duration=2.0),
            SpanRecord("parent", "parent", 0, start=0.0, duration=10.0),
        ]
        assert span_self_seconds(spans) == pytest.approx(
            {"parent": 8.0, "parent.child": 2.0}
        )

    def test_siblings_both_subtract(self):
        spans = [
            SpanRecord("p", "p", 0, start=0.0, duration=10.0),
            SpanRecord("a", "p.a", 1, start=1.0, duration=3.0),
            SpanRecord("b", "p.b", 1, start=5.0, duration=4.0),
        ]
        assert span_self_seconds(spans) == pytest.approx(
            {"p": 3.0, "p.a": 3.0, "p.b": 4.0}
        )

    def test_per_pid_containment_never_crosses_processes(self):
        # A worker span inside the parent's wall-clock window must not be
        # subtracted from the parent lane's span.
        spans = [
            SpanRecord("p", "p", 0, start=0.0, duration=10.0, pid=1),
            SpanRecord("w", "w", 0, start=2.0, duration=5.0, pid=2),
        ]
        assert span_self_seconds(spans) == pytest.approx({"p": 10.0, "w": 5.0})

    def test_per_record_values_grouped_by_path(self):
        spans = [
            SpanRecord("t", "t", 0, start=0.0, duration=2.0),
            SpanRecord("t", "t", 0, start=5.0, duration=3.0),
        ]
        assert span_self_times(spans) == {"t": [2.0, 3.0]}


class TestExporters:
    def test_collapsed_stacks_format(self):
        text = collapsed_stacks({"span:a;f.py:g": 3.0, "span:b;f.py:h": 1.0})
        assert text == "span:a;f.py:g 3\nspan:b;f.py:h 1\n"
        assert collapsed_stacks({}) == ""

    def test_speedscope_document_round_trips_weights(self, tmp_path):
        path = tmp_path / "profile.speedscope.json"
        assert write_speedscope(SAMPLES, path, hz=10) == len(SAMPLES)
        payload = read_speedscope(path)
        profile = payload["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert sum(profile["weights"]) == pytest.approx(10.0)
        assert len(profile["samples"]) == len(profile["weights"])
        frame_count = len(payload["shared"]["frames"])
        for stack in profile["samples"]:
            assert all(0 <= index < frame_count for index in stack)

    def test_speedscope_document_dedups_frames(self):
        document = speedscope_document(SAMPLES, hz=10)
        names = [frame["name"] for frame in document["shared"]["frames"]]
        assert len(names) == len(set(names))
        assert "repro/cli.py:main" in names

    def test_read_speedscope_rejects_bad_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="JSON"):
            read_speedscope(path)
        path.write_text(json.dumps({"shared": {"frames": []}, "profiles": []}))
        with pytest.raises(ValidationError, match="profiles"):
            read_speedscope(path)
        path.write_text(json.dumps({
            "shared": {"frames": [{"name": "f"}]},
            "profiles": [{
                "type": "sampled", "samples": [[0]], "weights": [1.0, 2.0],
            }],
        }))
        with pytest.raises(ValidationError, match="weights"):
            read_speedscope(path)
        path.write_text(json.dumps({
            "shared": {"frames": [{"name": "f"}]},
            "profiles": [{
                "type": "sampled", "samples": [[4]], "weights": [1.0],
            }],
        }))
        with pytest.raises(ValidationError, match="frame index"):
            read_speedscope(path)

    def test_profile_trace_events_render_back_to_back(self):
        events = profile_trace_events(SAMPLES, hz=10, base_pid=42)
        assert [e["ph"] for e in events] == ["X"] * len(SAMPLES)
        assert all(e["pid"] == 42 and e["tid"] == PROFILE_TID for e in events)
        assert all(e["cat"] == "profile" for e in events)
        # Back-to-back: each event starts where the previous ended.
        ts = 0.0
        for event in events:
            assert event["ts"] == pytest.approx(ts)
            ts += event["dur"]
        assert ts == pytest.approx(sum(SAMPLES.values()) / 10 * 1e6)

    def test_profile_trace_events_skip_zero_counts(self):
        events = profile_trace_events({"span:a;f.py:g": 0.0}, hz=10)
        assert events == []


class TestArtifact:
    def _registry(self):
        registry = MetricsRegistry()
        registry.add_profile_samples(SAMPLES)
        registry.set_gauge("profile.hz", 10.0)
        return registry

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "profile.json"
        registry = self._registry()
        total = write_profile(registry, path)
        assert total == pytest.approx(100.0)
        payload = read_profile(path)
        assert payload["kind"] == "repro.profile"
        assert payload["hz"] == 10.0
        assert payload["samples"] == SAMPLES
        assert payload["attributed_fraction"] == pytest.approx(0.6)
        assert registry.counter_value("profile.artifacts_written") == 1.0

    def test_registry_hz_defaults_when_gauge_missing(self):
        assert registry_hz(MetricsRegistry()) == float(DEFAULT_HZ)

    def test_read_profile_rejects_bad_artifacts(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="JSON"):
            read_profile(path)
        path.write_text(json.dumps({"kind": "something.else"}))
        with pytest.raises(ValidationError, match="repro.profile"):
            read_profile(path)
        path.write_text(json.dumps(
            {"kind": "repro.profile", "hz": -5, "samples": {}}
        ))
        with pytest.raises(ValidationError, match="hz"):
            read_profile(path)
        path.write_text(json.dumps(
            {"kind": "repro.profile", "hz": 10, "samples": {"k": "lots"}}
        ))
        with pytest.raises(ValidationError, match="numeric"):
            read_profile(path)
