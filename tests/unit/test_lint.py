"""repro.lint: the AST-based invariant checker.

Each rule family gets a good/bad fixture pair; the framework tests cover
pragma suppression, baseline filtering, the JSON output schema, and the
CLI entry points.  The final self-check asserts the repo's own ``src/``
tree is clean under the committed baseline -- the invariant every future
PR inherits.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintConfig, default_rules, main, run_lint
from repro.lint.catalog import (
    expand_braces,
    globs_intersect,
    parse_catalog_text,
    pattern_to_glob,
)
from repro.lint.core import Finding, Linter, ModuleSource, baseline_payload

REPO_ROOT = Path(__file__).resolve().parents[2]

CATALOG_MD = """
| metric | type | meaning |
|---|---|---|
| `exec.tasks` | counter | tasks dispatched |
| `quality.<detector>.{tp,fp}` | counter | confusion cells |
| `span.<path>.seconds` | histogram | span durations |
| `ghost.metric` | gauge | promised but never emitted |
"""


def lint_source(tmp_path, source, filename="mod.py", **config_kwargs):
    """Run the full battery over one in-memory module."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    config = LintConfig(**config_kwargs)
    return run_lint([str(target)], config)


def rule_ids(result):
    return {finding.rule for finding in result.findings}


# --------------------------------------------------------------------- #
# RNG discipline
# --------------------------------------------------------------------- #


class TestRngRules:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
        )
        assert "rng-unseeded" in rule_ids(result)
        (finding,) = [f for f in result.findings if f.rule == "rng-unseeded"]
        assert finding.line == 2
        assert finding.symbol == "numpy.random.default_rng"

    def test_seeded_default_rng_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n",
        )
        assert "rng-unseeded" not in rule_ids(result)

    def test_aliased_import_still_resolves(self, tmp_path):
        result = lint_source(
            tmp_path,
            "from numpy.random import default_rng as mk\n"
            "rng = mk()\n",
        )
        assert "rng-unseeded" in rule_ids(result)

    def test_global_state_api_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import numpy as np\n"
            "import random\n"
            "x = np.random.normal(0.0, 1.0)\n"
            "np.random.seed(3)\n"
            "y = random.random()\n",
        )
        offenders = {
            f.symbol for f in result.findings if f.rule == "rng-global-state"
        }
        assert offenders == {
            "numpy.random.normal",
            "numpy.random.seed",
            "random.random",
        }

    def test_generator_methods_not_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.normal(0.0, 1.0)\n",
        )
        assert "rng-global-state" not in rule_ids(result)

    def test_world_builder_without_seed_param_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def generate_ratings(count):\n"
            "    return [0] * count\n",
        )
        assert "rng-missing-param" in rule_ids(result)

    def test_world_builder_with_seed_param_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def generate_ratings(count, rng):\n"
            "    return [0] * count\n"
            "def build_world(seed=0):\n"
            "    return seed\n"
            "def sample_times(n, *, seed_root):\n"
            "    return n\n",
        )
        assert "rng-missing-param" not in rule_ids(result)


# --------------------------------------------------------------------- #
# Wall-clock hygiene
# --------------------------------------------------------------------- #


class TestWallClockRule:
    def test_time_time_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import time\n"
            "stamp = time.time()\n",
        )
        (finding,) = [f for f in result.findings if f.rule == "wall-clock"]
        assert finding.line == 2

    def test_datetime_now_flagged_through_from_import(self, tmp_path):
        result = lint_source(
            tmp_path,
            "from datetime import datetime\n"
            "stamp = datetime.now()\n",
        )
        assert "wall-clock" in rule_ids(result)

    def test_perf_counter_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            "from time import perf_counter\n"
            "start = perf_counter()\n",
        )
        assert "wall-clock" not in rule_ids(result)

    def test_ledger_timestamp_site_is_pragmad(self):
        ledger = REPO_ROOT / "src/repro/obs/ledger.py"
        module = ModuleSource.parse("ledger.py", ledger.read_text())
        pragma_lines = [
            lineno
            for lineno, rules in module.ignores.items()
            if rules is not None and "wall-clock" in rules
        ]
        assert pragma_lines, "the sanctioned time.time() site lost its pragma"
        assert any(
            "time.time()" in module.lines[lineno - 1] for lineno in pragma_lines
        )

    def test_profile_capture_timestamp_site_is_pragmad(self):
        profile = REPO_ROOT / "src/repro/obs/profile.py"
        module = ModuleSource.parse("profile.py", profile.read_text())
        pragma_lines = [
            lineno
            for lineno, rules in module.ignores.items()
            if rules is not None and "wall-clock" in rules
        ]
        assert pragma_lines, (
            "the profile artifact's captured_at site lost its pragma"
        )
        assert any(
            "time.time()" in module.lines[lineno - 1] for lineno in pragma_lines
        )

    def test_unpragmad_sampler_timestamp_trips_the_rule(self, tmp_path):
        # The inverse of the test above: a profiler artifact writer that
        # stamps wall-clock provenance *without* the pragma is exactly
        # what the rule exists to catch.
        result = lint_source(
            tmp_path,
            "import time\n"
            "def write_profile(samples):\n"
            "    return {'captured_at': time.time(), 'samples': samples}\n",
        )
        (finding,) = [f for f in result.findings if f.rule == "wall-clock"]
        assert finding.line == 3


# --------------------------------------------------------------------- #
# Pickle safety
# --------------------------------------------------------------------- #


class TestPickleSafetyRule:
    def test_lambda_in_task_ctor_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "task = RegionProbeTask(probe=lambda: 1, bias=2.0)\n",
        )
        (finding,) = [f for f in result.findings if f.rule == "pickle-safety"]
        assert "lambda" in finding.message

    def test_local_function_into_evaluator_map_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def dispatch(evaluator, items):\n"
            "    def score(item):\n"
            "        return item + 1\n"
            "    return evaluator.map(score, items)\n",
        )
        assert "pickle-safety" in rule_ids(result)

    def test_pool_bound_receiver_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def run(tasks):\n"
            "    with ParallelEvaluator(workers=2) as ev:\n"
            "        return ev.map(lambda t: t, tasks)\n",
        )
        assert "pickle-safety" in rule_ids(result)

    def test_module_level_function_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def score(item):\n"
            "    return item + 1\n"
            "def run(evaluator, items):\n"
            "    return evaluator.map(score, items)\n",
        )
        assert "pickle-safety" not in rule_ids(result)

    def test_builtin_map_not_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "out = list(map(lambda x: x + 1, [1, 2]))\n",
        )
        assert "pickle-safety" not in rule_ids(result)


# --------------------------------------------------------------------- #
# Metric-catalog parity + span balance
# --------------------------------------------------------------------- #


class TestMetricRules:
    def write_catalog(self, tmp_path):
        catalog = tmp_path / "CATALOG.md"
        catalog.write_text(CATALOG_MD)
        return str(catalog)

    def test_uncataloged_metric_flagged(self, tmp_path):
        catalog = self.write_catalog(tmp_path)
        result = lint_source(
            tmp_path,
            "registry.inc('exec.tasks')\n"
            "registry.inc('exec.surprise')\n",
            catalog_paths=[catalog],
            stale_check=False,
            ignore={"metric-stale"},
        )
        uncataloged = [
            f for f in result.findings if f.rule == "metric-uncataloged"
        ]
        assert [f.symbol for f in uncataloged] == ["exec.surprise"]
        assert uncataloged[0].line == 2

    def test_fstring_emission_matches_placeholder_entry(self, tmp_path):
        catalog = self.write_catalog(tmp_path)
        result = lint_source(
            tmp_path,
            "registry.inc(f'quality.{name}.tp')\n",
            catalog_paths=[catalog],
            ignore={"metric-stale"},
        )
        assert "metric-uncataloged" not in rule_ids(result)

    def test_stale_catalog_entry_flagged(self, tmp_path):
        catalog = self.write_catalog(tmp_path)
        result = lint_source(
            tmp_path,
            "registry.inc('exec.tasks')\n"
            "registry.inc(f'quality.{name}.{cell}')\n"
            "with span('exec.map'):\n"
            "    pass\n",
            catalog_paths=[catalog],
        )
        stale = [f for f in result.findings if f.rule == "metric-stale"]
        assert [f.symbol for f in stale] == ["ghost.metric"]
        assert stale[0].path.endswith("CATALOG.md")

    def test_span_outside_with_flagged(self, tmp_path):
        catalog = self.write_catalog(tmp_path)
        result = lint_source(
            tmp_path,
            "from repro.obs import span\n"
            "record = span('exec.map')\n",
            catalog_paths=[catalog],
            ignore={"metric-stale"},
        )
        assert "span-balance" in rule_ids(result)

    def test_manual_record_span_outside_obs_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def leak(registry, record):\n"
            "    registry.record_span(record)\n",
        )
        assert "span-balance" in rule_ids(result)

    def test_with_span_clean(self, tmp_path):
        catalog = self.write_catalog(tmp_path)
        result = lint_source(
            tmp_path,
            "from repro.obs import span\n"
            "with span('exec.map') as record:\n"
            "    record.annotate(n=1)\n",
            catalog_paths=[catalog],
            ignore={"metric-stale"},
        )
        assert "span-balance" not in rule_ids(result)


class TestCatalogHelpers:
    def test_expand_braces(self):
        assert expand_braces("a.{x,y}.b") == ["a.x.b", "a.y.b"]
        assert expand_braces("plain") == ["plain"]
        assert sorted(expand_braces("{a,b}.{c,d}")) == [
            "a.c", "a.d", "b.c", "b.d",
        ]

    def test_pattern_to_glob(self):
        assert pattern_to_glob("detector.<kind>.calls") == "detector.*.calls"

    def test_globs_intersect(self):
        assert globs_intersect("exec.tasks", "exec.tasks")
        assert globs_intersect("quality.*.*", "quality.*.tp")
        assert globs_intersect("span.*.seconds", "span.exec.map.seconds")
        assert not globs_intersect("drift.checks", "drift.*.violations")
        assert not globs_intersect("exec.tasks", "exec.chunks")

    def test_parse_catalog_rows(self):
        entries = parse_catalog_text(CATALOG_MD, "CATALOG.md")
        names = {entry.name for entry in entries}
        assert "quality.<detector>.tp" in names
        assert "quality.<detector>.fp" in names
        assert "ghost.metric" in names
        kinds = {entry.name: entry.kind for entry in entries}
        assert kinds["ghost.metric"] == "gauge"


# --------------------------------------------------------------------- #
# Unordered iteration near fingerprints
# --------------------------------------------------------------------- #


class TestUnorderedIterRule:
    HEADER = "from repro.exec.hashing import stable_fingerprint\n"

    def test_set_iteration_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            self.HEADER
            + "def digest(parts):\n"
            "    out = []\n"
            "    for part in set(parts):\n"
            "        out.append(part)\n"
            "    return stable_fingerprint(out)\n",
        )
        (finding,) = [f for f in result.findings if f.rule == "unordered-iter"]
        assert finding.line == 4

    def test_keys_iteration_in_comprehension_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            self.HEADER
            + "def digest(mapping):\n"
            "    return [mapping[k] for k in mapping.keys()]\n",
        )
        assert "unordered-iter" in rule_ids(result)

    def test_sorted_wrapping_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            self.HEADER
            + "def digest(parts, mapping):\n"
            "    a = [p for p in sorted(set(parts))]\n"
            "    b = [mapping[k] for k in sorted(mapping.keys())]\n"
            "    return a, b\n",
        )
        assert "unordered-iter" not in rule_ids(result)

    def test_rule_scoped_to_hashing_importers(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def harmless(parts):\n"
            "    return [p for p in set(parts)]\n",
        )
        assert "unordered-iter" not in rule_ids(result)


# --------------------------------------------------------------------- #
# Framework: pragmas, baseline, JSON schema, CLI
# --------------------------------------------------------------------- #


class TestFramework:
    BAD = "import time\nstamp = time.time()\n"

    def test_pragma_suppresses_named_rule(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import time\n"
            "stamp = time.time()  # lint: ignore[wall-clock]\n",
        )
        assert "wall-clock" not in rule_ids(result)
        assert result.pragma_suppressed == 1

    def test_bare_pragma_suppresses_everything(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import time\n"
            "stamp = time.time()  # lint: ignore\n",
        )
        assert result.ok

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import time\n"
            "stamp = time.time()  # lint: ignore[rng-unseeded]\n",
        )
        assert "wall-clock" in rule_ids(result)

    def test_baseline_filters_known_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.BAD)
        config = LintConfig()
        first = run_lint([str(target)], config)
        assert not first.ok

        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(baseline_payload(first.findings), indent=2)
        )
        second = run_lint(
            [str(target)], LintConfig(baseline_path=str(baseline))
        )
        assert second.ok
        assert len(second.baseline_findings) == 1

        # A *new* violation is still fatal under the baseline.
        target.write_text(
            self.BAD + "import numpy as np\nrng = np.random.default_rng()\n"
        )
        third = run_lint(
            [str(target)], LintConfig(baseline_path=str(baseline))
        )
        assert rule_ids(third) == {"rng-unseeded"}

    def test_baseline_keys_survive_line_moves(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.BAD)
        first = run_lint([str(target)], LintConfig())
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(baseline_payload(first.findings)))

        target.write_text("# a new comment shifts every line\n" + self.BAD)
        second = run_lint(
            [str(target)], LintConfig(baseline_path=str(baseline))
        )
        assert second.ok

    def test_json_output_schema(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.BAD)
        result = run_lint([str(target)], LintConfig())
        payload = result.to_json()
        assert payload["version"] == 1
        assert payload["tool"] == "repro.lint"
        assert payload["files_checked"] == 1
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "path", "line", "column", "message", "symbol",
        }
        assert finding["rule"] == "wall-clock"
        assert finding["line"] == 2
        assert payload["suppressed"] == {"pragma": 0, "baseline": 0}

    def test_parse_error_reported_not_raised(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        result = run_lint([str(target)], LintConfig())
        assert not result.ok
        (finding,) = result.parse_errors
        assert finding.rule == "parse-error"

    def test_select_and_ignore(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.BAD)
        selected = run_lint(
            [str(target)], LintConfig(select={"rng-unseeded"})
        )
        assert selected.ok
        ignored = run_lint(
            [str(target)], LintConfig(ignore={"wall-clock"})
        )
        assert ignored.ok

    def test_findings_sorted_and_deterministic(self, tmp_path):
        source = (
            "import time\n"
            "b = time.time()\n"
            "a = time.time()\n"
        )
        results = [lint_source(tmp_path, source) for _ in range(2)]
        lines = [[f.line for f in r.findings] for r in results]
        assert lines[0] == sorted(lines[0])
        assert lines[0] == lines[1]

    def test_main_exit_codes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        assert main([str(good)]) == 0
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out

    def test_main_update_baseline_roundtrip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "base.json"
        assert main([str(bad), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_main_json_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        out_path = tmp_path / "findings.json"
        assert main([str(bad), "--json", str(out_path)]) == 1
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["findings"][0]["rule"] == "wall-clock"


# --------------------------------------------------------------------- #
# Acceptance fixtures: one injected violation per rule family
# --------------------------------------------------------------------- #


ACCEPTANCE_FIXTURES = {
    "rng-unseeded": (
        "import numpy as np\nrng = np.random.default_rng()\n"
    ),
    "wall-clock": "import time\nstamp = time.time()\n",
    "pickle-safety": "task = SensitivityTask(hook=lambda: 0)\n",
    "metric-uncataloged": "registry.inc('totally.new.metric')\n",
    "span-balance": (
        "from repro.obs import span\nopened = span('exec.map')\n"
    ),
    "unordered-iter": (
        "from repro.exec.hashing import derive_seed\n"
        "def seed_parts(parts):\n"
        "    return [derive_seed(0, p) for p in set(parts)]\n"
    ),
}


@pytest.mark.parametrize("rule_id", sorted(ACCEPTANCE_FIXTURES))
def test_each_rule_family_fails_structurally(rule_id, tmp_path):
    """Each injected violation yields a structured JSON finding naming the
    rule id, file, and line -- and a non-zero exit through main()."""
    target = tmp_path / f"{rule_id.replace('-', '_')}_fixture.py"
    target.write_text(ACCEPTANCE_FIXTURES[rule_id])
    catalogs = [str(REPO_ROOT / "docs/API.md")]
    config = LintConfig(catalog_paths=catalogs, stale_check=False,
                        ignore={"metric-stale"})
    result = run_lint([str(target)], config)
    payload = result.to_json()
    matches = [f for f in payload["findings"] if f["rule"] == rule_id]
    assert matches, f"no {rule_id} finding in {payload['findings']}"
    assert matches[0]["path"].endswith(target.name)
    assert matches[0]["line"] >= 1


# --------------------------------------------------------------------- #
# Self-check: the repo's own src/ tree is clean
# --------------------------------------------------------------------- #


class TestRepoSelfCheck:
    def test_src_tree_clean_with_committed_baseline(self):
        config = LintConfig(
            baseline_path=str(REPO_ROOT / ".repro-lint-baseline.json"),
            catalog_paths=[
                str(REPO_ROOT / "docs/API.md"),
                str(REPO_ROOT / "docs/OBSERVABILITY.md"),
            ],
        )
        result = run_lint([str(REPO_ROOT / "src")], config)
        assert result.ok, "\n" + result.to_text()

    def test_module_invocation_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_catalog_parity_needs_no_baseline_entries(self):
        baseline = json.loads(
            (REPO_ROOT / ".repro-lint-baseline.json").read_text()
        )
        catalog_rules = {"metric-uncataloged", "metric-stale"}
        assert not [
            entry
            for entry in baseline["entries"]
            if entry["rule"] in catalog_rules
        ]

    def test_default_rule_battery_is_complete(self):
        ids = {rule.id for rule in default_rules(LintConfig())}
        assert ids == {
            "rng-unseeded",
            "rng-global-state",
            "rng-missing-param",
            "wall-clock",
            "pickle-safety",
            "metric-uncataloged",
            "metric-stale",
            "span-balance",
            "unordered-iter",
            "alert-unknown-metric",
            "rng-taint",
            "worker-state-mutation",
            "pickle-reachability",
            "wallclock-fingerprint",
            "span-escape",
        }

    def test_finding_ordering_is_total(self):
        a = Finding("a.py", 1, 0, "r", "m")
        b = Finding("a.py", 2, 0, "r", "m")
        assert sorted([b, a]) == [a, b]


class TestAlertRuleMetricRule:
    CATALOG = (
        "| metric | kind | meaning |\n"
        "| --- | --- | --- |\n"
        "| `drift.warnings` | counter | drift warnings raised |\n"
        "| `alert.latency_epochs` | histogram | firing latency |\n"
    )

    def run_rule(self, tmp_path, rules_text, name="rules.toml"):
        catalog = tmp_path / "catalog.md"
        catalog.write_text(self.CATALOG, encoding="utf-8")
        rule_file = tmp_path / name
        rule_file.write_text(rules_text, encoding="utf-8")
        config = LintConfig(
            select={"alert-unknown-metric"},
            catalog_paths=[str(catalog)],
            alert_rule_paths=[str(rule_file)],
        )
        return run_lint([], config)

    def test_unknown_metric_flagged(self, tmp_path):
        result = self.run_rule(
            tmp_path,
            '[[rule]]\nname = "r"\nmetric = "no.such.metric"\n',
        )
        (finding,) = result.findings
        assert finding.rule == "alert-unknown-metric"
        assert "no.such.metric" in finding.message
        assert finding.symbol == "r:no.such.metric"

    def test_catalogued_metric_clean(self, tmp_path):
        result = self.run_rule(
            tmp_path, '[[rule]]\nname = "r"\nmetric = "drift.warnings"\n'
        )
        assert result.findings == []

    def test_histogram_derived_series_resolves(self, tmp_path):
        # <histogram>.p90 strips the derived-series suffix and matches
        # the catalogued histogram entry.
        result = self.run_rule(
            tmp_path,
            '[[rule]]\nname = "r"\nmetric = "alert.latency_epochs.p90"\n',
        )
        assert result.findings == []

    def test_derived_suffix_needs_histogram_kind(self, tmp_path):
        # drift.warnings is a counter: .p90 must not resolve through it.
        result = self.run_rule(
            tmp_path, '[[rule]]\nname = "r"\nmetric = "drift.warnings.p90"\n'
        )
        assert len(result.findings) == 1

    def test_unloadable_rule_file_flagged(self, tmp_path):
        result = self.run_rule(
            tmp_path, '[[rule]]\nname = "r"\nbogus_key = 1\n'
        )
        (finding,) = result.findings
        assert "cannot load" in finding.message

    def test_committed_rulesets_pass_against_repo_catalogs(self):
        rule_dir = REPO_ROOT / "src/repro/obs/alert_rules"
        config = LintConfig(
            select={"alert-unknown-metric"},
            catalog_paths=[
                str(REPO_ROOT / "docs/API.md"),
                str(REPO_ROOT / "docs/OBSERVABILITY.md"),
            ],
            alert_rule_paths=[
                str(p) for p in sorted(rule_dir.iterdir())
                if p.suffix in (".toml", ".json")
            ],
        )
        result = run_lint([], config)
        assert result.ok, "\n" + result.to_text()


# --------------------------------------------------------------------- #
# functools.partial payloads (pickle-safety extension)
# --------------------------------------------------------------------- #


class TestPartialPickleSafety:
    def test_partial_over_local_def_into_map_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "from functools import partial\n"
            "def dispatch(evaluator, items):\n"
            "    def score(item):\n"
            "        return item + 1\n"
            "    return evaluator.map(partial(score, 2), items)\n",
        )
        (finding,) = [f for f in result.findings if f.rule == "pickle-safety"]
        assert "partial" in finding.message and "score" in finding.message

    def test_partial_over_lambda_into_task_ctor_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import functools\n"
            "task = RegionProbeTask(\n"
            "    probe=functools.partial(lambda x: x, 1),\n"
            ")\n",
        )
        (finding,) = [f for f in result.findings if f.rule == "pickle-safety"]
        assert "partial" in finding.message and "lambda" in finding.message

    def test_partial_over_module_level_function_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            "from functools import partial\n"
            "def score(item, scale):\n"
            "    return item * scale\n"
            "def run(evaluator, items):\n"
            "    return evaluator.map(partial(score, scale=2.0), items)\n",
        )
        assert "pickle-safety" not in rule_ids(result)

    def test_partial_inside_container_argument_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "from functools import partial\n"
            "def run(evaluator, items):\n"
            "    hooks = [partial(lambda x: x, 1)]\n"
            "    return evaluator.map(items, hooks=[partial(lambda y: y, 2)])\n",
        )
        assert "pickle-safety" in rule_ids(result)


# --------------------------------------------------------------------- #
# Pragma windows: decorators and multiline calls
# --------------------------------------------------------------------- #


class TestPragmaWindows:
    def test_pragma_on_decorator_line_suppresses_def_finding(self, tmp_path):
        bare = lint_source(
            tmp_path,
            "import functools\n"
            "@functools.lru_cache\n"
            "def generate_ratings(count):\n"
            "    return [0] * count\n",
        )
        assert "rng-missing-param" in rule_ids(bare)
        blessed = lint_source(
            tmp_path,
            "import functools\n"
            "@functools.lru_cache  # lint: ignore[rng-missing-param]\n"
            "def generate_ratings(count):\n"
            "    return [0] * count\n",
        )
        assert "rng-missing-param" not in rule_ids(blessed)

    def test_pragma_on_multiline_call_continuation_suppresses(self, tmp_path):
        bare = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            ")\n",
        )
        assert "rng-unseeded" in rule_ids(bare)
        blessed = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            ")  # lint: ignore[rng-unseeded]\n",
        )
        assert "rng-unseeded" not in rule_ids(blessed)

    def test_pragma_on_multiline_task_ctor_suppresses_pickle_safety(self, tmp_path):
        blessed = lint_source(
            tmp_path,
            "task = RegionProbeTask(\n"
            "    probe=lambda: 1,\n"
            "    bias=2.0,\n"
            ")  # lint: ignore[pickle-safety]\n",
        )
        assert "pickle-safety" not in rule_ids(blessed)

    def test_update_baseline_is_stable_across_reruns(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n"
            "stamp = time.time()\n"
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        baseline = tmp_path / "base.json"
        assert main([str(bad), "--baseline", str(baseline), "--update-baseline"]) == 0
        first = baseline.read_text()
        assert main([str(bad), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.read_text() == first
        # The refreshed baseline still grandfathers after unrelated edits
        # shift every line.
        bad.write_text("# comment\n# comment\n" + bad.read_text())
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()


# --------------------------------------------------------------------- #
# Whole-program plumbing: cache stats, changed-only scope, SARIF, selfcheck
# --------------------------------------------------------------------- #


class TestAnalysisPlumbing:
    SOURCE = "def build(seed):\n    return seed\n"

    def test_cache_cold_then_warm_stats(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.SOURCE)
        cache = tmp_path / "cache.json"
        cold = run_lint([str(target)], LintConfig(cache_path=str(cache)))
        assert cold.analysis["analyzed"] and not cold.analysis["cached"]
        warm = run_lint([str(target)], LintConfig(cache_path=str(cache)))
        assert warm.analysis["cached"] and not warm.analysis["analyzed"]

    def test_edited_file_reanalyzed_on_warm_run(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.SOURCE)
        cache = tmp_path / "cache.json"
        run_lint([str(target)], LintConfig(cache_path=str(cache)))
        target.write_text(self.SOURCE + "X = 1\n")
        warm = run_lint([str(target)], LintConfig(cache_path=str(cache)))
        assert warm.analysis["analyzed"] == [str(target)]

    @staticmethod
    def _git(repo, *args):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=repo, check=True, capture_output=True,
        )

    def test_changed_only_scopes_to_dependency_closure(self, tmp_path, capsys, monkeypatch):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "alpha.py").write_text("def f():\n    return 1\n")
        (pkg / "beta.py").write_text("from pkg.alpha import f\n")
        (pkg / "gamma.py").write_text("def g():\n    return 2\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        (pkg / "alpha.py").write_text("def f():\n    return 3\n")

        monkeypatch.chdir(tmp_path)
        out_path = tmp_path / "out.json"
        code = main([
            "pkg", "--changed-only", "--no-cache", "--json", str(out_path),
        ])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert sorted(payload["analysis"]["checked"]) == [
            "pkg/alpha.py", "pkg/beta.py",
        ]
        # The whole tree was still summarized -- scope narrows checking,
        # not graph construction.
        assert "pkg/gamma.py" in payload["analysis"]["analyzed"]
        assert payload["files_checked"] == 2

    def test_sarif_export_structure(self, tmp_path):
        from repro.lint.sarif import to_sarif

        target = tmp_path / "mod.py"
        target.write_text("import time\nstamp = time.time()\n")
        config = LintConfig()
        result = run_lint([str(target)], config)
        sarif = to_sarif(result, default_rules(config))
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        rule_index = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "wall-clock" in rule_index and "rng-taint" in rule_index
        (entry,) = run["results"]
        assert entry["ruleId"] == "wall-clock"
        region = entry["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert "repro/baselineKey/v1" in entry["partialFingerprints"]
        assert "suppressions" not in entry

    def test_sarif_marks_baselined_findings_suppressed(self, tmp_path):
        from repro.lint.sarif import to_sarif

        target = tmp_path / "mod.py"
        target.write_text("import time\nstamp = time.time()\n")
        first = run_lint([str(target)], LintConfig())
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(baseline_payload(first.findings)))
        config = LintConfig(baseline_path=str(baseline))
        result = run_lint([str(target)], config)
        assert result.ok
        sarif = to_sarif(result, default_rules(config))
        (entry,) = sarif["runs"][0]["results"]
        assert entry["suppressions"][0]["kind"] == "external"

    def test_selfcheck_matches_committed_corpus(self):
        from repro.lint.selfcheck import run_selfcheck

        ok, lines = run_selfcheck(
            str(REPO_ROOT / "tests/fixtures/lint_corpus")
        )
        assert ok, "\n".join(lines)
        assert lines[-1].endswith("OK")

    def test_selfcheck_fails_on_missing_expectations(self, tmp_path):
        from repro.lint.selfcheck import run_selfcheck

        ok, lines = run_selfcheck(str(tmp_path))
        assert not ok
        assert "no" in lines[0]
