"""Unit tests for experiment result dataclasses and their text renderers."""

import numpy as np
import pytest

from repro.analysis.bias_variance import Region, SubmissionPoint
from repro.analysis.correlation_exp import CorrelationRow
from repro.analysis.time_domain import TimePoint
from repro.attacks.optimizer import (
    RegionSearchResult,
    SearchArea,
    SearchRound,
)
from repro.experiments.ablations import AblationResult
from repro.experiments.boosting import BoostingAnalysis
from repro.experiments.figures import (
    BiasVarianceFigure,
    CorrelationFigure,
    HeadlineComparison,
    OperatingPoints,
    RegionSearchFigure,
    TimeAnalysisFigure,
)
from repro.experiments.forgetting import ForgettingStudy


def make_point(sid="s0", bias=-2.0, std=0.8, mp=1.0, marks=None):
    return SubmissionPoint(
        submission_id=sid, strategy="smart", bias=bias, std=std,
        product_mp=mp, total_mp=mp, marks=marks or set(),
    )


class TestBiasVarianceFigure:
    def figure(self):
        points = (
            make_point("s0", marks={"AMP", "LMP"}),
            make_point("s1", bias=-3.5, std=0.1, mp=0.5, marks={"LMP"}),
            make_point("s2", bias=0.5, mp=0.2),
        )
        return BiasVarianceFigure(
            scheme_name="P",
            product_id="tv1",
            points=points,
            winner_region_counts={
                Region.R1: 1, Region.R2: 0, Region.R3: 1, Region.OTHER: 0
            },
            dominant_region=Region.R3,
            winner_centroid=(-2.75, 0.45),
        )

    def test_text_contains_marked_points_and_summary(self):
        text = self.figure().to_text()
        assert "s0" in text and "s1" in text
        assert "s2" not in text  # unmarked points are not listed
        assert "dominant winner region: R3" in text
        assert "winner centroid" in text

    def test_max_points_truncation(self):
        text = self.figure().to_text(max_points=1)
        assert "s0" in text
        assert "s1" not in text


class TestRegionSearchFigure:
    def test_beats_population_flag(self):
        area = SearchArea(-2.5, -2.0, 0.9, 1.1)
        result = RegionSearchResult(
            rounds=(
                SearchRound(
                    area=SearchArea(-4, 0, 0, 2),
                    subareas=(area,),
                    scores=(1.5,),
                    best_index=0,
                ),
            ),
            final_area=area,
            best_mp=1.5,
        )
        figure = RegionSearchFigure(
            scheme_name="P", search=result, population_max_mp=1.2
        )
        assert figure.beats_population
        text = figure.to_text()
        assert "beaten: yes" in text or "beaten: True" in text

    def test_not_beaten(self):
        area = SearchArea(-2.5, -2.0, 0.9, 1.1)
        result = RegionSearchResult(rounds=(), final_area=area, best_mp=0.9)
        figure = RegionSearchFigure(
            scheme_name="P", search=result, population_max_mp=1.2
        )
        assert not figure.beats_population


class TestTimeAnalysisFigure:
    def test_text(self):
        figure = TimeAnalysisFigure(
            scheme_name="P",
            product_id="tv1",
            points=(TimePoint("s0", "smart", 2.0, 0.5),),
            bin_centers=np.array([1.0, 3.0]),
            max_envelope=np.array([0.2, 0.5]),
            mean_envelope=np.array([0.1, 0.3]),
            best_interval=3.0,
            interior_optimum=False,
        )
        text = figure.to_text()
        assert "best interval" in text
        assert "3.00" in text


class TestCorrelationFigure:
    def test_text(self):
        figure = CorrelationFigure(
            scheme_name="P",
            rows=(CorrelationRow("s0", 1.0, 1.1, (0.9, 1.0)),),
            heuristic_win_fraction=1.0,
        )
        text = figure.to_text()
        assert "100%" in text
        assert "s0" in text


class TestHeadlineComparison:
    def test_ratios(self):
        headline = HeadlineComparison(max_mp={"P": 1.0, "SA": 3.0, "BF": 2.0})
        assert headline.p_to_sa_ratio == pytest.approx(1.0 / 3.0)
        assert headline.p_to_bf_ratio == pytest.approx(0.5)
        assert "P/SA ratio" in headline.to_text()


class TestOperatingPoints:
    def test_text(self):
        points = OperatingPoints(
            false_alarm_rate=0.001,
            attack_rows=(("burst", 1.0, 0.0),),
        )
        text = points.to_text()
        assert "burst" in text
        assert "0.0010" in text


class TestAblationResult:
    def test_text(self):
        result = AblationResult(
            attack_names=("burst",),
            variant_names=("full", "no-path1"),
            mp={"full": {"burst": 0.1}, "no-path1": {"burst": 1.0}},
            sa_mp={"burst": 2.0},
        )
        text = result.to_text()
        assert "no-path1" in text
        assert "SA (ref)" in text


class TestBoostingAnalysis:
    def test_properties_and_text(self):
        analysis = BoostingAnalysis(
            headroom={
                "SA": [(1.0, 0.2, 0.3), (3.0, 0.25, 0.9)],
                "P": [(1.0, 0.1, 0.1), (3.0, 0.1, 0.02)],
            },
            ump_mp_spread=0.1,
            lmp_mp_spread=0.4,
        )
        assert analysis.boost_weaker_under_sa
        assert analysis.boost_saturates
        assert analysis.resolution_ratio == pytest.approx(0.25)
        assert "headroom" in analysis.to_text()

    def test_nan_resolution_when_no_lmp_spread(self):
        analysis = BoostingAnalysis(
            headroom={"SA": [(1.0, 0.1, 0.2)], "P": [(1.0, 0.1, 0.1)]},
            ump_mp_spread=0.1,
            lmp_mp_spread=0.0,
        )
        assert np.isnan(analysis.resolution_ratio)


class TestForgettingStudy:
    def test_text(self):
        study = ForgettingStudy(
            factors=(1.0, 0.5),
            two_strike_mp=(0.06, 0.08),
            marked_rater_final_trust=(0.6, 0.75),
        )
        text = study.to_text()
        assert "two-strike MP" in text
        assert "0.500" in text
