"""Unit tests for peak finding, U-shape detection, and segmentation."""

import numpy as np
import pytest

from repro.signal.curves import Curve
from repro.signal.peaks import Peak, detect_u_shape, find_peaks
from repro.signal.segmentation import segment_bounds_from_peaks, segment_labels


def make_curve(values):
    values = np.asarray(values, dtype=float)
    n = values.size
    return Curve(
        kind="MC",
        times=np.arange(n, dtype=float),
        indices=np.arange(n),
        values=values,
    )


def peak_at(index, height=10.0):
    return Peak(position=index, index=index, time=float(index), height=height)


class TestFindPeaks:
    def test_single_peak(self):
        curve = make_curve([0, 1, 5, 1, 0])
        peaks = find_peaks(curve, threshold=2.0)
        assert [p.position for p in peaks] == [2]
        assert peaks[0].height == 5.0

    def test_threshold_filters(self):
        curve = make_curve([0, 3, 0, 8, 0])
        assert [p.position for p in find_peaks(curve, 5.0)] == [3]

    def test_endpoint_peaks_allowed(self):
        curve = make_curve([9, 1, 0, 1, 7])
        positions = [p.position for p in find_peaks(curve, 0.5)]
        assert 0 in positions and 4 in positions

    def test_min_separation_suppresses_lower_neighbour(self):
        curve = make_curve([0, 5, 4.8, 0, 0, 0, 3, 0])
        peaks = find_peaks(curve, 1.0, min_separation=3)
        positions = [p.position for p in peaks]
        assert 1 in positions and 6 in positions
        assert 2 not in positions

    def test_plateau_counts_once(self):
        curve = make_curve([0, 5, 5, 5, 0])
        peaks = find_peaks(curve, 1.0, min_separation=1)
        # plateau edges are candidates; non-max suppression by separation 1
        # keeps them, but they must all have the plateau height
        assert all(p.height == 5.0 for p in peaks)
        assert len(peaks) >= 1

    def test_empty_curve(self):
        assert find_peaks(make_curve([]), 1.0) == []

    def test_flat_curve_no_peaks(self):
        assert find_peaks(make_curve([2, 2, 2, 2]), 1.0) == []


class TestDetectUShape:
    def test_two_peaks_with_valley(self):
        values = [0, 0, 10, 1, 1, 1, 9, 0, 0]
        shape = detect_u_shape(make_curve(values), threshold=2.0, min_separation=2)
        assert shape is not None
        assert shape.left.position == 2
        assert shape.right.position == 6
        assert shape.start_time == 2.0
        assert shape.stop_time == 6.0
        assert shape.duration == 4.0

    def test_single_peak_no_shape(self):
        assert detect_u_shape(make_curve([0, 10, 0]), 1.0) is None

    def test_shallow_valley_rejected(self):
        # Valley at 8 > half the lower peak (10/2): not a U-shape.
        values = [0, 10, 8, 8, 10, 0]
        assert detect_u_shape(make_curve(values), 1.0, min_separation=2) is None

    def test_empty_curve(self):
        assert detect_u_shape(make_curve([]), 1.0) is None

    def test_picks_highest_pair(self):
        values = [0, 6, 0, 20, 0, 18, 0, 5, 0]
        shape = detect_u_shape(make_curve(values), 1.0, min_separation=2)
        assert (shape.left.position, shape.right.position) == (3, 5)


class TestSegmentation:
    def test_no_peaks_single_segment(self):
        assert segment_bounds_from_peaks(10, []) == [(0, 10)]

    def test_two_peaks_three_segments(self):
        bounds = segment_bounds_from_peaks(10, [peak_at(3), peak_at(7)])
        assert bounds == [(0, 3), (3, 7), (7, 10)]

    def test_out_of_range_peaks_dropped(self):
        bounds = segment_bounds_from_peaks(10, [peak_at(0), peak_at(10), peak_at(5)])
        assert bounds == [(0, 5), (5, 10)]

    def test_duplicate_peaks_merged(self):
        bounds = segment_bounds_from_peaks(10, [peak_at(4), peak_at(4)])
        assert bounds == [(0, 4), (4, 10)]

    def test_empty_series(self):
        assert segment_bounds_from_peaks(0, [peak_at(1)]) == []

    def test_negative_length_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            segment_bounds_from_peaks(-1, [])

    def test_labels(self):
        labels = segment_labels(6, [peak_at(2), peak_at(4)])
        np.testing.assert_array_equal(labels, [0, 0, 1, 1, 2, 2])

    def test_segments_partition_series(self):
        bounds = segment_bounds_from_peaks(50, [peak_at(i) for i in (10, 20, 30)])
        covered = sorted(i for start, stop in bounds for i in range(start, stop))
        assert covered == list(range(50))
