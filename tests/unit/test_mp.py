"""Unit tests for the Manipulation Power metric."""

import numpy as np
import pytest

from repro.aggregation.simple import SimpleAveragingScheme
from repro.errors import ValidationError
from repro.marketplace.mp import (
    manipulation_power,
    month_edges,
    monthly_deltas,
)
from repro.types import RatingDataset, RatingStream


def fair_world():
    """Two products, constant value 4.0, two ratings/day for 90 days."""
    streams = []
    for pid in ("a", "b"):
        times = np.repeat(np.arange(90, dtype=float), 2) + 0.25
        values = np.full(times.size, 4.0)
        raters = [f"{pid}_u{i}" for i in range(times.size)]
        streams.append(RatingStream(pid, times, values, raters))
    return RatingDataset(streams)


def attack_stream(pid, month, value=0.0, n=30):
    """n unfair ratings of `value` placed inside the given 30-day month."""
    start = 30.0 * month + 5.0
    times = np.linspace(start, start + 20.0, n)
    return RatingStream(
        pid, times, np.full(n, value), [f"atk{i}" for i in range(n)],
        unfair=np.ones(n, dtype=bool),
    )


class TestMonthEdges:
    def test_exact_periods(self):
        np.testing.assert_allclose(month_edges(0.0, 90.0), [0, 30, 60, 90])

    def test_partial_period_extends(self):
        edges = month_edges(0.0, 82.0)
        np.testing.assert_allclose(edges, [0, 30, 60, 90])

    def test_short_span_single_period(self):
        np.testing.assert_allclose(month_edges(0.0, 10.0), [0, 30])

    def test_custom_period(self):
        np.testing.assert_allclose(month_edges(0.0, 20.0, 10.0), [0, 10, 20])

    def test_invalid_span(self):
        with pytest.raises(ValidationError):
            month_edges(10.0, 10.0)


class TestMonthlyDeltas:
    def test_zero_without_attack(self):
        fair = fair_world()
        deltas = monthly_deltas(
            SimpleAveragingScheme(), fair, fair, start_day=0.0, end_day=90.0
        )
        for arr in deltas.values():
            np.testing.assert_allclose(arr, 0.0)

    def test_attack_shifts_only_target_month(self):
        fair = fair_world()
        attacked = fair.merge({"a": attack_stream("a", month=1)})
        deltas = monthly_deltas(
            SimpleAveragingScheme(), attacked, fair, start_day=0.0, end_day=90.0
        )
        assert deltas["a"][0] == pytest.approx(0.0)
        assert deltas["a"][1] > 0.5
        assert deltas["a"][2] == pytest.approx(0.0)
        np.testing.assert_allclose(deltas["b"], 0.0)

    def test_infers_span_from_fair_data(self):
        fair = fair_world()
        attacked = fair.merge({"a": attack_stream("a", month=0)})
        deltas = monthly_deltas(SimpleAveragingScheme(), attacked, fair)
        assert deltas["a"].size >= 3


class TestManipulationPower:
    def test_top_two_months_counted(self):
        fair = fair_world()
        extra = attack_stream("a", 0).merge(attack_stream("a", 1)).merge(
            attack_stream("a", 2)
        )
        attacked = fair.merge({"a": extra})
        result = manipulation_power(
            SimpleAveragingScheme(), attacked, fair, start_day=0.0, end_day=90.0
        )
        deltas = np.sort(result.deltas["a"])[::-1]
        assert result.per_product["a"] == pytest.approx(deltas[0] + deltas[1])
        # The third attacked month is NOT counted.
        assert result.per_product["a"] < deltas.sum()

    def test_total_sums_products(self):
        fair = fair_world()
        attacked = fair.merge(
            {"a": attack_stream("a", 1), "b": attack_stream("b", 1)}
        )
        result = manipulation_power(
            SimpleAveragingScheme(), attacked, fair, start_day=0.0, end_day=90.0
        )
        assert result.total == pytest.approx(
            result.per_product["a"] + result.per_product["b"]
        )

    def test_single_month_counts_once(self):
        fair = fair_world()
        attacked = fair.merge({"a": attack_stream("a", 1)})
        result = manipulation_power(
            SimpleAveragingScheme(), attacked, fair, start_day=0.0, end_day=90.0
        )
        top = np.sort(result.deltas["a"])[::-1]
        assert result.per_product["a"] == pytest.approx(top[0] + top[1])
        assert top[1] == pytest.approx(0.0)

    def test_boost_and_downgrade_both_count(self):
        fair = fair_world()
        attacked = fair.merge({"a": attack_stream("a", 1, value=5.0)})
        result = manipulation_power(
            SimpleAveragingScheme(), attacked, fair, start_day=0.0, end_day=90.0
        )
        assert result.per_product["a"] > 0.0

    def test_top_months(self):
        fair = fair_world()
        attacked = fair.merge({"a": attack_stream("a", 2)})
        result = manipulation_power(
            SimpleAveragingScheme(), attacked, fair, start_day=0.0, end_day=90.0
        )
        first, _second = result.top_months("a")
        assert first == 2

    def test_scheme_name_recorded(self):
        fair = fair_world()
        result = manipulation_power(
            SimpleAveragingScheme(), fair, fair, start_day=0.0, end_day=90.0
        )
        assert result.scheme_name == "SA"

    def test_nan_months_contribute_zero(self):
        # Product "c" exists only in months 0-1: month 2 scores are NaN.
        times = np.linspace(0.0, 55.0, 40)
        stream = RatingStream("c", times, np.full(40, 4.0), [f"u{i}" for i in range(40)])
        fair = RatingDataset([stream])
        result = manipulation_power(
            SimpleAveragingScheme(), fair, fair, start_day=0.0, end_day=90.0
        )
        assert result.per_product["c"] == 0.0
