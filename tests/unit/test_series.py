"""Unit tests for repro.obs.series: recorder, stream sink, OpenMetrics."""

import math
import pickle
from pathlib import Path

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry
from repro.obs.series import (
    MetricsStreamWriter,
    TimeSeriesRecorder,
    flatten_registry,
    parse_openmetrics,
    read_metrics_stream,
    render_openmetrics,
)

GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "fixtures"
    / "openmetrics_golden.txt"
)


def golden_registry() -> MetricsRegistry:
    """The registry the committed OpenMetrics golden file was made from."""
    registry = MetricsRegistry()
    registry.inc("online.epochs_closed", 3)
    registry.inc("drift.warnings", 2)
    registry.inc("alert.events", 1)
    registry.set_gauge("alert.active", 1.0)
    registry.set_gauge("series.metrics", 12.0)
    for value in (0.0, 1.0, 1.0, 2.0, 5.0):
        registry.observe("alert.latency_epochs", value)
    return registry


class TestFlattenRegistry:
    def test_counters_and_gauges_flatten(self):
        registry = MetricsRegistry()
        registry.inc("drift.warnings", 2)
        registry.set_gauge("alert.active", 3.0)
        flat = flatten_registry(registry)
        assert flat["drift.warnings"] == 2.0
        assert flat["alert.active"] == 3.0

    def test_non_finite_gauge_skipped(self):
        registry = MetricsRegistry()
        registry.set_gauge("alert.active", float("nan"))
        registry.set_gauge("series.metrics", float("inf"))
        assert flatten_registry(registry) == {}

    def test_ignored_prefixes_dropped(self):
        registry = MetricsRegistry()
        registry.inc("exec.tasks", 5)
        registry.inc("ledger.appends", 1)
        registry.observe("span.detect.seconds", 0.5)
        registry.inc("drift.warnings")
        assert set(flatten_registry(registry)) == {"drift.warnings"}

    def test_histogram_derived_series(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("alert.latency_epochs", value)
        flat = flatten_registry(registry)
        assert flat["alert.latency_epochs.count"] == 3.0
        assert flat["alert.latency_epochs.mean"] == pytest.approx(2.0)
        assert flat["alert.latency_epochs.max"] == 3.0
        assert "alert.latency_epochs.p50" in flat
        assert "alert.latency_epochs.p90" in flat

    def test_timing_histograms_export_count_only(self):
        registry = MetricsRegistry()
        registry.observe("detector.HC.seconds", 0.25)
        flat = flatten_registry(registry)
        assert flat == {"detector.HC.seconds.count": 1.0}
        detailed = flatten_registry(registry, timing_detail=True)
        assert detailed["detector.HC.seconds.mean"] == pytest.approx(0.25)


class TestTimeSeriesRecorder:
    def test_fresh_recorder_is_empty(self):
        recorder = TimeSeriesRecorder()
        assert recorder.empty
        assert recorder.names() == []
        assert recorder.latest() == {}
        assert recorder.last_epoch is None

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            TimeSeriesRecorder(capacity=0)

    def test_single_epoch_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("drift.warnings", 4)
        recorder = TimeSeriesRecorder()
        events = recorder.record_epoch(0, registry)
        assert events == []
        assert not recorder.empty
        assert recorder.series("drift.warnings") == [(0, 4.0)]
        assert recorder.last_epoch == 0

    def test_self_telemetry_appears_from_next_epoch(self):
        # The snapshot is taken before series.* bumps: deterministic
        # regardless of how many metrics the epoch itself added.
        registry = MetricsRegistry()
        registry.inc("drift.warnings")
        recorder = TimeSeriesRecorder()
        recorder.record_epoch(0, registry)
        assert "series.snapshots" not in recorder.names()
        recorder.record_epoch(1, registry)
        assert recorder.series("series.snapshots") == [(1, 1.0)]

    def test_ring_wraparound_keeps_most_recent(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(capacity=4)
        for epoch in range(10):
            registry.inc("online.epochs_closed")
            recorder.record_epoch(epoch, registry)
        points = recorder.series("online.epochs_closed")
        assert [epoch for epoch, _ in points] == [6, 7, 8, 9]
        assert registry.counter_value("series.dropped_points") > 0

    def test_same_epoch_resolves_to_max(self):
        registry = MetricsRegistry()
        registry.inc("drift.warnings", 2)
        recorder = TimeSeriesRecorder()
        recorder.record_epoch(3, registry)
        registry.inc("drift.warnings", 5)
        recorder.record_epoch(3, registry)
        assert recorder.series("drift.warnings") == [(3, 7.0)]

    def test_ingest_skips_non_finite(self):
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(0, {"a": 1.0, "b": float("nan")})
        assert recorder.names() == ["a"]

    def test_merge_is_order_independent(self):
        def build(epochs):
            recorder = TimeSeriesRecorder()
            for epoch, value in epochs:
                recorder.ingest_snapshot(epoch, {"m": value})
            return recorder

        a = build([(0, 1.0), (2, 5.0)])
        b = build([(1, 3.0), (2, 4.0)])
        ab = build([])
        ab.merge_state(a.state())
        ab.merge_state(b.state())
        ba = build([])
        ba.merge_state(b.state())
        ba.merge_state(a.state())
        assert ab.state() == ba.state()
        # The epoch-2 conflict resolved to max on both sides.
        assert ab.series("m") == [(0, 1.0), (1, 3.0), (2, 5.0)]

    def test_state_pickles_and_round_trips(self):
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(0, {"m": 1.0})
        recorder.ingest_snapshot(1, {"m": 2.0})
        state = pickle.loads(pickle.dumps(recorder.state()))
        clone = TimeSeriesRecorder()
        clone.merge_state(state)
        assert clone.series("m") == recorder.series("m")
        assert clone.last_epoch == recorder.last_epoch

    def test_merge_truncates_to_capacity(self):
        big = TimeSeriesRecorder()
        for epoch in range(10):
            big.ingest_snapshot(epoch, {"m": float(epoch)})
        small = TimeSeriesRecorder(capacity=3)
        small.merge_state(big.state())
        assert [e for e, _ in small.series("m")] == [7, 8, 9]

    def test_clear_resets_points(self):
        recorder = TimeSeriesRecorder()
        recorder.ingest_snapshot(0, {"m": 1.0})
        recorder.clear()
        assert recorder.empty
        assert recorder.last_epoch is None


class TestMetricsStream:
    def test_writer_reader_round_trip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with MetricsStreamWriter(path) as writer:
            writer.write(0, {"a": 1.0, "b": 2.5})
            writer.write(1, {"a": 2.0})
        assert writer.lines_written == 2
        snapshots = read_metrics_stream(path)
        assert snapshots == [
            (0, {"a": 1.0, "b": 2.5}),
            (1, {"a": 2.0}),
        ]

    def test_corrupt_and_partial_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with MetricsStreamWriter(path) as writer:
            writer.write(0, {"a": 1.0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"epoch": 1, "metrics": {"a"')  # partial tail
        assert read_metrics_stream(path) == [(0, {"a": 1.0})]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_metrics_stream(tmp_path / "absent.jsonl") == []

    def test_recorder_streams_through_sink(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        registry = MetricsRegistry()
        registry.inc("drift.warnings")
        recorder = TimeSeriesRecorder(sink=MetricsStreamWriter(path))
        recorder.record_epoch(0, registry)
        recorder.sink.close()
        assert read_metrics_stream(path) == [(0, {"drift.warnings": 1.0})]


class TestOpenMetrics:
    def test_golden_file_up_to_date(self):
        assert render_openmetrics(golden_registry()) == GOLDEN.read_text(
            encoding="utf-8"
        )

    def test_golden_file_parses_back(self):
        parsed = parse_openmetrics(GOLDEN.read_text(encoding="utf-8"))
        assert parsed["counters"]["drift_warnings"] == 2.0
        assert parsed["counters"]["online_epochs_closed"] == 3.0
        assert parsed["gauges"]["alert_active"] == 1.0
        summary = parsed["summaries"]["alert_latency_epochs"]
        assert summary["count"] == 5.0
        assert summary["sum"] == 9.0
        assert "0.5" in summary["quantiles"]

    def test_render_parse_round_trip(self):
        registry = golden_registry()
        parsed = parse_openmetrics(render_openmetrics(registry))
        assert parsed["counters"]["alert_events"] == 1.0
        assert parsed["gauges"]["series_metrics"] == 12.0
        summary = parsed["summaries"]["alert_latency_epochs"]
        hist = registry.histogram("alert.latency_epochs")
        assert summary["quantiles"]["0.5"] == pytest.approx(
            hist.percentile(50)
        )

    def test_nan_gauge_not_exposed(self):
        registry = MetricsRegistry()
        registry.set_gauge("alert.active", math.nan)
        assert "alert_active" not in render_openmetrics(registry)

    def test_ends_with_eof(self):
        assert render_openmetrics(MetricsRegistry()).endswith("# EOF\n")

    def test_invalid_sample_line_raises(self):
        with pytest.raises(ValidationError):
            parse_openmetrics("# TYPE a counter\na_total one two\n")

    def test_sample_without_type_raises(self):
        with pytest.raises(ValidationError):
            parse_openmetrics("mystery_metric 1\n")
