"""Unit tests for cross-process telemetry capsules (repro.obs.capsule)."""

import os
import pickle

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    TelemetryCapsule,
    span,
    use_registry,
)


def populated_registry():
    registry = MetricsRegistry()
    registry.inc("detector.joint.calls", 3)
    registry.set_gauge("trust.raters", 17.0)
    for value in (0.1, 0.2, 0.7):
        registry.observe("trust.value", value)
    with use_registry(registry):
        with span("pscheme.monthly_scores"):
            with span("detect"):
                pass
    return registry


class TestCapture:
    def test_capture_carries_everything(self):
        capsule = TelemetryCapsule.capture(populated_registry())
        assert capsule.counters["detector.joint.calls"] == 3.0
        assert capsule.gauges["trust.raters"] == 17.0
        count, total, *_ = capsule.histograms["trust.value"]
        assert (count, total) == (3, pytest.approx(1.0))
        assert [s.path for s in capsule.spans] == [
            "pscheme.monthly_scores.detect",
            "pscheme.monthly_scores",
        ]
        assert capsule.pid == os.getpid()
        assert not capsule.empty

    def test_empty_capsule(self):
        assert TelemetryCapsule.capture(MetricsRegistry()).empty

    def test_capture_carries_profile_samples(self):
        registry = populated_registry()
        registry.add_profile_samples({"span:detect;f.py:g": 4.0})
        capsule = TelemetryCapsule.capture(registry)
        assert capsule.profile == {"span:detect;f.py:g": 4.0}

    def test_profile_alone_makes_a_capsule_non_empty(self):
        registry = MetricsRegistry()
        registry.add_profile_samples({"span:detect;f.py:g": 1.0})
        assert not TelemetryCapsule.capture(registry).empty

    def test_pickle_round_trip(self):
        capsule = TelemetryCapsule.capture(populated_registry())
        clone = pickle.loads(pickle.dumps(capsule))
        assert clone.counters == capsule.counters
        assert clone.histograms == capsule.histograms
        assert [s.path for s in clone.spans] == [s.path for s in capsule.spans]


class TestMerge:
    def test_counters_add_and_gauges_overwrite(self):
        parent = MetricsRegistry()
        parent.inc("detector.joint.calls", 1)
        parent.set_gauge("trust.raters", 5.0)
        TelemetryCapsule.capture(populated_registry()).merge_into(parent)
        assert parent.counter_value("detector.joint.calls") == 4.0
        assert parent.gauges["trust.raters"].value == 17.0

    def test_histograms_merge_exactly(self):
        parent = MetricsRegistry()
        parent.observe("trust.value", 0.9)
        TelemetryCapsule.capture(populated_registry()).merge_into(parent)
        merged = parent.histograms["trust.value"]
        assert merged.count == 4
        assert merged.total == pytest.approx(1.9)
        assert merged.min == pytest.approx(0.1)
        assert merged.max == pytest.approx(0.9)
        # The reservoir carries every sample, so percentiles see them all.
        assert merged.percentile(100) == pytest.approx(0.9)
        assert merged.percentile(0) == pytest.approx(0.1)

    def test_merge_twice_doubles(self):
        parent = MetricsRegistry()
        capsule = TelemetryCapsule.capture(populated_registry())
        capsule.merge_into(parent)
        capsule.merge_into(parent)
        assert parent.counter_value("detector.joint.calls") == 6.0
        assert parent.histograms["trust.value"].count == 6

    def test_spans_reparented_under_dispatch_path(self):
        parent = MetricsRegistry()
        capsule = TelemetryCapsule.capture(populated_registry())
        capsule.merge_into(parent, parent_path="exp.exec.map", base_depth=2)
        paths = {s.path: s for s in parent.spans}
        inner = paths["exp.exec.map.pscheme.monthly_scores.detect"]
        outer = paths["exp.exec.map.pscheme.monthly_scores"]
        assert outer.depth == 2
        assert inner.depth == outer.depth + 1 == 3
        assert inner.pid == capsule.pid
        # Metric names stay stable: re-parenting does not rename the
        # per-stage histograms the worker already recorded.
        assert "span.pscheme.monthly_scores.detect.seconds" in parent.histograms

    def test_adopted_spans_do_not_double_count_durations(self):
        parent = MetricsRegistry()
        TelemetryCapsule.capture(populated_registry()).merge_into(parent)
        # One observation per span from the worker-side histogram merge,
        # none added again at adoption time.
        assert parent.histograms[
            "span.pscheme.monthly_scores.seconds"
        ].count == 1

    def test_profile_samples_reparent_and_add(self):
        parent = MetricsRegistry()
        parent.add_profile_samples(
            {"span:exec.map.exec.task.detect;f.py:g": 1.0}
        )
        donor = MetricsRegistry()
        donor.add_profile_samples({
            "span:exec.task.detect;f.py:g": 2.0,
            "span:-;pool.py:idle": 3.0,
        })
        TelemetryCapsule.capture(donor).merge_into(
            parent, parent_path="exec.map"
        )
        # The worker key folds under the dispatching span and adds onto
        # the parent's existing count; unattributed samples stay span:-.
        assert parent.profile == {
            "span:exec.map.exec.task.detect;f.py:g": 3.0,
            "span:-;pool.py:idle": 3.0,
        }

    def test_merge_into_null_registry_is_noop(self):
        capsule = TelemetryCapsule.capture(populated_registry())
        capsule.merge_into(NULL_REGISTRY)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        assert NULL_REGISTRY.spans == []

    def test_merge_respects_span_bound(self):
        parent = MetricsRegistry()
        donor = MetricsRegistry()
        with use_registry(donor):
            for i in range(parent.MAX_SPANS + 10):
                with span(f"s{i}"):
                    pass
        TelemetryCapsule.capture(donor).merge_into(parent)
        assert len(parent.spans) == parent.MAX_SPANS
