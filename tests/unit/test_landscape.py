"""Unit tests for the MP landscape sweep."""

import numpy as np
import pytest

from repro.aggregation import SimpleAveragingScheme
from repro.analysis.landscape import MPLandscape, sweep_landscape
from repro.errors import ValidationError
from repro.marketplace import RatingChallenge


@pytest.fixture(scope="module")
def challenge():
    return RatingChallenge(seed=21)


class TestMPLandscape:
    def make(self):
        return MPLandscape(
            scheme_name="SA",
            bias_values=np.array([-3.0, -1.0]),
            std_values=np.array([0.1, 0.9]),
            mp=np.array([[2.0, 1.8], [1.0, 0.9]]),
        )

    def test_peak(self):
        assert self.make().peak == (-3.0, 0.1, 2.0)

    def test_means(self):
        landscape = self.make()
        np.testing.assert_allclose(landscape.row_means(), [1.9, 0.95])
        np.testing.assert_allclose(landscape.column_means(), [1.5, 1.35])

    def test_shape_validated(self):
        with pytest.raises(ValidationError):
            MPLandscape(
                scheme_name="SA",
                bias_values=np.array([-3.0]),
                std_values=np.array([0.1, 0.9]),
                mp=np.zeros((2, 2)),
            )

    def test_to_text(self):
        text = self.make().to_text()
        assert "MP landscape" in text
        assert "peak" in text

    def test_grid_frozen(self):
        landscape = self.make()
        with pytest.raises(ValueError):
            landscape.mp[0, 0] = 9.0


class TestSweepLandscape:
    def test_grid_dimensions(self, challenge):
        landscape = sweep_landscape(
            challenge, SimpleAveragingScheme(),
            bias_values=(-3.0, -1.0), std_values=(0.2,), probes=1, seed=0,
        )
        assert landscape.mp.shape == (2, 1)
        assert landscape.scheme_name == "SA"

    def test_bias_monotone_under_sa(self, challenge):
        landscape = sweep_landscape(
            challenge, SimpleAveragingScheme(),
            bias_values=(-3.5, -1.0), std_values=(0.2,), probes=2, seed=1,
        )
        assert landscape.mp[0, 0] > landscape.mp[1, 0]

    def test_invalid_probes(self, challenge):
        with pytest.raises(ValidationError):
            sweep_landscape(
                challenge, SimpleAveragingScheme(),
                bias_values=(-1.0,), std_values=(0.1,), probes=0,
            )

    def test_empty_grid_rejected(self, challenge):
        with pytest.raises(ValidationError):
            sweep_landscape(
                challenge, SimpleAveragingScheme(), bias_values=(),
                std_values=(0.1,),
            )
