"""Unit tests for the online (streaming) rating system."""

import numpy as np
import pytest

from repro.aggregation import PScheme, SimpleAveragingScheme
from repro.errors import ValidationError
from repro.online import OnlineRatingSystem
from repro.types import Rating, RatingDataset, RatingStream


def make_rating(time, value, product="p", rater=None, unfair=False):
    rater = rater if rater is not None else f"u_{time}_{value}"
    return Rating(
        time=time, rater_id=rater, product_id=product, value=value, unfair=unfair
    )


class TestIngestion:
    def test_epoch_boundaries(self):
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        assert system.current_epoch_start == 0.0
        assert system.current_epoch_end == 30.0

    def test_invalid_period(self):
        with pytest.raises(ValidationError):
            OnlineRatingSystem(SimpleAveragingScheme(), period_days=0.0)

    def test_submit_buffers_until_epoch(self):
        system = OnlineRatingSystem(SimpleAveragingScheme())
        published = system.submit(make_rating(5.0, 4.0))
        assert published == []
        assert system.dataset().total_ratings() == 1

    def test_future_rating_closes_epochs(self):
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit(make_rating(5.0, 4.0))
        published = system.submit(make_rating(65.0, 3.0))
        assert [r.epoch_index for r in published] == [0, 1]
        assert system.current_epoch_start == 60.0

    def test_late_rating_charged_to_landing_epoch(self):
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit(make_rating(40.0, 4.0))  # closes epoch 0
        system.submit(make_rating(10.0, 2.0))  # late: lands in epoch 0
        # The restated view charges the late arrival to epoch 0, where its
        # timestamp lands -- not to the epoch accumulating when it arrived.
        assert system.reports[0].late_ratings == 1
        report = system.close_epoch()  # closes epoch 1
        assert report.late_ratings == 0
        assert system.late_ratings_by_epoch() == {0: 1}

    def test_late_ratings_after_multi_epoch_skip(self):
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        published = system.submit(make_rating(100.0, 4.0))  # closes 0, 1, 2
        assert [r.epoch_index for r in published] == [0, 1, 2]
        assert all(r.late_ratings == 0 for r in published)
        system.submit(make_rating(40.0, 2.0))   # lands in epoch 1
        system.submit(make_rating(70.0, 3.0))   # lands in epoch 2
        system.submit(make_rating(75.0, 3.5))   # lands in epoch 2
        restated = system.reports
        assert [r.late_ratings for r in restated] == [0, 1, 2]
        # Published snapshots are immutable; only the view is restated.
        assert all(r.late_ratings == 0 for r in published)
        assert system.late_ratings_by_epoch() == {1: 1, 2: 2}

    def test_pre_start_late_rating_clamps_to_epoch_zero(self):
        system = OnlineRatingSystem(
            SimpleAveragingScheme(), start_day=0.0, period_days=30.0
        )
        system.submit(make_rating(35.0, 4.0))  # closes epoch 0
        system.submit(make_rating(-5.0, 2.0))  # before the time origin
        assert system.reports[0].late_ratings == 1


class TestPublishing:
    def test_epoch_scores_match_batch_sa(self):
        ratings = [make_rating(float(t), 4.0 if t < 30 else 2.0) for t in range(60)]
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit_many(ratings)
        # Epoch 0 was closed automatically by the first t >= 30 rating.
        assert system.reports[0].scores["p"] == pytest.approx(4.0)
        final = system.close_epoch()
        assert final.scores["p"] == pytest.approx(2.0)

    def test_scores_equal_batch_pipeline_at_boundaries(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0.0, 88.0, 300))
        values = np.clip(rng.normal(4.0, 0.5, 300), 0, 5)
        ratings = [
            make_rating(float(t), float(v), rater=f"u{i}")
            for i, (t, v) in enumerate(zip(times, values))
        ]
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit_many(ratings)
        while system.current_epoch_start < 90.0:
            system.close_epoch()
        batch = SimpleAveragingScheme().monthly_scores(
            system.dataset(), 30.0, 0.0, 90.0
        )
        for index, report in enumerate(system.reports[:3]):
            assert report.scores["p"] == pytest.approx(batch["p"][index])

    def test_empty_system_report(self):
        system = OnlineRatingSystem(SimpleAveragingScheme())
        report = system.close_epoch()
        assert report.scores == {}
        assert np.isnan(report.score_of("anything"))

    def test_latest_scores(self):
        system = OnlineRatingSystem(SimpleAveragingScheme())
        assert system.latest_scores() == {}
        system.submit(make_rating(1.0, 3.0))
        system.close_epoch()
        assert system.latest_scores()["p"] == pytest.approx(3.0)


class TestTelemetry:
    def test_report_telemetry_fields(self):
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit(make_rating(5.0, 4.0))
        system.submit(make_rating(15.0, 3.0))
        report = system.close_epoch()
        telemetry = report.telemetry
        assert telemetry["ratings_ingested"] == 2.0
        assert telemetry["ingest_rate_per_day"] == pytest.approx(2.0 / 30.0)
        assert telemetry["late_ratings_total"] == 0.0
        assert telemetry["scheme_seconds"] >= 0.0

    def test_telemetry_tracks_late_total(self):
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit(make_rating(40.0, 4.0))   # closes epoch 0
        system.submit(make_rating(10.0, 2.0))   # late
        report = system.close_epoch()
        assert report.telemetry["late_ratings_total"] == 1.0
        # Both submits (including the late one) arrived during epoch 1.
        assert report.telemetry["ratings_ingested"] == 2.0

    def test_metrics_registry_collection(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        system = OnlineRatingSystem(
            SimpleAveragingScheme(), period_days=30.0, registry=registry
        )
        system.submit(make_rating(5.0, 4.0))
        system.submit(make_rating(40.0, 3.0))   # closes epoch 0
        system.submit(make_rating(10.0, 2.0))   # late
        assert registry.counter_value("online.ratings_ingested") == 3
        assert registry.counter_value("online.late_ratings") == 1
        assert registry.counter_value("online.epochs_closed") == 1
        assert registry.histograms["online.scheme_seconds"].count == 1
        assert registry.gauges["online.products"].value == 1.0


class TestWithHistoryAndPScheme:
    def build_history(self, seed=0, days=45.0):
        rng = np.random.default_rng(seed)
        n = int(days * 6)
        times = np.sort(rng.uniform(-days, 0.0, n))
        values = np.clip(np.round(rng.normal(4.0, 0.6, n) * 2) / 2, 0, 5)
        return RatingDataset(
            [RatingStream("p", times, values, [f"h{i}" for i in range(n)])]
        )

    def test_history_feeds_detection(self):
        history = self.build_history()
        system = OnlineRatingSystem(
            PScheme(), start_day=0.0, period_days=30.0, history=history
        )
        rng = np.random.default_rng(1)
        # Honest live traffic plus an unfair block in days 10-20.
        live = [
            make_rating(float(t), float(np.clip(rng.normal(4.0, 0.6), 0, 5)),
                        rater=f"live{i}")
            for i, t in enumerate(np.sort(rng.uniform(0.0, 29.0, 180)))
        ]
        attack = [
            make_rating(float(t), 0.5, rater=f"atk{i}", unfair=True)
            for i, t in enumerate(np.sort(rng.uniform(10.0, 20.0, 40)))
        ]
        system.submit_many(sorted(live + attack))
        report = system.close_epoch()
        published = report.scores["p"]
        naive = np.mean([r.value for r in live + attack if 0.0 <= r.time < 30.0])
        # The P-scheme's published score resists the attack: closer to the
        # honest mean than the naive average is.
        honest = np.mean([r.value for r in live])
        assert abs(published - honest) < abs(naive - honest)

    def test_report_sequence_indices(self):
        system = OnlineRatingSystem(SimpleAveragingScheme())
        for _ in range(3):
            system.close_epoch()
        assert [r.epoch_index for r in system.reports] == [0, 1, 2]
        assert system.reports[2].epoch_start == pytest.approx(60.0)


class TestEpochAlerts:
    def build_system(self, rule_value=0.0):
        from repro.obs import AlertEngine, AlertRule, MetricsRegistry
        from repro.obs.series import TimeSeriesRecorder

        registry = MetricsRegistry()
        rule = AlertRule(
            name="ingest-moving", metric="online.ratings_ingested",
            kind="rate_of_change", op=">", value=rule_value,
        )
        recorder = TimeSeriesRecorder(
            engine=AlertEngine([rule], registry=registry)
        )
        system = OnlineRatingSystem(
            SimpleAveragingScheme(), period_days=30.0,
            registry=registry, series_recorder=recorder,
        )
        return system, registry, recorder

    def test_epoch_report_carries_alerts(self):
        system, registry, recorder = self.build_system()
        system.submit(make_rating(5.0, 4.0))
        report = system.close_epoch()
        assert [event.state for event in report.alerts] == ["firing"]
        assert report.alerts[0].rule == "ingest-moving"
        assert registry.counter_value("alert.firing") == 1.0
        assert recorder.series("online.ratings_ingested") == [(0, 1.0)]

    def test_no_recorder_means_no_alerts(self):
        system = OnlineRatingSystem(SimpleAveragingScheme(), period_days=30.0)
        system.submit(make_rating(5.0, 4.0))
        assert system.close_epoch().alerts == ()

    def test_registry_attached_recorder_used(self):
        # Wiring through registry.attach_series (the CLI path) is
        # equivalent to passing series_recorder explicitly.
        from repro.obs import MetricsRegistry
        from repro.obs.series import TimeSeriesRecorder

        registry = MetricsRegistry()
        registry.attach_series(TimeSeriesRecorder())
        system = OnlineRatingSystem(
            SimpleAveragingScheme(), period_days=30.0, registry=registry
        )
        system.submit(make_rating(5.0, 4.0))
        system.close_epoch()
        assert registry.series.series("online.epochs_closed") == [(0, 1.0)]
