"""Unit tests for Procedure 2 (heuristic region search)."""

import numpy as np
import pytest

from repro.attacks.optimizer import (
    RegionSearchResult,
    SearchArea,
    heuristic_region_search,
)
from repro.errors import AttackSpecError


def paper_area():
    return SearchArea(bias_min=-4.0, bias_max=0.0, std_min=0.0, std_max=2.0)


class TestSearchArea:
    def test_geometry(self):
        area = paper_area()
        assert area.bias_width == 4.0
        assert area.std_width == 2.0
        assert area.center == (-2.0, 1.0)

    def test_invalid_bounds(self):
        with pytest.raises(AttackSpecError):
            SearchArea(0.0, -1.0, 0.0, 1.0)
        with pytest.raises(AttackSpecError):
            SearchArea(0.0, 1.0, 1.0, 0.5)
        with pytest.raises(AttackSpecError):
            SearchArea(0.0, 1.0, -0.5, 1.0)

    def test_subdivide_covers_parent(self):
        area = paper_area()
        subareas = area.subdivide(4)
        assert len(subareas) == 4
        assert min(s.bias_min for s in subareas) == area.bias_min
        assert max(s.bias_max for s in subareas) == area.bias_max
        assert min(s.std_min for s in subareas) == area.std_min
        assert max(s.std_max for s in subareas) == area.std_max

    def test_subdivide_stays_inside_parent(self):
        area = paper_area()
        for sub in area.subdivide(4, overlap=0.3):
            assert sub.bias_min >= area.bias_min - 1e-12
            assert sub.bias_max <= area.bias_max + 1e-12
            assert sub.std_min >= area.std_min - 1e-12
            assert sub.std_max <= area.std_max + 1e-12

    def test_subareas_overlap(self):
        subareas = paper_area().subdivide(4, overlap=0.25)
        left, right = subareas[0], subareas[1]
        assert left.bias_max > right.bias_min  # horizontal overlap exists

    def test_subdivide_shrinks(self):
        area = paper_area()
        for sub in area.subdivide(4):
            assert sub.bias_width < area.bias_width
            assert sub.std_width < area.std_width

    def test_invalid_overlap(self):
        with pytest.raises(AttackSpecError):
            paper_area().subdivide(4, overlap=1.0)

    def test_smaller_than(self):
        small = SearchArea(-0.2, 0.0, 0.0, 0.1)
        assert small.smaller_than(0.5, 0.25)
        assert not paper_area().smaller_than(0.5, 0.25)


class TestHeuristicRegionSearch:
    def test_converges_to_analytic_optimum(self):
        # Smooth unimodal MP surface peaked at (-2.3, 1.5).
        def evaluate(bias, std):
            return float(np.exp(-((bias + 2.3) ** 2) - (std - 1.5) ** 2))

        result = heuristic_region_search(
            evaluate, paper_area(), probes_per_subarea=1, max_rounds=10
        )
        bias, std = result.best_point
        assert bias == pytest.approx(-2.3, abs=0.5)
        assert std == pytest.approx(1.5, abs=0.3)

    def test_respects_size_threshold(self):
        result = heuristic_region_search(
            lambda b, s: 1.0, paper_area(), probes_per_subarea=1,
            min_bias_width=0.5, min_std_width=0.25,
        )
        assert result.final_area.bias_width <= 0.5 + 1e-9
        assert result.final_area.std_width <= 0.25 + 1e-9

    def test_trace_records_rounds(self):
        result = heuristic_region_search(
            lambda b, s: -abs(b + 1.0), paper_area(), probes_per_subarea=1
        )
        assert len(result.rounds) >= 2
        for round_ in result.rounds:
            assert len(round_.subareas) == len(round_.scores)
            assert round_.best_score == max(round_.scores)
            # Areas shrink monotonically across rounds.
        widths = [r.area.bias_width for r in result.rounds]
        assert widths == sorted(widths, reverse=True)

    def test_best_mp_is_max_probe(self):
        calls = []

        def evaluate(bias, std):
            value = -((bias + 2.0) ** 2)
            calls.append(value)
            return value

        result = heuristic_region_search(
            evaluate, paper_area(), probes_per_subarea=3, max_rounds=3
        )
        assert result.best_mp == pytest.approx(max(calls))

    def test_probe_count(self):
        calls = []

        def evaluate(bias, std):
            calls.append(1)
            return 0.0

        heuristic_region_search(
            evaluate, paper_area(), n_subareas=4, probes_per_subarea=2, max_rounds=2,
            min_bias_width=0.01, min_std_width=0.01, final_probes=3,
        )
        # rounds * subareas * probes + the final exploitation probes
        assert len(calls) == 2 * 4 * 2 + 3

    def test_tiny_initial_area_probed_directly(self):
        result = heuristic_region_search(
            lambda b, s: 7.0,
            SearchArea(-0.1, 0.0, 0.0, 0.05),
            probes_per_subarea=2,
        )
        assert result.best_mp == 7.0
        assert result.rounds == ()

    def test_result_type(self):
        result = heuristic_region_search(
            lambda b, s: 0.0, paper_area(), probes_per_subarea=1, max_rounds=1
        )
        assert isinstance(result, RegionSearchResult)
