"""Unit tests for the advanced (trust-layer) attack strategies."""

import numpy as np
import pytest

from repro.attacks.advanced import camouflage_attack, split_burst_attack
from repro.attacks.base import ProductTarget
from repro.errors import AttackSpecError
from repro.marketplace.challenge import RatingChallenge


@pytest.fixture(scope="module")
def challenge():
    return RatingChallenge(seed=55)


def targets():
    return [
        ProductTarget("tv1", -1),
        ProductTarget("tv2", -1),
        ProductTarget("tv3", +1),
        ProductTarget("tv4", +1),
    ]


class TestCamouflageAttack:
    def test_structure(self, challenge):
        submission = camouflage_attack(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), seed=0,
        )
        assert submission.strategy == "camouflage"
        assert set(submission.product_ids) == {"tv1", "tv2", "tv3", "tv4"}

    def test_passes_challenge_rules(self, challenge):
        submission = camouflage_attack(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), seed=1,
        )
        challenge.validate(submission)

    def test_two_phases_present(self, challenge):
        submission = camouflage_attack(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(),
            camouflage_end=30.0, strike_start=45.0, seed=2,
        )
        for stream in submission.streams.values():
            early = stream.between(0.0, 30.0)
            late = stream.between(45.0, 80.0)
            assert len(early) > 0, "camouflage phase missing"
            assert len(late) > 0, "strike phase missing"
            # Early ratings look fair; late ratings are shifted.
            fair_mean = challenge.fair_dataset[stream.product_id].mean_value()
            assert abs(early.values.mean() - fair_mean) < 0.5

    def test_each_rater_once_per_product(self, challenge):
        submission = camouflage_attack(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), seed=3,
        )
        for stream in submission.streams.values():
            assert len(set(stream.rater_ids)) == len(stream)

    def test_requires_two_targets(self, challenge):
        with pytest.raises(AttackSpecError):
            camouflage_attack(
                challenge.fair_dataset, targets()[:1],
                challenge.config.biased_rater_ids(),
            )

    def test_phase_order_enforced(self, challenge):
        with pytest.raises(AttackSpecError):
            camouflage_attack(
                challenge.fair_dataset, targets(),
                challenge.config.biased_rater_ids(),
                camouflage_end=50.0, strike_start=40.0,
            )

    def test_requires_raters(self, challenge):
        with pytest.raises(AttackSpecError):
            camouflage_attack(challenge.fair_dataset, targets(), ["only_one"])


class TestSplitBurstAttack:
    def test_structure_and_rules(self, challenge):
        submission = split_burst_attack(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(), seed=0,
        )
        assert submission.strategy == "split_burst"
        challenge.validate(submission)

    def test_burst_count_and_spacing(self, challenge):
        submission = split_burst_attack(
            challenge.fair_dataset, targets()[:1],
            challenge.config.biased_rater_ids(),
            n_bursts=3, burst_width=2.0, first_burst=10.0, burst_spacing=20.0,
            seed=1,
        )
        times = submission.streams["tv1"].times
        # Ratings fall only inside the three burst windows.
        in_bursts = np.zeros(times.size, dtype=bool)
        for k in range(3):
            start = 10.0 + 20.0 * k
            in_bursts |= (times >= start) & (times <= start + 2.0)
        assert in_bursts.all()
        # All three bursts are populated.
        for k in range(3):
            start = 10.0 + 20.0 * k
            assert ((times >= start) & (times <= start + 2.0)).sum() > 0

    def test_value_direction(self, challenge):
        submission = split_burst_attack(
            challenge.fair_dataset,
            [ProductTarget("tv1", -1), ProductTarget("tv3", +1)],
            challenge.config.biased_rater_ids(), bias_magnitude=3.0, seed=2,
        )
        fair = challenge.fair_dataset
        assert submission.streams["tv1"].values.mean() < fair["tv1"].mean_value()
        assert submission.streams["tv3"].values.mean() > fair["tv3"].mean_value()

    def test_invalid_params(self, challenge):
        with pytest.raises(AttackSpecError):
            split_burst_attack(
                challenge.fair_dataset, [], challenge.config.biased_rater_ids()
            )
        with pytest.raises(AttackSpecError):
            split_burst_attack(
                challenge.fair_dataset, targets()[:1],
                challenge.config.biased_rater_ids(), n_bursts=0,
            )
        with pytest.raises(AttackSpecError):
            split_burst_attack(
                challenge.fair_dataset, targets()[:1], ["a", "b"], n_bursts=5,
            )


class TestAdvancedAttacksAgainstPScheme:
    def test_camouflage_raises_attacker_trust_before_strike(self, challenge):
        """The whole point of camouflage: attacker trust exceeds the
        neutral 0.5 entering the strike phase."""
        from repro.aggregation.pscheme import PScheme
        from repro.trust.manager import TrustManager

        submission = camouflage_attack(
            challenge.fair_dataset, targets(),
            challenge.config.biased_rater_ids(),
            camouflage_end=28.0, strike_start=45.0, seed=4,
        )
        attacked = challenge.attacked_dataset(submission)
        scheme = PScheme()
        marks = scheme.detect(attacked)
        manager = TrustManager()
        snapshots = manager.run(attacked, marks, epoch_times=[30.0, 60.0, 90.0])
        attacker_ids = submission.rater_ids()
        # After the camouflage month, attackers look trustworthy.
        month1 = np.mean([snapshots[0].value(r) for r in attacker_ids])
        assert month1 > 0.5


class TestSybilFlood:
    def test_structure(self, challenge):
        from repro.attacks.advanced import sybil_flood

        submission = sybil_flood(
            challenge.fair_dataset, targets()[:2], n_identities=100, seed=0
        )
        assert submission.strategy == "sybil_flood"
        assert submission.total_ratings() == 200
        # Every identity is fresh and unique.
        assert len(submission.rater_ids()) == 200

    def test_violates_challenge_rules_by_design(self, challenge):
        from repro.attacks.advanced import sybil_flood
        from repro.errors import ChallengeRuleError

        submission = sybil_flood(
            challenge.fair_dataset, targets()[:2], n_identities=60, seed=1
        )
        with pytest.raises(ChallengeRuleError):
            challenge.validate(submission)

    def test_pscheme_structurally_resistant(self, challenge):
        """Fresh identities carry neutral trust and zero Eq. 7 weight, so
        even a flood twice the fair volume barely moves the P-scheme."""
        from repro.aggregation import PScheme, SimpleAveragingScheme
        from repro.attacks.advanced import sybil_flood
        from repro.marketplace.mp import manipulation_power

        submission = sybil_flood(
            challenge.fair_dataset,
            [ProductTarget("tv1", -1)],
            n_identities=400,
            bias_magnitude=3.0,
            std=0.3,
            seed=2,
        )
        attacked = challenge.fair_dataset.merge(submission.as_dict())
        mp_sa = manipulation_power(
            SimpleAveragingScheme(), attacked, challenge.fair_dataset,
            start_day=challenge.start_day, end_day=challenge.end_day,
        ).total
        mp_p = manipulation_power(
            PScheme(), attacked, challenge.fair_dataset,
            start_day=challenge.start_day, end_day=challenge.end_day,
        ).total
        assert mp_sa > 1.0
        assert mp_p < 0.3 * mp_sa

    def test_invalid_params(self, challenge):
        from repro.attacks.advanced import sybil_flood
        from repro.errors import AttackSpecError

        with pytest.raises(AttackSpecError):
            sybil_flood(challenge.fair_dataset, [], n_identities=10)
        with pytest.raises(AttackSpecError):
            sybil_flood(challenge.fair_dataset, targets()[:1], n_identities=0)
        with pytest.raises(AttackSpecError):
            sybil_flood(
                challenge.fair_dataset, targets()[:1], duration=0.0
            )
