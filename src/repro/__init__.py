"""repro -- reproduction of "Modeling Attack Behaviors in Rating Systems".

(Feng, Yang, Sun, Dai -- ICDCS Workshops 2008.)

The library provides, from scratch:

- a rating-system substrate with a calibrated fair-rating world and the
  paper's Rating Challenge rules (:mod:`repro.marketplace`);
- the signal-processing primitives and the four unfair-rating detectors
  plus their Figure 1 integration (:mod:`repro.signal`,
  :mod:`repro.detectors`);
- beta trust and the Procedure 1 trust manager (:mod:`repro.trust`);
- the three aggregation schemes compared in the paper -- SA, BF, and the
  proposed signal-based P-scheme (:mod:`repro.aggregation`);
- the paper's contribution: attack behaviour models and the unfair-rating
  generator with Procedure 2 optimization and Procedure 3 correlation
  (:mod:`repro.attacks`);
- the Section V analyses and one runner per evaluation figure
  (:mod:`repro.analysis`, :mod:`repro.experiments`);
- end-to-end observability -- metrics registry, nested spans, structured
  logging, detection provenance -- for the whole pipeline
  (:mod:`repro.obs`).

Quickstart::

    from repro import RatingChallenge, AttackGenerator, AttackSpec
    from repro import ProductTarget, PScheme, UniformWindow

    challenge = RatingChallenge(seed=7)
    generator = AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=7
    )
    submission = generator.generate(
        [ProductTarget("tv1", -1), ProductTarget("tv3", +1)],
        AttackSpec(bias_magnitude=2.0, std=1.0,
                   time_model=UniformWindow(20.0, 40.0)),
    )
    result = challenge.evaluate(submission, PScheme())
    print(result.total)
"""

from repro.aggregation import (
    BetaFilterConfig,
    BetaFilterScheme,
    PScheme,
    PSchemeConfig,
    SimpleAveragingScheme,
)
from repro.attacks import (
    AttackGenerator,
    AttackSpec,
    AttackSubmission,
    ConcentratedBurst,
    EvenlySpaced,
    PoissonTimes,
    ProductTarget,
    SearchArea,
    UniformWindow,
    generate_population,
    heuristic_region_search,
)
from repro.detectors import (
    DetectionReport,
    DetectorConfig,
    JointDetector,
    provenance_labels,
)
from repro.errors import (
    AttackSpecError,
    ChallengeRuleError,
    ReproError,
    ValidationError,
)
from repro.marketplace import (
    ChallengeConfig,
    FairRatingConfig,
    FairRatingGenerator,
    MPResult,
    Product,
    RatingChallenge,
    default_tv_lineup,
    manipulation_power,
)
from repro.obs import (
    MetricsRegistry,
    get_registry,
    set_registry,
    setup_logging,
    span,
    use_registry,
)
from repro.trust import TrustManager
from repro.types import DEFAULT_SCALE, Rating, RatingDataset, RatingScale, RatingStream

__version__ = "1.0.0"

__all__ = [
    "BetaFilterConfig",
    "BetaFilterScheme",
    "PScheme",
    "PSchemeConfig",
    "SimpleAveragingScheme",
    "AttackGenerator",
    "AttackSpec",
    "AttackSubmission",
    "ConcentratedBurst",
    "EvenlySpaced",
    "PoissonTimes",
    "ProductTarget",
    "SearchArea",
    "UniformWindow",
    "generate_population",
    "heuristic_region_search",
    "DetectionReport",
    "DetectorConfig",
    "JointDetector",
    "provenance_labels",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "setup_logging",
    "span",
    "AttackSpecError",
    "ChallengeRuleError",
    "ReproError",
    "ValidationError",
    "ChallengeConfig",
    "FairRatingConfig",
    "FairRatingGenerator",
    "MPResult",
    "Product",
    "RatingChallenge",
    "default_tv_lineup",
    "manipulation_power",
    "TrustManager",
    "DEFAULT_SCALE",
    "Rating",
    "RatingDataset",
    "RatingScale",
    "RatingStream",
    "__version__",
]
