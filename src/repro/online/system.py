"""Streaming facade over the batch aggregation pipeline.

Design: the system buffers incoming :class:`~repro.types.Rating` records
per product.  When an epoch closes (every ``period_days`` of rating time,
or explicitly via :meth:`OnlineRatingSystem.close_epoch`), the buffered
data is compiled into immutable streams and the configured scheme's
``monthly_scores`` is evaluated over the *full* history -- detection is a
whole-stream operation (windows straddle epoch boundaries), so published
scores must be recomputed from history, not incrementally patched.  The
P-scheme's internal fingerprint caches keep the recomputation cost
proportional to what actually changed.

Late ratings (timestamps before an already-published epoch) are accepted
into the history and attributed to the epoch their *timestamp* lands in,
not the epoch that happened to be accumulating when they arrived -- a
late rating arriving after a far-future rating auto-closed several epochs
would otherwise be charged to an unrelated report (or, for the skipped
epochs, to none at all).  Published ``EpochReport`` objects are immutable,
so the :attr:`OnlineRatingSystem.reports` view restates ``late_ratings``
with everything learned since publication, consistent with this system's
recompute-from-history policy; the snapshot returned by
:meth:`close_epoch` keeps the counts known at publish time.

Each report also carries a ``telemetry`` block (ingest rate, late-rating
totals, scheme latency), and the same signals flow into the active
metrics registry under ``online.*``.

Every epoch close also runs the :mod:`repro.obs.drift` assumption
monitors over the closed window (Poisson arrival dispersion, residual
whiteness, mean drift vs the calibrated fair model): violations are
published as ``EpochReport.drift_warnings``, logged, and counted under
``drift.*``.  The monitor calibrates its fair mean from the pre-start
history when one is supplied, else from the first monitored window.
Pass ``monitor_drift=False`` to disable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ValidationError
from repro.obs import get_logger
from repro.obs.alerts import AlertEvent
from repro.obs.drift import DriftMonitor, DriftMonitorConfig, DriftWarning
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.series import TimeSeriesRecorder
from repro.types import Rating, RatingDataset, RatingStream

__all__ = ["EpochReport", "OnlineRatingSystem"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class EpochReport:
    """Everything published when one scoring epoch closes.

    ``late_ratings`` counts ratings whose timestamps land inside this
    epoch's window but that arrived after the epoch was published (known
    at the time the report was materialized -- see the module docstring).
    ``telemetry`` carries operational measurements: ``ratings_ingested``,
    ``ingest_rate_per_day``, ``late_ratings_total`` (cumulative across the
    system), ``scheme_seconds`` (wall-clock cost of the aggregation
    scheme for this close), and ``drift_warnings`` (assumption
    violations raised for this epoch).  ``drift_warnings`` holds the
    structured :class:`~repro.obs.drift.DriftWarning` records themselves.
    """

    epoch_index: int
    epoch_start: float
    epoch_end: float
    scores: Mapping[str, float]
    ratings_ingested: int
    late_ratings: int
    telemetry: Mapping[str, float] = field(default_factory=dict)
    drift_warnings: Tuple[DriftWarning, ...] = ()
    #: Alert state transitions produced at this epoch's close (only when
    #: a series recorder with an alert engine is attached).
    alerts: Tuple[AlertEvent, ...] = ()

    def score_of(self, product_id: str) -> float:
        """Published score for ``product_id`` (NaN when unscored)."""
        return self.scores.get(product_id, float("nan"))


class OnlineRatingSystem:
    """Ingest ratings one at a time; publish scores per epoch.

    Parameters
    ----------
    scheme:
        Any aggregation scheme (``monthly_scores`` protocol).
    start_day:
        Time origin of the first scoring epoch.
    period_days:
        Epoch length (the paper's MP metric uses 30-day periods).
    history:
        Optional pre-existing rating data (e.g. the pre-challenge
        history) the detectors should see from the start.
    registry:
        Metrics sink for this system's telemetry; ``None`` uses the
        globally active registry at call time.
    monitor_drift:
        Run the :mod:`repro.obs.drift` assumption monitors on every
        epoch close (default on).
    drift_config:
        Monitor tunables; ``None`` uses the calibrated defaults.  When
        its ``fair_mean`` is unset the monitor calibrates from
        ``history`` (or self-calibrates on the first monitored window).
    series_recorder:
        Explicit :class:`~repro.obs.series.TimeSeriesRecorder` snapshotted
        at every epoch close; ``None`` falls back to the recorder attached
        to the effective registry (if any).
    """

    def __init__(
        self,
        scheme,
        start_day: float = 0.0,
        period_days: float = 30.0,
        history: Optional[RatingDataset] = None,
        registry: Optional[MetricsRegistry] = None,
        monitor_drift: bool = True,
        drift_config: Optional[DriftMonitorConfig] = None,
        series_recorder: Optional[TimeSeriesRecorder] = None,
    ) -> None:
        if period_days <= 0:
            raise ValidationError(f"period_days must be > 0, got {period_days}")
        self.scheme = scheme
        self.start_day = float(start_day)
        self.period_days = float(period_days)
        self._registry = registry
        self._buffers: Dict[str, List[Rating]] = {}
        self._history_floor = self.start_day
        if history is not None:
            for stream in history.streams():
                self._buffers.setdefault(stream.product_id, []).extend(stream)
                if len(stream):
                    self._history_floor = min(
                        self._history_floor, float(stream.times[0])
                    )
        self.drift_monitor: Optional[DriftMonitor] = None
        if monitor_drift:
            self.drift_monitor = DriftMonitor(
                config=drift_config, registry=registry
            )
            if history is not None and history.total_ratings():
                self.drift_monitor.calibrate(history)
        self._series_recorder = series_recorder
        self._epochs_closed = 0
        self._ingested_this_epoch = 0
        # Late arrivals keyed by the epoch index their timestamp lands in.
        self._late_by_epoch: Dict[int, int] = {}
        self._late_total = 0
        self._reports: List[EpochReport] = []

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink in effect (injected, else the global one)."""
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    @property
    def current_epoch_start(self) -> float:
        """Start time of the epoch currently accumulating."""
        return self.start_day + self._epochs_closed * self.period_days

    @property
    def current_epoch_end(self) -> float:
        """End time (exclusive) of the epoch currently accumulating."""
        return self.current_epoch_start + self.period_days

    def _epoch_index_of(self, time: float) -> int:
        """The scoring epoch a timestamp lands in (pre-start clamps to 0)."""
        return max(0, int((time - self.start_day) // self.period_days))

    def submit(self, rating: Rating) -> List[EpochReport]:
        """Ingest one rating; auto-close any epochs its timestamp passes.

        Returns the (possibly empty) list of epoch reports published as a
        consequence -- a rating far in the future closes several epochs.
        """
        published: List[EpochReport] = []
        while rating.time >= self.current_epoch_end:
            published.append(self.close_epoch())
        if rating.time < self.current_epoch_start:
            landing = self._epoch_index_of(rating.time)
            self._late_by_epoch[landing] = self._late_by_epoch.get(landing, 0) + 1
            self._late_total += 1
            self.registry.inc("online.late_ratings")
        self._buffers.setdefault(rating.product_id, []).append(rating)
        self._ingested_this_epoch += 1
        self.registry.inc("online.ratings_ingested")
        return published

    def submit_many(self, ratings) -> List[EpochReport]:
        """Ingest an iterable of ratings (time-ordered or not)."""
        published: List[EpochReport] = []
        for rating in ratings:
            published.extend(self.submit(rating))
        return published

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def dataset(self) -> RatingDataset:
        """Immutable snapshot of everything ingested so far."""
        streams = [
            RatingStream.from_ratings(product_id, ratings)
            for product_id, ratings in self._buffers.items()
        ]
        return RatingDataset(streams)

    def close_epoch(self) -> EpochReport:
        """Close the current epoch and publish its scores."""
        epoch_start = self.current_epoch_start
        epoch_end = self.current_epoch_end
        snapshot = self.dataset()
        scheme_seconds = 0.0
        if len(snapshot) and snapshot.total_ratings():
            tick = perf_counter()
            scores_series = self.scheme.monthly_scores(
                snapshot,
                period_days=self.period_days,
                start_day=self.start_day,
                end_day=epoch_end,
            )
            scheme_seconds = perf_counter() - tick
            index = self._epochs_closed
            scores = {
                product_id: float(series[index]) if index < series.size else float("nan")
                for product_id, series in scores_series.items()
            }
        else:
            scores = {}
        ingested = self._ingested_this_epoch
        drift_warnings: Tuple[DriftWarning, ...] = ()
        if self.drift_monitor is not None and len(snapshot):
            drift_warnings = tuple(
                self.drift_monitor.check_epoch(snapshot, epoch_start, epoch_end)
            )
        telemetry = {
            "ratings_ingested": float(ingested),
            "ingest_rate_per_day": ingested / self.period_days,
            "late_ratings_total": float(self._late_total),
            "scheme_seconds": scheme_seconds,
            "drift_warnings": float(len(drift_warnings)),
        }
        registry = self.registry
        registry.inc("online.epochs_closed")
        registry.observe("online.scheme_seconds", scheme_seconds)
        registry.set_gauge("online.products", float(len(self._buffers)))
        # Snapshot the registry *after* this epoch's own telemetry landed
        # so the recorded series reflect the epoch being published; the
        # recorder also drives the alert engine, whose events ride on the
        # published report.
        alerts: Tuple[AlertEvent, ...] = ()
        recorder = (
            self._series_recorder
            if self._series_recorder is not None
            else registry.series
        )
        if recorder is not None:
            alerts = tuple(recorder.record_epoch(self._epochs_closed, registry))
        report = EpochReport(
            epoch_index=self._epochs_closed,
            epoch_start=epoch_start,
            epoch_end=epoch_end,
            scores=scores,
            ratings_ingested=ingested,
            late_ratings=self._late_by_epoch.get(self._epochs_closed, 0),
            telemetry=telemetry,
            drift_warnings=drift_warnings,
            alerts=alerts,
        )
        self._reports.append(report)
        self._epochs_closed += 1
        self._ingested_this_epoch = 0
        logger.info(
            "epoch=%d window=[%.1f, %.1f) products_scored=%d ingested=%d "
            "scheme_seconds=%.4f",
            report.epoch_index, epoch_start, epoch_end, len(scores),
            ingested, scheme_seconds,
        )
        return report

    def _restated(self, report: EpochReport) -> EpochReport:
        """The report with late-rating knowledge learned since publish."""
        known = self._late_by_epoch.get(report.epoch_index, 0)
        if known == report.late_ratings:
            return report
        return replace(report, late_ratings=known)

    @property
    def reports(self) -> Tuple[EpochReport, ...]:
        """All epoch reports published so far, with ``late_ratings``
        restated to include late arrivals discovered after publication."""
        return tuple(self._restated(report) for report in self._reports)

    def late_ratings_by_epoch(self) -> Dict[int, int]:
        """Late-arrival counts keyed by the epoch the rating landed in."""
        return dict(self._late_by_epoch)

    def latest_scores(self) -> Mapping[str, float]:
        """The most recently published per-product scores ({} if none)."""
        if not self._reports:
            return {}
        return dict(self._reports[-1].scores)
