"""Streaming facade over the batch aggregation pipeline.

Design: the system buffers incoming :class:`~repro.types.Rating` records
per product.  When an epoch closes (every ``period_days`` of rating time,
or explicitly via :meth:`OnlineRatingSystem.close_epoch`), the buffered
data is compiled into immutable streams and the configured scheme's
``monthly_scores`` is evaluated over the *full* history -- detection is a
whole-stream operation (windows straddle epoch boundaries), so published
scores must be recomputed from history, not incrementally patched.  The
P-scheme's internal fingerprint caches keep the recomputation cost
proportional to what actually changed.

Late ratings (timestamps before an already-published epoch) are accepted
into the history but flagged in the epoch report: a production system
must decide whether to restate published scores; this one recomputes, so
subsequent epoch reports reflect the corrected history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ValidationError
from repro.types import Rating, RatingDataset, RatingStream

__all__ = ["EpochReport", "OnlineRatingSystem"]


@dataclass(frozen=True)
class EpochReport:
    """Everything published when one scoring epoch closes."""

    epoch_index: int
    epoch_start: float
    epoch_end: float
    scores: Mapping[str, float]
    ratings_ingested: int
    late_ratings: int

    def score_of(self, product_id: str) -> float:
        """Published score for ``product_id`` (NaN when unscored)."""
        return self.scores.get(product_id, float("nan"))


class OnlineRatingSystem:
    """Ingest ratings one at a time; publish scores per epoch.

    Parameters
    ----------
    scheme:
        Any aggregation scheme (``monthly_scores`` protocol).
    start_day:
        Time origin of the first scoring epoch.
    period_days:
        Epoch length (the paper's MP metric uses 30-day periods).
    history:
        Optional pre-existing rating data (e.g. the pre-challenge
        history) the detectors should see from the start.
    """

    def __init__(
        self,
        scheme,
        start_day: float = 0.0,
        period_days: float = 30.0,
        history: Optional[RatingDataset] = None,
    ) -> None:
        if period_days <= 0:
            raise ValidationError(f"period_days must be > 0, got {period_days}")
        self.scheme = scheme
        self.start_day = float(start_day)
        self.period_days = float(period_days)
        self._buffers: Dict[str, List[Rating]] = {}
        self._history_floor = self.start_day
        if history is not None:
            for stream in history.streams():
                self._buffers.setdefault(stream.product_id, []).extend(stream)
                if len(stream):
                    self._history_floor = min(
                        self._history_floor, float(stream.times[0])
                    )
        self._epochs_closed = 0
        self._ingested_this_epoch = 0
        self._late_this_epoch = 0
        self._reports: List[EpochReport] = []

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    @property
    def current_epoch_start(self) -> float:
        """Start time of the epoch currently accumulating."""
        return self.start_day + self._epochs_closed * self.period_days

    @property
    def current_epoch_end(self) -> float:
        """End time (exclusive) of the epoch currently accumulating."""
        return self.current_epoch_start + self.period_days

    def submit(self, rating: Rating) -> List[EpochReport]:
        """Ingest one rating; auto-close any epochs its timestamp passes.

        Returns the (possibly empty) list of epoch reports published as a
        consequence -- a rating far in the future closes several epochs.
        """
        published: List[EpochReport] = []
        while rating.time >= self.current_epoch_end:
            published.append(self.close_epoch())
        if rating.time < self.current_epoch_start:
            self._late_this_epoch += 1
        self._buffers.setdefault(rating.product_id, []).append(rating)
        self._ingested_this_epoch += 1
        return published

    def submit_many(self, ratings) -> List[EpochReport]:
        """Ingest an iterable of ratings (time-ordered or not)."""
        published: List[EpochReport] = []
        for rating in ratings:
            published.extend(self.submit(rating))
        return published

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def dataset(self) -> RatingDataset:
        """Immutable snapshot of everything ingested so far."""
        streams = [
            RatingStream.from_ratings(product_id, ratings)
            for product_id, ratings in self._buffers.items()
        ]
        return RatingDataset(streams)

    def close_epoch(self) -> EpochReport:
        """Close the current epoch and publish its scores."""
        epoch_start = self.current_epoch_start
        epoch_end = self.current_epoch_end
        snapshot = self.dataset()
        if len(snapshot) and snapshot.total_ratings():
            scores_series = self.scheme.monthly_scores(
                snapshot,
                period_days=self.period_days,
                start_day=self.start_day,
                end_day=epoch_end,
            )
            index = self._epochs_closed
            scores = {
                product_id: float(series[index]) if index < series.size else float("nan")
                for product_id, series in scores_series.items()
            }
        else:
            scores = {}
        report = EpochReport(
            epoch_index=self._epochs_closed,
            epoch_start=epoch_start,
            epoch_end=epoch_end,
            scores=scores,
            ratings_ingested=self._ingested_this_epoch,
            late_ratings=self._late_this_epoch,
        )
        self._reports.append(report)
        self._epochs_closed += 1
        self._ingested_this_epoch = 0
        self._late_this_epoch = 0
        return report

    @property
    def reports(self) -> Tuple[EpochReport, ...]:
        """All epoch reports published so far."""
        return tuple(self._reports)

    def latest_scores(self) -> Mapping[str, float]:
        """The most recently published per-product scores ({} if none)."""
        if not self._reports:
            return {}
        return dict(self._reports[-1].scores)
