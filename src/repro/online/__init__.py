"""Online (streaming) operation of the reliable rating system.

The library's core is batch-oriented, matching how the paper evaluates:
a dataset in, monthly scores out.  A deployed rating system instead sees
ratings one at a time and must publish scores continuously.  This package
wraps any aggregation scheme behind that operational interface:

- :class:`~repro.online.system.OnlineRatingSystem` ingests individual
  ratings, closes scoring epochs on demand (or automatically as time
  advances), and publishes per-product scores computed by the configured
  scheme over everything seen so far -- so at each epoch boundary the
  published score equals what the batch pipeline would produce, which is
  exactly the property the tests pin down.
"""

from repro.online.system import EpochReport, OnlineRatingSystem

__all__ = ["EpochReport", "OnlineRatingSystem"]
