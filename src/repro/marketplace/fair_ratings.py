"""Fair (honest) rating data generator.

Substitute for the paper's real nine-TV dataset.  The generator reproduces
the statistical features the paper's pipeline actually consumes:

- values on the 0..5 scale, fair mean around 4 (Section V-B),
- Poisson-process arrivals with gentle non-stationarity -- a weekly cycle
  and a slow popularity trend -- so the false-alarm behaviour of the
  arrival-rate detector is genuinely exercised (Section IV-F notes that
  fair ratings vary in mean and arrival rate even without attacks),
- per-rater leniency and noise, so majority-rule filters see realistic
  dispersion,
- optional value quantisation (half-star steps by default, like most
  shopping sites).

The generator is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.marketplace.product import Product, default_tv_lineup
from repro.marketplace.rater import RaterProfile, activity_weights, build_rater_pool
from repro.types import DEFAULT_SCALE, RatingScale, RatingDataset, RatingStream
from repro.utils.rng import SeedLike, resolve_rng, spawn_rng

__all__ = ["FairRatingConfig", "FairRatingGenerator"]


@dataclass(frozen=True)
class FairRatingConfig:
    """Parameters of the fair-rating world.

    Attributes
    ----------
    start_day / duration_days:
        The challenge window proper; the paper's challenge spanned roughly
        82 days (April 25 to July 15, 2007).
    history_days:
        Pre-challenge rating history generated *before* ``start_day``
        (attacks are not allowed there).  Real products carry a rating
        history, and the change detectors need that baseline: an attack
        running from the first day of the challenge is still an abrupt
        change relative to the history.
    base_arrivals_per_day:
        Catalogue-average fair ratings per product per day, before the
        popularity multiplier.
    weekly_amplitude:
        Relative amplitude of the weekly arrival cycle (0 disables).
    trend_amplitude:
        Relative amplitude of a slow sinusoidal popularity drift across the
        whole window (0 disables).
    value_step:
        Quantisation step for rating values (``None`` keeps values
        continuous; 0.5 mimics half-star widgets; 1.0 whole stars).
    rater_pool_size:
        Number of distinct honest raters shared across all products.
    """

    start_day: float = 0.0
    duration_days: float = 82.0
    history_days: float = 45.0
    base_arrivals_per_day: float = 6.0
    weekly_amplitude: float = 0.25
    trend_amplitude: float = 0.15
    value_step: Optional[float] = 0.5
    rater_pool_size: int = 400
    scale: RatingScale = field(default_factory=lambda: DEFAULT_SCALE)

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValidationError(f"duration_days must be > 0, got {self.duration_days}")
        if self.history_days < 0:
            raise ValidationError(f"history_days must be >= 0, got {self.history_days}")
        if self.base_arrivals_per_day <= 0:
            raise ValidationError(
                f"base_arrivals_per_day must be > 0, got {self.base_arrivals_per_day}"
            )
        if not 0 <= self.weekly_amplitude < 1:
            raise ValidationError(
                f"weekly_amplitude must be in [0, 1), got {self.weekly_amplitude}"
            )
        if not 0 <= self.trend_amplitude < 1:
            raise ValidationError(
                f"trend_amplitude must be in [0, 1), got {self.trend_amplitude}"
            )
        if self.value_step is not None and self.value_step <= 0:
            raise ValidationError(f"value_step must be > 0 or None, got {self.value_step}")
        if self.rater_pool_size < 1:
            raise ValidationError(
                f"rater_pool_size must be >= 1, got {self.rater_pool_size}"
            )

    @property
    def history_start_day(self) -> float:
        """Where the pre-challenge history begins."""
        return self.start_day - self.history_days

    @property
    def end_day(self) -> float:
        """Exclusive end of the observation window."""
        return self.start_day + self.duration_days


class FairRatingGenerator:
    """Generates a :class:`~repro.types.RatingDataset` of honest ratings.

    Parameters
    ----------
    products:
        Catalogue to generate ratings for; defaults to the nine-TV lineup.
    config:
        World parameters; defaults match the paper's challenge setting.
    seed:
        Root seed; the generator is fully reproducible from it.
    rater_pool:
        Optional pre-built honest-rater pool (built from the seed
        otherwise).
    """

    def __init__(
        self,
        products: Optional[Sequence[Product]] = None,
        config: Optional[FairRatingConfig] = None,
        seed: SeedLike = None,
        rater_pool: Optional[List[RaterProfile]] = None,
    ) -> None:
        self.products = list(products) if products is not None else default_tv_lineup()
        if not self.products:
            raise ValidationError("at least one product is required")
        self.config = config if config is not None else FairRatingConfig()
        self._rng = resolve_rng(seed)
        if rater_pool is not None:
            self.rater_pool = list(rater_pool)
        else:
            self.rater_pool = build_rater_pool(
                self.config.rater_pool_size, seed=spawn_rng(self._rng, 1)[0]
            )
        self._weights = activity_weights(self.rater_pool)

    # ------------------------------------------------------------------ #

    def _daily_rate(self, product: Product, day: float) -> float:
        """Expected fair-rating arrivals for ``product`` on ``day``."""
        cfg = self.config
        weekly = 1.0 + cfg.weekly_amplitude * np.sin(2.0 * np.pi * day / 7.0)
        total_span = cfg.history_days + cfg.duration_days
        phase = (day - cfg.history_start_day) / total_span
        trend = 1.0 + cfg.trend_amplitude * np.sin(2.0 * np.pi * phase)
        return cfg.base_arrivals_per_day * product.popularity * weekly * trend

    def _sample_times(self, product: Product, rng: np.random.Generator) -> np.ndarray:
        """Arrival times via day-wise thinned Poisson sampling."""
        cfg = self.config
        times: List[float] = []
        day = np.floor(cfg.history_start_day)
        while day < cfg.end_day:
            rate = self._daily_rate(product, day + 0.5)
            count = int(rng.poisson(rate))
            if count:
                offsets = rng.uniform(0.0, 1.0, count)
                for off in offsets:
                    t = day + off
                    if cfg.history_start_day <= t < cfg.end_day:
                        times.append(float(t))
            day += 1.0
        return np.sort(np.asarray(times, dtype=float))

    def _quantize(self, values: np.ndarray) -> np.ndarray:
        step = self.config.value_step
        if step is None:
            return values
        return np.round(values / step) * step

    def generate_stream(self, product: Product, rng: np.random.Generator) -> RatingStream:
        """Generate the fair stream for a single product."""
        times = self._sample_times(product, rng)
        n = times.size
        rater_idx = rng.choice(len(self.rater_pool), size=n, p=self._weights)
        leniency = np.asarray([self.rater_pool[i].leniency for i in rater_idx])
        noise_std = np.asarray([self.rater_pool[i].noise_std for i in rater_idx])
        total_std = np.sqrt(product.opinion_std**2 + noise_std**2)
        raw = product.true_quality + leniency + rng.normal(0.0, 1.0, n) * total_std
        values = self.config.scale.clip(self._quantize(raw))
        rater_ids = [self.rater_pool[i].rater_id for i in rater_idx]
        return RatingStream(product.product_id, times, values, rater_ids)

    def generate(self) -> RatingDataset:
        """Generate the full fair dataset (all products)."""
        child_rngs = spawn_rng(self._rng, len(self.products))
        streams = [
            self.generate_stream(product, rng)
            for product, rng in zip(self.products, child_rngs)
        ]
        return RatingDataset(streams)
