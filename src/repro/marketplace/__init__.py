"""Rating-system substrate: products, raters, fair data, challenge rules.

The paper collected real rating data for nine flat-panel TVs from a
shopping website and layered a human-subject *Rating Challenge* on top.
Neither the product data nor the 251 human submissions are public, so this
package provides the calibrated synthetic equivalents (see DESIGN.md,
"substitutions"):

- :mod:`repro.marketplace.product` / :mod:`repro.marketplace.rater` --
  typed product and rater profiles, including the default nine-TV lineup.
- :mod:`repro.marketplace.fair_ratings` -- the honest-rater data generator
  (ratings in [0, 5] with mean ~4, non-stationary Poisson arrivals).
- :mod:`repro.marketplace.mp` -- the Manipulation Power (MP) metric used to
  score challenge submissions.
- :mod:`repro.marketplace.challenge` -- the Rating Challenge: product set,
  50 biased raters, boost-2 / downgrade-2 objective, submission validation,
  evaluation, and leaderboards.
"""

from repro.marketplace.challenge import (
    ChallengeConfig,
    LeaderboardEntry,
    RatingChallenge,
)
from repro.marketplace.fair_ratings import FairRatingConfig, FairRatingGenerator
from repro.marketplace.metrics import (
    DetectionQuality,
    ScoreFidelity,
    detection_quality,
    score_fidelity,
)
from repro.marketplace.mp import MPResult, manipulation_power, monthly_deltas
from repro.marketplace.product import Product, default_tv_lineup
from repro.marketplace.rater import RaterProfile, build_rater_pool

__all__ = [
    "ChallengeConfig",
    "LeaderboardEntry",
    "RatingChallenge",
    "FairRatingConfig",
    "FairRatingGenerator",
    "DetectionQuality",
    "ScoreFidelity",
    "detection_quality",
    "score_fidelity",
    "MPResult",
    "manipulation_power",
    "monthly_deltas",
    "Product",
    "default_tv_lineup",
    "RaterProfile",
    "build_rater_pool",
]
