"""Product catalogue.

A :class:`Product` carries the latent parameters that drive its *fair*
ratings: the true quality (the mean an honest, unbiased rater converges
to), the dispersion of honest opinions about it, and its popularity (how
many ratings per day it attracts relative to the catalogue average).

:func:`default_tv_lineup` reconstructs the paper's setting: nine flat-panel
TVs "with similar features" -- similar but not identical qualities around
4 on the 0..5 scale, and mildly different popularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ValidationError
from repro.types import DEFAULT_SCALE, RatingScale

__all__ = ["Product", "default_tv_lineup"]


@dataclass(frozen=True)
class Product:
    """A rateable object and its latent fair-rating parameters.

    Attributes
    ----------
    product_id:
        Stable identifier, e.g. ``"tv1"``.
    name:
        Human-readable name.
    true_quality:
        The latent mean fair-rating value, on the rating scale.
    opinion_std:
        Standard deviation of honest opinions around ``true_quality``.
    popularity:
        Relative arrival-rate multiplier (1.0 = catalogue average).
    """

    product_id: str
    name: str
    true_quality: float
    opinion_std: float = 0.6
    popularity: float = 1.0
    scale: RatingScale = DEFAULT_SCALE

    def __post_init__(self) -> None:
        if not self.scale.contains(self.true_quality):
            raise ValidationError(
                f"true_quality {self.true_quality} outside rating scale "
                f"[{self.scale.minimum}, {self.scale.maximum}]"
            )
        if self.opinion_std <= 0:
            raise ValidationError(f"opinion_std must be > 0, got {self.opinion_std}")
        if self.popularity <= 0:
            raise ValidationError(f"popularity must be > 0, got {self.popularity}")


def default_tv_lineup() -> List[Product]:
    """The nine-TV catalogue mirroring the paper's challenge dataset.

    Qualities cluster around 4.0 (the paper reports the mean of fair
    ratings is "around 4"), with enough spread that products are
    distinguishable and popularity differences change arrival rates.
    """
    specs = [
        ("tv1", "42'' LCD A", 4.10, 0.55, 1.30),
        ("tv2", "42'' LCD B", 3.95, 0.60, 1.10),
        ("tv3", "46'' LCD A", 4.25, 0.50, 1.00),
        ("tv4", "46'' LCD B", 3.80, 0.65, 0.90),
        ("tv5", "50'' plasma A", 4.00, 0.60, 1.20),
        ("tv6", "50'' plasma B", 3.70, 0.70, 0.80),
        ("tv7", "37'' LCD A", 4.15, 0.55, 1.05),
        ("tv8", "37'' LCD B", 3.90, 0.60, 0.85),
        ("tv9", "52'' LCD A", 4.05, 0.58, 0.80),
    ]
    return [
        Product(product_id=pid, name=name, true_quality=q, opinion_std=std, popularity=pop)
        for pid, name, q, std, pop in specs
    ]
