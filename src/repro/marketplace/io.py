"""Serialization for rating datasets and attack submissions.

Two interchange formats:

- **CSV** for rating data -- one row per rating
  (``product_id,rater_id,time,value,unfair``), the shape in which rating
  traces are usually published;
- **JSON** for attack submissions -- the structured equivalent of the file
  the paper's challenge participants uploaded (who rates what, when, with
  which value), plus the strategy metadata the analysis modules use.

Both round-trip exactly (modulo float text formatting, which uses
``repr``-precision decimals).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.attacks.base import AttackSubmission, build_attack_stream
from repro.errors import ValidationError
from repro.types import RatingDataset, RatingStream

__all__ = [
    "dataset_to_csv",
    "dataset_from_csv",
    "save_dataset_csv",
    "load_dataset_csv",
    "submission_to_json",
    "submission_from_json",
    "save_submission_json",
    "load_submission_json",
]

_CSV_HEADER = ["product_id", "rater_id", "time", "value", "unfair"]


# --------------------------------------------------------------------- #
# Rating datasets <-> CSV
# --------------------------------------------------------------------- #


def dataset_to_csv(dataset: RatingDataset) -> str:
    """Render a dataset as CSV text (header + one row per rating)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_CSV_HEADER)
    for product_id in dataset:
        stream = dataset[product_id]
        for i in range(len(stream)):
            writer.writerow(
                [
                    product_id,
                    stream.rater_ids[i],
                    repr(float(stream.times[i])),
                    repr(float(stream.values[i])),
                    int(stream.unfair[i]),
                ]
            )
    return buffer.getvalue()


def dataset_from_csv(text: str) -> RatingDataset:
    """Parse CSV text produced by :func:`dataset_to_csv` (or compatible)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValidationError("empty CSV: expected a header row") from None
    if [h.strip() for h in header] != _CSV_HEADER:
        raise ValidationError(
            f"unexpected CSV header {header!r}; expected {_CSV_HEADER}"
        )
    rows: Dict[str, List] = {}
    for line_no, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 5:
            raise ValidationError(
                f"CSV line {line_no}: expected 5 fields, got {len(row)}"
            )
        product_id, rater_id, time_s, value_s, unfair_s = row
        try:
            time = float(time_s)
            value = float(value_s)
            unfair = bool(int(unfair_s))
        except ValueError as exc:
            raise ValidationError(f"CSV line {line_no}: {exc}") from None
        entry = rows.setdefault(product_id, [[], [], [], []])
        entry[0].append(time)
        entry[1].append(value)
        entry[2].append(rater_id)
        entry[3].append(unfair)
    streams = [
        RatingStream(product_id, times, values, raters, unfair)
        for product_id, (times, values, raters, unfair) in rows.items()
    ]
    return RatingDataset(streams)


def save_dataset_csv(dataset: RatingDataset, path: Union[str, Path]) -> None:
    """Write a dataset to a CSV file."""
    Path(path).write_text(dataset_to_csv(dataset))


def load_dataset_csv(path: Union[str, Path]) -> RatingDataset:
    """Read a dataset from a CSV file."""
    return dataset_from_csv(Path(path).read_text())


# --------------------------------------------------------------------- #
# Attack submissions <-> JSON
# --------------------------------------------------------------------- #


def submission_to_json(submission: AttackSubmission) -> str:
    """Render a submission as pretty-printed JSON."""
    payload = {
        "submission_id": submission.submission_id,
        "strategy": submission.strategy,
        "params": _jsonable(submission.params),
        "products": {
            product_id: {
                "ratings": [
                    {
                        "rater_id": stream.rater_ids[i],
                        "time": float(stream.times[i]),
                        "value": float(stream.values[i]),
                    }
                    for i in range(len(stream))
                ]
            }
            for product_id, stream in submission.streams.items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _jsonable(value):
    """Best-effort conversion of params metadata to JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def submission_from_json(text: str) -> AttackSubmission:
    """Parse JSON text produced by :func:`submission_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid submission JSON: {exc}") from None
    for key in ("submission_id", "products"):
        if key not in payload:
            raise ValidationError(f"submission JSON missing {key!r}")
    streams = {}
    for product_id, block in payload["products"].items():
        ratings = block.get("ratings", [])
        times = [r["time"] for r in ratings]
        values = [r["value"] for r in ratings]
        raters = [r["rater_id"] for r in ratings]
        streams[product_id] = build_attack_stream(product_id, times, values, raters)
    return AttackSubmission(
        submission_id=payload["submission_id"],
        streams=streams,
        strategy=payload.get("strategy", "unknown"),
        params=payload.get("params", {}),
    )


def save_submission_json(
    submission: AttackSubmission, path: Union[str, Path]
) -> None:
    """Write a submission to a JSON file."""
    Path(path).write_text(submission_to_json(submission))


def load_submission_json(path: Union[str, Path]) -> AttackSubmission:
    """Read a submission from a JSON file."""
    return submission_from_json(Path(path).read_text())
