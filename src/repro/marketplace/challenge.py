"""The Rating Challenge (paper Section III).

Rules reproduced here:

- a catalogue of nine similar products with real (here: synthetic) fair
  ratings over the challenge window;
- each participant controls **50 biased raters** and decides when each
  rater rates, which products, and with what values;
- each biased rater rates a given product **at most once** (the
  aggregation model of Eq. 7 assumes one rating per rater per object);
- the objective is to boost up to two products and downgrade up to two
  others;
- submissions are scored by the MP metric (30-day periods, top two
  monthly deviations per product) under a chosen aggregation scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.base import AttackSubmission
from repro.errors import ChallengeRuleError, ValidationError
from repro.marketplace.fair_ratings import FairRatingConfig, FairRatingGenerator
from repro.marketplace.mp import MPResult, manipulation_power
from repro.marketplace.product import Product, default_tv_lineup
from repro.types import DEFAULT_SCALE, RatingDataset, RatingScale, RatingStream
from repro.utils.rng import SeedLike

__all__ = ["ChallengeConfig", "RatingChallenge", "LeaderboardEntry"]


@dataclass(frozen=True)
class ChallengeConfig:
    """Static parameters of a Rating Challenge instance."""

    n_biased_raters: int = 50
    max_boost_products: int = 2
    max_downgrade_products: int = 2
    period_days: float = 30.0
    biased_rater_prefix: str = "attacker"
    scale: RatingScale = field(default_factory=lambda: DEFAULT_SCALE)

    def __post_init__(self) -> None:
        if self.n_biased_raters < 1:
            raise ValidationError(
                f"n_biased_raters must be >= 1, got {self.n_biased_raters}"
            )
        if self.max_boost_products < 0 or self.max_downgrade_products < 0:
            raise ValidationError("product limits must be >= 0")
        if self.period_days <= 0:
            raise ValidationError(f"period_days must be > 0, got {self.period_days}")

    @property
    def max_attacked_products(self) -> int:
        """Upper bound on distinct products a submission may touch."""
        return self.max_boost_products + self.max_downgrade_products

    def biased_rater_ids(self) -> Tuple[str, ...]:
        """The rater ids the participant controls."""
        width = max(2, len(str(self.n_biased_raters - 1)))
        return tuple(
            f"{self.biased_rater_prefix}_{i:0{width}d}"
            for i in range(self.n_biased_raters)
        )


@dataclass(frozen=True)
class LeaderboardEntry:
    """One row of a challenge leaderboard."""

    rank: int
    submission_id: str
    strategy: str
    total_mp: float
    per_product: Dict[str, float]


class RatingChallenge:
    """A runnable instance of the paper's Rating Challenge.

    Parameters
    ----------
    products / fair_config / seed:
        Forwarded to :class:`FairRatingGenerator` when ``fair_dataset`` is
        not supplied.
    fair_dataset:
        Pre-generated fair data (lets several challenges share one world).
    config:
        Challenge rules.
    """

    def __init__(
        self,
        products: Optional[Sequence[Product]] = None,
        fair_config: Optional[FairRatingConfig] = None,
        config: Optional[ChallengeConfig] = None,
        seed: SeedLike = None,
        fair_dataset: Optional[RatingDataset] = None,
    ) -> None:
        self.products = list(products) if products is not None else default_tv_lineup()
        self.fair_config = fair_config if fair_config is not None else FairRatingConfig()
        self.config = config if config is not None else ChallengeConfig()
        if fair_dataset is not None:
            self.fair_dataset = fair_dataset
        else:
            generator = FairRatingGenerator(
                products=self.products, config=self.fair_config, seed=seed
            )
            self.fair_dataset = generator.generate()
        # When the whole world is a pure function of an integer seed
        # (all-default construction), record it: the parallel engine uses
        # it to rebuild this challenge identically in worker processes.
        reconstructible = (
            products is None
            and fair_config is None
            and config is None
            and fair_dataset is None
            and isinstance(seed, int)
            and not isinstance(seed, bool)
        )
        self.seed: Optional[int] = int(seed) if reconstructible else None
        self._biased_ids = set(self.config.biased_rater_ids())
        self._product_ids = {p.product_id for p in self.products}

    # ------------------------------------------------------------------ #
    # Time span
    # ------------------------------------------------------------------ #

    @property
    def start_day(self) -> float:
        """Challenge window start (from the fair-rating config)."""
        return self.fair_config.start_day

    @property
    def end_day(self) -> float:
        """Challenge window end (exclusive)."""
        return self.fair_config.end_day

    # ------------------------------------------------------------------ #
    # Rule validation
    # ------------------------------------------------------------------ #

    def validate(self, submission: AttackSubmission) -> None:
        """Raise :class:`~repro.errors.ChallengeRuleError` on any violation.

        Checks: attacked products exist and are at most the boost+downgrade
        budget; rater ids are the participant's biased raters; each biased
        rater rates each product at most once; times lie in the challenge
        window; values lie on the rating scale.
        """
        if len(submission.streams) > self.config.max_attacked_products:
            raise ChallengeRuleError(
                f"submission attacks {len(submission.streams)} products; the "
                f"challenge allows at most {self.config.max_attacked_products}"
            )
        for product_id, stream in submission.streams.items():
            if product_id not in self._product_ids:
                raise ChallengeRuleError(
                    f"product {product_id!r} is not part of the challenge"
                )
            seen_raters = set()
            for rating in stream:
                if rating.rater_id not in self._biased_ids:
                    raise ChallengeRuleError(
                        f"rater {rating.rater_id!r} is not one of the "
                        f"{self.config.n_biased_raters} biased raters"
                    )
                if rating.rater_id in seen_raters:
                    raise ChallengeRuleError(
                        f"rater {rating.rater_id!r} rates product "
                        f"{product_id!r} more than once"
                    )
                seen_raters.add(rating.rater_id)
                if not self.start_day <= rating.time < self.end_day:
                    raise ChallengeRuleError(
                        f"rating at day {rating.time:.2f} is outside the "
                        f"challenge window [{self.start_day}, {self.end_day})"
                    )
                if not self.config.scale.contains(rating.value):
                    raise ChallengeRuleError(
                        f"rating value {rating.value} is outside the scale "
                        f"[{self.config.scale.minimum}, {self.config.scale.maximum}]"
                    )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def attacked_dataset(self, submission: AttackSubmission) -> RatingDataset:
        """Fair data with the submission's unfair ratings merged in."""
        return self.fair_dataset.merge(submission.as_dict())

    def evaluate(
        self, submission: AttackSubmission, scheme, validate: bool = True
    ) -> MPResult:
        """Score one submission under ``scheme`` (any aggregation scheme)."""
        if validate:
            self.validate(submission)
        return manipulation_power(
            scheme,
            self.attacked_dataset(submission),
            self.fair_dataset,
            period_days=self.config.period_days,
            start_day=self.start_day,
            end_day=self.end_day,
        )

    def replay_online(
        self,
        scheme,
        submission: Optional[AttackSubmission] = None,
        validate: bool = True,
        registry=None,
        monitor_drift: bool = True,
        series_recorder=None,
    ):
        """Stream the challenge world through an online rating system.

        The (optionally attacked) dataset splits at :attr:`start_day`:
        everything earlier seeds the system as pre-challenge history
        (calibrating the drift monitor), everything later is submitted in
        timestamp order, and every epoch that fits *completely* inside
        the challenge window is closed.  A trailing partial window stays
        accumulating: checking drift over a window the data only partly
        covers zero-pads the daily arrival counts, which systematically
        inflates the dispersion statistic and false-alarms on fair
        worlds.  Returns the :class:`~repro.online.system.
        OnlineRatingSystem` with its epoch reports -- the operational
        (drift/alert) view of the same world the batch evaluator scores.
        """
        from repro.online.system import OnlineRatingSystem

        if submission is not None and validate:
            self.validate(submission)
        dataset = (
            self.attacked_dataset(submission)
            if submission is not None
            else self.fair_dataset
        )
        history: List = []
        live: List = []
        for stream in dataset.streams():
            for rating in stream:
                (history if rating.time < self.start_day else live).append(rating)
        history_streams = {}
        for rating in history:
            history_streams.setdefault(rating.product_id, []).append(rating)
        history_dataset = RatingDataset(
            [
                RatingStream.from_ratings(product_id, ratings)
                for product_id, ratings in history_streams.items()
            ]
        )
        system = OnlineRatingSystem(
            scheme,
            start_day=self.start_day,
            period_days=self.config.period_days,
            history=history_dataset if history else None,
            registry=registry,
            monitor_drift=monitor_drift,
            series_recorder=series_recorder,
        )
        system.submit_many(sorted(live))
        while system.current_epoch_end <= self.end_day:
            system.close_epoch()
        return system

    def leaderboard(
        self,
        submissions: Sequence[AttackSubmission],
        scheme,
        validate: bool = True,
        results: Optional[Sequence[MPResult]] = None,
    ) -> List[LeaderboardEntry]:
        """Rank submissions by total MP under ``scheme`` (descending).

        ``results`` (aligned with ``submissions``) skips re-evaluation --
        used when MP values were already computed, e.g. by the parallel
        evaluation engine.
        """
        if results is None:
            results = [
                self.evaluate(submission, scheme, validate=validate)
                for submission in submissions
            ]
        results = sorted(
            zip(submissions, results), key=lambda pair: -pair[1].total
        )
        return [
            LeaderboardEntry(
                rank=i + 1,
                submission_id=submission.submission_id,
                strategy=submission.strategy,
                total_mp=result.total,
                per_product=dict(result.per_product),
            )
            for i, (submission, result) in enumerate(results)
        ]
