"""The Manipulation Power (MP) metric.

Paper, Section III: for each product ``k`` the aggregated rating score is
computed for every 30-day period, with and without the unfair ratings:

    delta_i = | R_ag^o(t_i)  -  R_ag(t_i) |

and the product's MP is the sum of the two largest monthly deviations,
``delta_max1 + delta_max2``.  The submission's overall MP sums over
products.  The two-largest rule is what pushed smart challenge
participants to concentrate attacks into one or two months.

The metric is parametric in the *aggregation scheme*: any object with a
``monthly_scores(dataset, period_days, start_day, end_day)`` method that
returns ``{product_id: array of per-month scores}`` (NaN for months with
no published score).  All schemes in :mod:`repro.aggregation` satisfy it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.types import RatingDataset
from repro.utils.validation import check_positive

__all__ = ["MPResult", "monthly_deltas", "manipulation_power", "month_edges"]


def month_edges(
    start_day: float, end_day: float, period_days: float = 30.0
) -> np.ndarray:
    """Period boundary times covering ``[start_day, end_day)``.

    Returns ``[start, start + P, start + 2P, ...]`` with the last edge at
    or beyond ``end_day``; at least one full period is always produced.
    """
    period_days = check_positive(period_days, "period_days")
    if end_day <= start_day:
        raise ValidationError(
            f"end_day ({end_day}) must be after start_day ({start_day})"
        )
    n_periods = max(1, math.ceil((end_day - start_day) / period_days - 1e-9))
    return start_day + period_days * np.arange(n_periods + 1, dtype=float)


@dataclass(frozen=True)
class MPResult:
    """Outcome of scoring one attacked dataset against a scheme.

    Attributes
    ----------
    scheme_name:
        Name of the aggregation scheme used.
    deltas:
        ``{product_id: per-month |score difference| array}``.
    per_product:
        ``{product_id: delta_max1 + delta_max2}``.
    total:
        Overall MP (sum of ``per_product`` values).
    """

    scheme_name: str
    deltas: Dict[str, np.ndarray]
    per_product: Dict[str, float]
    total: float

    def top_months(self, product_id: str) -> Tuple[int, int]:
        """Indices of the two largest monthly deltas for ``product_id``.

        For single-month timelines the second index repeats the first.
        """
        arr = self.deltas[product_id]
        order = np.argsort(arr)[::-1]
        first = int(order[0])
        second = int(order[1]) if arr.size > 1 else first
        return first, second


def _nan_to_zero_abs_diff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``|a - b|`` treating months where either score is NaN as delta 0.

    A month with no published score (no ratings, or everything filtered)
    contributes no manipulation -- the attacker moved nothing visible.
    """
    diff = np.abs(a - b)
    diff[~np.isfinite(diff)] = 0.0
    return diff


def monthly_deltas(
    scheme,
    attacked: RatingDataset,
    fair: RatingDataset,
    period_days: float = 30.0,
    start_day: Optional[float] = None,
    end_day: Optional[float] = None,
) -> Dict[str, np.ndarray]:
    """Per-product per-month score deviations caused by the attack.

    ``start_day`` / ``end_day`` default to the fair dataset's overall time
    span, so the attack cannot shift the month grid.
    """
    if start_day is None or end_day is None:
        spans = [s.time_span() for s in fair.streams() if len(s)]
        if not spans:
            raise ValidationError("fair dataset has no ratings to infer a time span")
        inferred_start = min(lo for lo, _ in spans)
        inferred_end = max(hi for _, hi in spans) + 1e-9
        start_day = inferred_start if start_day is None else start_day
        end_day = inferred_end if end_day is None else end_day
    attacked_scores = scheme.monthly_scores(attacked, period_days, start_day, end_day)
    fair_scores = scheme.monthly_scores(fair, period_days, start_day, end_day)
    deltas: Dict[str, np.ndarray] = {}
    for product_id in fair.product_ids:
        deltas[product_id] = _nan_to_zero_abs_diff(
            attacked_scores[product_id], fair_scores[product_id]
        )
    return deltas


def manipulation_power(
    scheme,
    attacked: RatingDataset,
    fair: RatingDataset,
    period_days: float = 30.0,
    start_day: Optional[float] = None,
    end_day: Optional[float] = None,
) -> MPResult:
    """Full MP evaluation of ``attacked`` against ``fair`` under ``scheme``."""
    deltas = monthly_deltas(scheme, attacked, fair, period_days, start_day, end_day)
    per_product: Dict[str, float] = {}
    for product_id, arr in deltas.items():
        if arr.size == 0:
            per_product[product_id] = 0.0
            continue
        top = np.sort(arr)[::-1]
        first = float(top[0])
        second = float(top[1]) if top.size > 1 else 0.0
        per_product[product_id] = first + second
    return MPResult(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        deltas=deltas,
        per_product=per_product,
        total=float(sum(per_product.values())),
    )
