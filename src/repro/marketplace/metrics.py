"""Defender-side evaluation metrics.

The MP metric scores the *attacker*.  A system operator cares about the
dual quantities:

- **score fidelity** -- how far published scores sit from the products'
  latent true quality (RMSE/MAE over products and months), with and
  without an attack in the data;
- **detection quality** -- precision/recall of the suspicious-rating marks
  against ground truth, per product and pooled.

These metrics power the ablation/sensitivity tooling and give adopters a
way to compare schemes on *their* traffic, not only against challenge
attackers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.errors import EmptyDataError, ValidationError
from repro.marketplace.product import Product
from repro.types import RatingDataset

__all__ = [
    "ScoreFidelity",
    "DetectionQuality",
    "score_fidelity",
    "detection_quality",
]


@dataclass(frozen=True)
class ScoreFidelity:
    """Published-score error against latent true quality."""

    rmse: float
    mae: float
    worst_product: str
    worst_error: float
    n_scores: int


def score_fidelity(
    scheme,
    dataset: RatingDataset,
    products: Sequence[Product],
    period_days: float = 30.0,
    start_day: float = 0.0,
    end_day: float = 90.0,
) -> ScoreFidelity:
    """Measure how close the scheme's monthly scores sit to true quality.

    NaN months (no publishable score) are skipped.  Raises
    :class:`~repro.errors.EmptyDataError` when no finite score exists.
    """
    quality = {p.product_id: p.true_quality for p in products}
    missing = [pid for pid in dataset if pid not in quality]
    if missing:
        raise ValidationError(
            f"no true quality known for products {missing}"
        )
    scores = scheme.monthly_scores(dataset, period_days, start_day, end_day)
    errors = []
    per_product_error: Dict[str, float] = {}
    for product_id, series in scores.items():
        finite = series[np.isfinite(series)]
        if finite.size == 0:
            continue
        diffs = finite - quality[product_id]
        errors.extend(diffs.tolist())
        per_product_error[product_id] = float(np.abs(diffs).mean())
    if not errors:
        raise EmptyDataError("no finite monthly scores to measure")
    errors_arr = np.asarray(errors)
    worst_product = max(per_product_error, key=per_product_error.get)
    return ScoreFidelity(
        rmse=float(np.sqrt((errors_arr**2).mean())),
        mae=float(np.abs(errors_arr).mean()),
        worst_product=worst_product,
        worst_error=per_product_error[worst_product],
        n_scores=int(errors_arr.size),
    )


@dataclass(frozen=True)
class DetectionQuality:
    """Precision/recall of suspicious-rating marks vs ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was marked."""
        marked = self.true_positives + self.false_positives
        return self.true_positives / marked if marked else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was unfair."""
        unfair = self.true_positives + self.false_negatives
        return self.true_positives / unfair if unfair else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """FP over all fair ratings."""
        fair = self.false_positives + self.true_negatives
        return self.false_positives / fair if fair else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def detection_quality(
    detector,
    dataset: RatingDataset,
    marks: Optional[Mapping[str, np.ndarray]] = None,
) -> DetectionQuality:
    """Pool detection confusion counts over a dataset with ground truth.

    ``marks`` may be supplied (e.g. from a P-scheme run); otherwise the
    ``detector`` is run on every product stream.
    """
    tp = fp = fn = tn = 0
    reports = None
    if marks is None and hasattr(detector, "analyze_batch"):
        reports = detector.analyze_batch(dataset)
    for product_id in dataset:
        stream = dataset[product_id]
        if marks is not None:
            suspicious = np.asarray(marks[product_id], dtype=bool)
            if suspicious.size != len(stream):
                raise ValidationError(
                    f"marks for {product_id!r} misaligned with stream"
                )
        elif reports is not None:
            suspicious = reports[product_id].suspicious
        else:
            suspicious = detector.analyze(stream).suspicious
        unfair = stream.unfair
        tp += int((suspicious & unfair).sum())
        fp += int((suspicious & ~unfair).sum())
        fn += int((~suspicious & unfair).sum())
        tn += int((~suspicious & ~unfair).sum())
    return DetectionQuality(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )
