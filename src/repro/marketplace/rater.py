"""Honest-rater profiles.

Fair ratings are not perfectly clean: real raters have personal leniency
(some always rate half a star high), personal noise, and wildly different
activity levels.  The paper's detectors must tolerate exactly this
non-ideality -- "even without unfair ratings, fair ratings can have
variation such as in mean and arrival rate" (Section IV-F) -- so the
honest-rater model reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["RaterProfile", "build_rater_pool"]


@dataclass(frozen=True)
class RaterProfile:
    """An honest rater's latent behaviour parameters.

    Attributes
    ----------
    rater_id:
        Stable identifier, e.g. ``"user_0042"``.
    leniency:
        Personal additive offset applied to every rating (positive raters
        exist, as do harsh ones).
    noise_std:
        The rater's personal rating noise on top of the product's
        opinion spread.
    activity:
        Relative probability weight of this rater being the author of any
        given fair rating.
    """

    rater_id: str
    leniency: float = 0.0
    noise_std: float = 0.3
    activity: float = 1.0


def build_rater_pool(
    size: int,
    seed: SeedLike = None,
    leniency_std: float = 0.35,
    noise_low: float = 0.15,
    noise_high: float = 0.55,
    id_prefix: str = "user",
) -> List[RaterProfile]:
    """Sample a pool of :class:`RaterProfile` honest raters.

    Leniency is Gaussian around zero; per-rater noise is uniform in
    ``[noise_low, noise_high]``; activity follows a Pareto-like heavy tail
    (a few prolific raters, many occasional ones), matching the skew of
    review counts on real shopping sites.
    """
    size = check_positive_int(size, "size")
    rng = resolve_rng(seed)
    leniencies = rng.normal(0.0, leniency_std, size)
    noises = rng.uniform(noise_low, noise_high, size)
    activities = rng.pareto(1.5, size) + 0.2
    width = max(4, len(str(size - 1)))
    return [
        RaterProfile(
            rater_id=f"{id_prefix}_{i:0{width}d}",
            leniency=float(leniencies[i]),
            noise_std=float(noises[i]),
            activity=float(activities[i]),
        )
        for i in range(size)
    ]


def activity_weights(pool: List[RaterProfile]) -> np.ndarray:
    """Normalized activity weights of a rater pool (sums to 1)."""
    weights = np.asarray([r.activity for r in pool], dtype=float)
    total = weights.sum()
    if total <= 0:
        return np.full(len(pool), 1.0 / max(len(pool), 1))
    return weights / total
