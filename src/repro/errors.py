"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError` from misuse of
third-party code.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "EmptyDataError",
    "ChallengeRuleError",
    "DetectorError",
    "AggregationError",
    "AttackSpecError",
    "ExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong shape, ...)."""


class EmptyDataError(ValidationError):
    """An operation that needs data received an empty dataset or stream."""


class ChallengeRuleError(ReproError):
    """A submission violates the Rating Challenge rules.

    Examples: using more than the allotted number of biased raters, rating
    products outside the challenge's product set, or rating outside the
    challenge time span.
    """


class DetectorError(ReproError):
    """An unfair-rating detector could not run on the supplied stream."""


class AggregationError(ReproError):
    """A rating aggregation scheme could not produce a score."""


class AttackSpecError(ValidationError):
    """An attack specification is inconsistent or out of range."""


class ExecutionError(ReproError):
    """A parallel evaluation task failed inside the execution engine."""
