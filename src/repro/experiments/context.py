"""Shared world + population + cached evaluations for the experiments.

All of the paper's evaluation figures are computed over the same objects:
one fair-rating world, one population of challenge submissions, and the
three defense schemes.  Building them is the expensive part (the P-scheme
runs five detectors per product per submission), so the context constructs
everything lazily and memoizes MP results per scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.aggregation import BetaFilterScheme, PScheme, SimpleAveragingScheme
from repro.attacks.base import AttackSubmission
from repro.attacks.population import PopulationConfig, generate_population
from repro.errors import ValidationError
from repro.exec import MPCache, ParallelEvaluator, PopulationEvalTask, share_context
from repro.marketplace.challenge import RatingChallenge
from repro.marketplace.mp import MPResult

__all__ = ["ExperimentContext"]

SCHEME_NAMES = ("P", "SA", "BF")


@dataclass
class ExperimentContext:
    """Lazily built world, population, schemes, and MP evaluations.

    Parameters
    ----------
    seed:
        Root seed for the fair world (population uses ``seed + 1``).
    population_size:
        Number of synthetic challenge submissions (251 reproduces the
        paper; tests use smaller populations).
    workers:
        Worker processes for population evaluation; ``0`` (default)
        evaluates inline.  Parallel results are bit-identical to serial
        ones (see :mod:`repro.exec`).
    cache_dir:
        Optional directory for the persistent MP cache; re-running the
        same experiment turns evaluations into disk reads.
    hermetic_telemetry:
        Build per-task scheme instances when telemetry is collected, so
        merged metrics are bit-identical at any worker count (see
        :class:`~repro.exec.ParallelEvaluator`).  Off by default.
    """

    seed: int = 2008
    population_size: int = 251
    workers: int = 0
    cache_dir: Optional[str] = None
    hermetic_telemetry: bool = False

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ValidationError(
                f"population_size must be >= 1, got {self.population_size}"
            )
        self._challenge: Optional[RatingChallenge] = None
        self._population: Optional[List[AttackSubmission]] = None
        self._schemes: Dict[str, object] = {}
        self._results: Dict[str, Dict[str, MPResult]] = {}
        self._evaluator: Optional[ParallelEvaluator] = None

    # ------------------------------------------------------------------ #

    @property
    def challenge(self) -> RatingChallenge:
        """The challenge world (built on first use)."""
        if self._challenge is None:
            self._challenge = RatingChallenge(seed=self.seed)
        return self._challenge

    @property
    def population(self) -> List[AttackSubmission]:
        """The synthetic submission population (built on first use)."""
        if self._population is None:
            config = PopulationConfig(size=self.population_size)
            self._population = generate_population(
                self.challenge, config, seed=self.seed + 1
            )
        return self._population

    def scheme(self, name: str):
        """A shared scheme instance by name (``"P"``, ``"SA"``, ``"BF"``)."""
        if name not in SCHEME_NAMES:
            raise ValidationError(f"unknown scheme {name!r}; expected {SCHEME_NAMES}")
        if name not in self._schemes:
            self._schemes[name] = {
                "P": PScheme,
                "SA": SimpleAveragingScheme,
                "BF": BetaFilterScheme,
            }[name]()
        return self._schemes[name]

    # ------------------------------------------------------------------ #

    @property
    def evaluator(self) -> ParallelEvaluator:
        """The task evaluator backing :meth:`results_for` (built lazily)."""
        if self._evaluator is None:
            cache = MPCache(cache_dir=self.cache_dir) if self.cache_dir else None
            self._evaluator = ParallelEvaluator(
                workers=self.workers,
                cache=cache,
                hermetic_telemetry=self.hermetic_telemetry,
            )
        return self._evaluator

    def close(self) -> None:
        """Release the evaluator's worker pool, if one was started."""
        if self._evaluator is not None:
            self._evaluator.close()

    def results_for(self, scheme_name: str) -> Dict[str, MPResult]:
        """MP results of the whole population under one scheme (cached).

        Each submission is one :class:`~repro.exec.tasks.PopulationEvalTask`;
        with ``workers > 0`` the population fans out across processes, and
        with ``cache_dir`` set repeated runs replay from disk.  Either way
        the values are bit-identical to the plain serial loop.
        """
        if scheme_name not in self._results:
            self.scheme(scheme_name)  # validates the name eagerly
            population = self.population  # build world before forking
            share_context(self)
            tasks = [
                PopulationEvalTask(
                    root_seed=self.seed,
                    population_size=self.population_size,
                    scheme_name=scheme_name,
                    index=index,
                )
                for index in range(len(population))
            ]
            values = self.evaluator.map(tasks)
            self._results[scheme_name] = {
                submission.submission_id: value
                for submission, value in zip(population, values)
            }
        return self._results[scheme_name]

    def max_total_mp(self, scheme_name: str) -> float:
        """The population's best total MP under one scheme."""
        results = self.results_for(scheme_name)
        return max(result.total for result in results.values())
