"""Shared world + population + cached evaluations for the experiments.

All of the paper's evaluation figures are computed over the same objects:
one fair-rating world, one population of challenge submissions, and the
three defense schemes.  Building them is the expensive part (the P-scheme
runs five detectors per product per submission), so the context constructs
everything lazily and memoizes MP results per scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.aggregation import BetaFilterScheme, PScheme, SimpleAveragingScheme
from repro.attacks.base import AttackSubmission
from repro.attacks.population import PopulationConfig, generate_population
from repro.errors import ValidationError
from repro.marketplace.challenge import RatingChallenge
from repro.marketplace.mp import MPResult

__all__ = ["ExperimentContext"]

SCHEME_NAMES = ("P", "SA", "BF")


@dataclass
class ExperimentContext:
    """Lazily built world, population, schemes, and MP evaluations.

    Parameters
    ----------
    seed:
        Root seed for the fair world (population uses ``seed + 1``).
    population_size:
        Number of synthetic challenge submissions (251 reproduces the
        paper; tests use smaller populations).
    """

    seed: int = 2008
    population_size: int = 251

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ValidationError(
                f"population_size must be >= 1, got {self.population_size}"
            )
        self._challenge: Optional[RatingChallenge] = None
        self._population: Optional[List[AttackSubmission]] = None
        self._schemes: Dict[str, object] = {}
        self._results: Dict[str, Dict[str, MPResult]] = {}

    # ------------------------------------------------------------------ #

    @property
    def challenge(self) -> RatingChallenge:
        """The challenge world (built on first use)."""
        if self._challenge is None:
            self._challenge = RatingChallenge(seed=self.seed)
        return self._challenge

    @property
    def population(self) -> List[AttackSubmission]:
        """The synthetic submission population (built on first use)."""
        if self._population is None:
            config = PopulationConfig(size=self.population_size)
            self._population = generate_population(
                self.challenge, config, seed=self.seed + 1
            )
        return self._population

    def scheme(self, name: str):
        """A shared scheme instance by name (``"P"``, ``"SA"``, ``"BF"``)."""
        if name not in SCHEME_NAMES:
            raise ValidationError(f"unknown scheme {name!r}; expected {SCHEME_NAMES}")
        if name not in self._schemes:
            self._schemes[name] = {
                "P": PScheme,
                "SA": SimpleAveragingScheme,
                "BF": BetaFilterScheme,
            }[name]()
        return self._schemes[name]

    # ------------------------------------------------------------------ #

    def results_for(self, scheme_name: str) -> Dict[str, MPResult]:
        """MP results of the whole population under one scheme (cached)."""
        if scheme_name not in self._results:
            scheme = self.scheme(scheme_name)
            challenge = self.challenge
            self._results[scheme_name] = {
                submission.submission_id: challenge.evaluate(
                    submission, scheme, validate=False
                )
                for submission in self.population
            }
        return self._results[scheme_name]

    def max_total_mp(self, scheme_name: str) -> float:
        """The population's best total MP under one scheme."""
        results = self.results_for(scheme_name)
        return max(result.total for result in results.values())
