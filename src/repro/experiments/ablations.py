"""Ablation study of the P-scheme's design choices.

DESIGN.md calls out four load-bearing decisions in the proposed system;
each variant below removes exactly one and re-measures the MP a canonical
attack set achieves:

- ``full``           -- the complete P-scheme;
- ``no-path1``       -- Figure 1 without the strong-attack path
                        (MC + ARC interval confirmation);
- ``no-path2``       -- Figure 1 without the alarm-confirmation path
                        (ARC alarm gated by ME/HC);
- ``single-scale``   -- only the paper's 30-day ARC window (no long
                        window), which blinds the scheme to slow drips;
- ``filter-only``    -- detection without the trust layer: marked ratings
                        are dropped, survivors averaged unweighted.

The canonical attack set covers the behaviours the full scheme is designed
for: a windowed strong downgrade, a one-day burst, a whole-window drip,
and the camouflage strike (which specifically targets the trust layer).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.aggregation.pscheme import PScheme, PSchemeConfig
from repro.analysis.reporting import format_table
from repro.attacks.advanced import camouflage_attack
from repro.attacks.base import AttackSubmission, ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.time_models import ConcentratedBurst, UniformWindow
from repro.detectors.base import DetectorConfig
from repro.experiments.context import ExperimentContext

__all__ = ["AblationResult", "run_pscheme_ablation", "ABLATION_VARIANTS"]


def _variant_configs() -> Dict[str, PSchemeConfig]:
    base_detector = DetectorConfig()
    return {
        "full": PSchemeConfig(),
        "no-path1": PSchemeConfig(detector=replace(base_detector, enable_path1=False)),
        "no-path2": PSchemeConfig(detector=replace(base_detector, enable_path2=False)),
        "single-scale": PSchemeConfig(
            detector=replace(base_detector, arc_long_window_days=0)
        ),
        "filter-only": PSchemeConfig(use_trust_weights=False),
    }


ABLATION_VARIANTS: Tuple[str, ...] = tuple(_variant_configs())


@dataclass(frozen=True)
class AblationResult:
    """MP of each canonical attack under each P-scheme variant."""

    attack_names: Tuple[str, ...]
    variant_names: Tuple[str, ...]
    mp: Dict[str, Dict[str, float]]  # variant -> attack -> MP
    sa_mp: Dict[str, float]  # attack -> MP under plain averaging (reference)

    def to_text(self) -> str:
        headers = ["attack", "SA (ref)"] + list(self.variant_names)
        rows = []
        for attack in self.attack_names:
            rows.append(
                [attack, self.sa_mp[attack]]
                + [self.mp[variant][attack] for variant in self.variant_names]
            )
        return format_table(
            headers, rows, title="P-scheme ablation (total MP; lower = better defense)"
        )


def _canonical_attacks(context: ExperimentContext) -> List[Tuple[str, AttackSubmission]]:
    challenge = context.challenge
    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        scale=challenge.config.scale,
        seed=context.seed + 23,
    )
    pids = challenge.fair_dataset.product_ids
    targets = [
        ProductTarget(pids[0], -1),
        ProductTarget(pids[1], -1),
        ProductTarget(pids[2], +1),
        ProductTarget(pids[3], +1),
    ]
    span = challenge.end_day - challenge.start_day
    mid = challenge.start_day + span / 2.0
    attacks: List[Tuple[str, AttackSubmission]] = [
        (
            "windowed downgrade",
            generator.generate(
                targets, AttackSpec(3.0, 0.2, 50, UniformWindow(mid - 15.0, 25.0))
            ),
        ),
        (
            "one-day burst",
            generator.generate(
                targets, AttackSpec(3.0, 0.3, 50, ConcentratedBurst(mid, 1.0))
            ),
        ),
        (
            "whole-window drip",
            generator.generate(
                targets,
                AttackSpec(
                    3.5, 0.2, 50,
                    UniformWindow(challenge.start_day + 1.0, span - 2.0),
                ),
            ),
        ),
        (
            "camouflage strike",
            camouflage_attack(
                challenge.fair_dataset,
                targets,
                challenge.config.biased_rater_ids(),
                bias_magnitude=3.0,
                camouflage_end=challenge.start_day + 0.35 * span,
                strike_start=challenge.start_day + 0.55 * span,
                strike_duration=0.25 * span,
                seed=context.seed + 29,
            ),
        ),
    ]
    return attacks


def run_pscheme_ablation(context: ExperimentContext) -> AblationResult:
    """Evaluate the canonical attack set under every P-scheme variant."""
    challenge = context.challenge
    attacks = _canonical_attacks(context)
    variants = _variant_configs()
    mp: Dict[str, Dict[str, float]] = {}
    for variant_name, config in variants.items():
        scheme = PScheme(config)
        mp[variant_name] = {
            attack_name: challenge.evaluate(submission, scheme, validate=False).total
            for attack_name, submission in attacks
        }
    sa = context.scheme("SA")
    sa_mp = {
        attack_name: challenge.evaluate(submission, sa, validate=False).total
        for attack_name, submission in attacks
    }
    return AblationResult(
        attack_names=tuple(name for name, _ in attacks),
        variant_names=tuple(variants),
        mp=mp,
        sa_mp=sa_mp,
    )
