"""Experiment runners -- one per table/figure of the paper's evaluation.

Each runner returns a structured result object; the benchmark harness
(``benchmarks/``) times the runners and prints the series the paper
reports.  The shared :class:`~repro.experiments.context.ExperimentContext`
builds the challenge world and the synthetic population once and caches
MP evaluations per scheme, since Figures 2-4, 6 and 7 all reuse them.

Index (see DESIGN.md section 4):

- E1-E3 / Figures 2-4: :func:`run_bias_variance_figure`
- E4 / Figure 5: :func:`run_region_search_figure`
- E5 / Figure 6: :func:`run_time_analysis_figure`
- E6 / Figure 7: :func:`run_correlation_figure`
- E7 / headline MP ratio: :func:`run_headline_comparison`
- E8 / detector operating points: :func:`run_operating_points`
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.figures import (
    BiasVarianceFigure,
    CorrelationFigure,
    HeadlineComparison,
    OperatingPoints,
    RegionSearchFigure,
    TimeAnalysisFigure,
    run_bias_variance_figure,
    run_correlation_figure,
    run_headline_comparison,
    run_operating_points,
    run_region_search_figure,
    run_time_analysis_figure,
)

__all__ = [
    "ExperimentContext",
    "BiasVarianceFigure",
    "CorrelationFigure",
    "HeadlineComparison",
    "OperatingPoints",
    "RegionSearchFigure",
    "TimeAnalysisFigure",
    "run_bias_variance_figure",
    "run_correlation_figure",
    "run_headline_comparison",
    "run_operating_points",
    "run_region_search_figure",
    "run_time_analysis_figure",
]
