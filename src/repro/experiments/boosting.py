"""Boosting-attack analysis -- the paper's deferred future work.

Section V-B analyses downgrading and observes that boosting "is not as
effective ... because the mean of the fair ratings is high and there is
not much room to further boost", deferring detailed analysis.  This
experiment carries it out:

1. **Headroom curve** -- max MP of a pure boost versus a pure downgrade
   of the same |bias| under each scheme, quantifying the ceiling effect.
2. **Boost-side variance-bias resolution** -- the paper notes the
   positive-bias half of the plane "does not have a high resolution";
   we measure it as the spread of the UMP winners' MP values relative to
   the LMP winners' (low spread = the regions cannot be told apart).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.bias_variance import VarianceBiasAnalysis
from repro.analysis.reporting import format_table
from repro.attacks.base import ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.time_models import UniformWindow
from repro.experiments.context import ExperimentContext

__all__ = ["BoostingAnalysis", "run_boosting_analysis"]


@dataclass(frozen=True)
class BoostingAnalysis:
    """Results of the boosting vs downgrading comparison."""

    headroom: Dict[str, List[Tuple[float, float, float]]]
    # scheme -> [(bias magnitude, boost MP, downgrade MP)]
    ump_mp_spread: float
    lmp_mp_spread: float

    @property
    def boost_weaker_under_sa(self) -> bool:
        """Paper claim (Section V-B): without defense-side detection, the
        boost is capped by the scale ceiling while the downgrade grows
        with |bias| -- so downgrading dominates under the SA-scheme."""
        return all(
            boost <= down + 1e-9 for _bias, boost, down in self.headroom["SA"]
        )

    @property
    def boost_saturates(self) -> bool:
        """Whether the SA boost MP is flat in |bias| (the ceiling effect):
        tripling the bias must not even double the boost MP."""
        rows = self.headroom["SA"]
        return rows[-1][1] <= 2.0 * rows[0][1]

    @property
    def resolution_ratio(self) -> float:
        """UMP MP spread over LMP MP spread (low = poor boost resolution)."""
        if self.lmp_mp_spread <= 0:
            return float("nan")
        return self.ump_mp_spread / self.lmp_mp_spread

    def to_text(self) -> str:
        blocks = []
        for scheme_name, rows in self.headroom.items():
            blocks.append(
                format_table(
                    ["|bias|", "boost MP", "downgrade MP"],
                    rows,
                    title=f"Boost vs downgrade headroom, {scheme_name}-scheme",
                )
            )
        blocks.append(
            "variance-bias resolution: UMP winner MP spread "
            f"{self.ump_mp_spread:.3f} vs LMP {self.lmp_mp_spread:.3f} "
            f"(ratio {self.resolution_ratio:.2f}; low ratio = the boost half "
            "of the plane cannot discriminate regions, as the paper notes)"
        )
        blocks.append(
            "note: under the P-scheme strong downgrades are *detected*, so "
            "the undetectable-but-capped boost can exceed them -- the "
            "ceiling argument applies to the undefended system."
        )
        return "\n\n".join(blocks)


def run_boosting_analysis(
    context: ExperimentContext,
    bias_values: Tuple[float, ...] = (1.0, 2.0, 3.0),
    std: float = 0.4,
    probes: int = 3,
    product_id: str = "tv1",
) -> BoostingAnalysis:
    """Run both parts of the boosting analysis."""
    challenge = context.challenge
    span = challenge.end_day - challenge.start_day
    window = UniformWindow(challenge.start_day + 0.3 * span, 0.4 * span)
    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        scale=challenge.config.scale,
        seed=context.seed + 31,
    )
    target_product = challenge.fair_dataset.product_ids[0]
    headroom: Dict[str, List[Tuple[float, float, float]]] = {}
    for scheme_name in ("SA", "P"):
        scheme = context.scheme(scheme_name)
        rows: List[Tuple[float, float, float]] = []
        for bias in bias_values:
            best = {"+1": 0.0, "-1": 0.0}
            for direction in (+1, -1):
                for _ in range(probes):
                    submission = generator.generate(
                        [ProductTarget(target_product, direction)],
                        AttackSpec(bias, std, 50, window),
                    )
                    mp = challenge.evaluate(submission, scheme, validate=False).total
                    key = "+1" if direction > 0 else "-1"
                    best[key] = max(best[key], mp)
            rows.append((bias, best["+1"], best["-1"]))
        headroom[scheme_name] = rows

    # Resolution of the boost half of the variance-bias plane, from the
    # population's UMP/LMP marks under the P-scheme.
    analysis = VarianceBiasAnalysis(top_n=10)
    points = analysis.build_points(
        context.population,
        context.results_for("P"),
        challenge.fair_dataset,
        product_id,
    )
    ump = [p.product_mp for p in points if "UMP" in p.marks]
    lmp = [p.product_mp for p in points if "LMP" in p.marks]
    ump_spread = float(np.max(ump) - np.min(ump)) if len(ump) >= 2 else 0.0
    lmp_spread = float(np.max(lmp) - np.min(lmp)) if len(lmp) >= 2 else 0.0
    return BoostingAnalysis(
        headroom=headroom,
        ump_mp_spread=ump_spread,
        lmp_mp_spread=lmp_spread,
    )
