"""Runners for every figure/result of the paper's evaluation section."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.bias_variance import Region, SubmissionPoint, VarianceBiasAnalysis
from repro.analysis.correlation_exp import CorrelationExperiment, CorrelationRow
from repro.analysis.reporting import format_series, format_table
from repro.analysis.time_domain import TimeDomainAnalysis, TimePoint
from repro.attacks.base import ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.optimizer import (
    RegionSearchResult,
    SearchArea,
    heuristic_region_search,
)
from repro.attacks.time_models import ConcentratedBurst, EvenlySpaced, UniformWindow
from repro.detectors.integration import JointDetector
from repro.experiments.context import ExperimentContext
from repro.obs.quality import Scorecard, score_detection

__all__ = [
    "BiasVarianceFigure",
    "RegionSearchFigure",
    "TimeAnalysisFigure",
    "CorrelationFigure",
    "HeadlineComparison",
    "OperatingPoints",
    "run_bias_variance_figure",
    "run_region_search_figure",
    "run_time_analysis_figure",
    "run_correlation_figure",
    "run_headline_comparison",
    "run_operating_points",
]


# --------------------------------------------------------------------- #
# E1-E3 / Figures 2-4
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BiasVarianceFigure:
    """One variance-bias scatter (Figure 2, 3, or 4)."""

    scheme_name: str
    product_id: str
    points: Tuple[SubmissionPoint, ...]
    winner_region_counts: Dict[Region, int]
    dominant_region: Optional[Region]
    winner_centroid: Optional[Tuple[float, float]]

    def to_text(self, max_points: int = 30) -> str:
        """Render the marked points and the region summary."""
        marked = [p for p in self.points if p.marks]
        marked.sort(key=lambda p: -p.product_mp)
        rows = [
            (p.submission_id, p.strategy, p.bias, p.std, p.product_mp, p.color)
            for p in marked[:max_points]
        ]
        table = format_table(
            ["submission", "strategy", "bias", "std", "MP", "color"],
            rows,
            title=(
                f"Variance-bias plot, {self.scheme_name}-scheme, "
                f"product {self.product_id} (marked submissions)"
            ),
        )
        counts = ", ".join(
            f"{region.value}={count}"
            for region, count in self.winner_region_counts.items()
            if count
        )
        dominant = self.dominant_region.value if self.dominant_region else "none"
        summary = (
            f"LMP winners by region: {counts or 'none'}\n"
            f"dominant winner region: {dominant}"
        )
        if self.winner_centroid:
            summary += (
                f"\nwinner centroid: bias={self.winner_centroid[0]:.2f}, "
                f"std={self.winner_centroid[1]:.2f}"
            )
        return table + "\n" + summary


def run_bias_variance_figure(
    context: ExperimentContext,
    scheme_name: str,
    product_id: str = "tv1",
    top_n: int = 10,
) -> BiasVarianceFigure:
    """Figures 2-4: the variance-bias scatter under one scheme."""
    analysis = VarianceBiasAnalysis(top_n=top_n)
    points = analysis.build_points(
        context.population,
        context.results_for(scheme_name),
        context.challenge.fair_dataset,
        product_id,
    )
    return BiasVarianceFigure(
        scheme_name=scheme_name,
        product_id=product_id,
        points=tuple(points),
        winner_region_counts=analysis.winner_region_counts(points),
        dominant_region=analysis.dominant_winner_region(points),
        winner_centroid=analysis.mean_winner_point(points),
    )


# --------------------------------------------------------------------- #
# E4 / Figure 5
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RegionSearchFigure:
    """Figure 5: the Procedure 2 shrinking-rectangle trace."""

    scheme_name: str
    search: RegionSearchResult
    population_max_mp: float

    @property
    def beats_population(self) -> bool:
        """The paper's key claim: the found region beats every submission."""
        return self.search.best_mp > self.population_max_mp

    def to_text(self) -> str:
        rows = []
        for i, round_ in enumerate(self.search.rounds):
            bias, std = round_.best_subarea.center
            rows.append(
                (
                    i + 1,
                    round_.area.bias_width,
                    round_.area.std_width,
                    bias,
                    std,
                    round_.best_score,
                )
            )
        table = format_table(
            ["round", "bias width", "std width", "best bias", "best std", "best MP"],
            rows,
            title=f"Procedure 2 region search against the {self.scheme_name}-scheme",
        )
        bias, std = self.search.best_point
        return (
            table
            + f"\nfinal region centre: bias={bias:.3f}, std={std:.3f}, "
            f"best MP={self.search.best_mp:.3f}\n"
            f"population max MP={self.population_max_mp:.3f} "
            f"(beaten: {self.beats_population})"
        )


def run_region_search_figure(
    context: ExperimentContext,
    scheme_name: str = "P",
    probes_per_subarea: int = 10,
    n_subareas: int = 4,
    initial_area: Optional[SearchArea] = None,
    randomize_timing: bool = True,
    evaluator=None,
) -> RegionSearchFigure:
    """Figure 5: run Procedure 2 against one scheme and compare with the
    population's best submission.

    The attacker targets the four lowest-volume products (fewer fair
    ratings to drown the unfair ones in -- what a profit-seeking attacker
    would pick) and, per Procedure 2, randomly draws timing for each of
    the ``m`` probes at a subarea's centre point.

    With ``evaluator`` set (or a context configured with ``workers``/
    ``cache_dir``), probes run as :class:`~repro.exec.tasks.RegionProbeTask`
    units through the execution engine: each round fans out in one batch
    and every probe's randomness derives from ``(context.seed + 5, bias,
    std, trial)``, so the trajectory is identical at any worker count.
    The legacy inline path (a single shared RNG stream) remains the
    default for a plain serial context.
    """
    challenge = context.challenge
    if initial_area is None:
        initial_area = SearchArea(
            bias_min=-4.0, bias_max=0.0, std_min=0.0, std_max=2.0
        )
    by_volume = sorted(
        challenge.fair_dataset.product_ids,
        key=lambda pid: len(challenge.fair_dataset[pid]),
    )
    targets = [
        ProductTarget(by_volume[0], -1),
        ProductTarget(by_volume[1], -1),
        ProductTarget(by_volume[2], +1),
        ProductTarget(by_volume[3], +1),
    ]
    use_engine = (
        evaluator is not None or context.workers > 0 or context.cache_dir is not None
    )
    if use_engine:
        from repro.exec import region_probe_batch, share_challenge

        share_challenge(challenge, seed=context.seed)
        search = heuristic_region_search(
            None,
            initial_area,
            n_subareas=n_subareas,
            probes_per_subarea=probes_per_subarea,
            probe_batch=region_probe_batch(
                evaluator if evaluator is not None else context.evaluator,
                challenge_seed=context.seed,
                scheme_name=scheme_name,
                targets=targets,
                seed_root=context.seed + 5,
                randomize_timing=randomize_timing,
            ),
        )
    else:
        generator = AttackGenerator(
            challenge.fair_dataset,
            challenge.config.biased_rater_ids(),
            scale=challenge.config.scale,
            seed=context.seed + 5,
        )
        evaluate = generator.evaluator(
            targets,
            challenge,
            context.scheme(scheme_name),
            randomize_timing=randomize_timing,
        )
        search = heuristic_region_search(
            evaluate,
            initial_area,
            n_subareas=n_subareas,
            probes_per_subarea=probes_per_subarea,
        )
    return RegionSearchFigure(
        scheme_name=scheme_name,
        search=search,
        population_max_mp=context.max_total_mp(scheme_name),
    )


# --------------------------------------------------------------------- #
# E5 / Figure 6
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TimeAnalysisFigure:
    """Figure 6: MP versus average unfair-rating interval."""

    scheme_name: str
    product_id: str
    points: Tuple[TimePoint, ...]
    bin_centers: np.ndarray
    max_envelope: np.ndarray
    mean_envelope: np.ndarray
    best_interval: float
    interior_optimum: bool

    def to_text(self) -> str:
        series = format_series(
            (
                f"MP vs average rating interval, {self.scheme_name}-scheme, "
                f"product {self.product_id} (max envelope)"
            ),
            list(self.bin_centers),
            list(self.max_envelope),
            x_label="interval (days)",
            y_label="max MP",
        )
        return (
            series
            + f"\nbest interval ~= {self.best_interval:.2f} days "
            f"(interior optimum: {self.interior_optimum})"
        )


def run_time_analysis_figure(
    context: ExperimentContext,
    scheme_name: str = "P",
    product_id: str = "tv1",
    n_bins: int = 8,
    max_interval: float = 8.0,
) -> TimeAnalysisFigure:
    """Figure 6: the time-domain scatter and its envelope."""
    analysis = TimeDomainAnalysis(n_bins=n_bins, max_interval=max_interval)
    points = analysis.build_points(
        context.population, context.results_for(scheme_name), product_id
    )
    centers, max_mp, mean_mp = analysis.binned_envelope(points)
    return TimeAnalysisFigure(
        scheme_name=scheme_name,
        product_id=product_id,
        points=tuple(points),
        bin_centers=centers,
        max_envelope=max_mp,
        mean_envelope=mean_mp,
        best_interval=analysis.best_interval(points),
        interior_optimum=analysis.is_interior_optimum(points),
    )


# --------------------------------------------------------------------- #
# E6 / Figure 7
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CorrelationFigure:
    """Figure 7: ordering-strategy comparison on top-MP datasets."""

    scheme_name: str
    rows: Tuple[CorrelationRow, ...]
    heuristic_win_fraction: float

    def to_text(self) -> str:
        table_rows = [
            (
                i,
                row.submission_id,
                row.original_mp,
                row.heuristic_mp,
                row.random_mean,
                row.heuristic_wins,
            )
            for i, row in enumerate(self.rows)
        ]
        table = format_table(
            ["id", "submission", "original", "heuristic", "random(mean)", "heur wins"],
            table_rows,
            title=(
                f"Order-strategy comparison, {self.scheme_name}-scheme "
                "(top MP datasets)"
            ),
        )
        return (
            table
            + f"\nheuristic beats original on "
            f"{self.heuristic_win_fraction:.0%} of datasets"
        )


def run_correlation_figure(
    context: ExperimentContext,
    scheme_name: str = "P",
    top_n: int = 10,
    random_shuffles: int = 5,
) -> CorrelationFigure:
    """Figure 7: heuristic vs original vs random ordering."""
    experiment = CorrelationExperiment(top_n=top_n, random_shuffles=random_shuffles)
    rows = experiment.run(
        context.challenge,
        context.population,
        context.results_for(scheme_name),
        context.scheme(scheme_name),
        seed=context.seed + 7,
    )
    return CorrelationFigure(
        scheme_name=scheme_name,
        rows=tuple(rows),
        heuristic_win_fraction=experiment.heuristic_win_fraction(rows),
    )


# --------------------------------------------------------------------- #
# E7 / headline comparison
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class HeadlineComparison:
    """Section V-A headline: max MP under P vs SA vs BF."""

    max_mp: Dict[str, float]

    @property
    def p_to_sa_ratio(self) -> float:
        """max-MP(P) / max-MP(SA); the paper reports about 1/3."""
        return self.max_mp["P"] / self.max_mp["SA"]

    @property
    def p_to_bf_ratio(self) -> float:
        """max-MP(P) / max-MP(BF)."""
        return self.max_mp["P"] / self.max_mp["BF"]

    def to_text(self) -> str:
        rows = [(name, value) for name, value in self.max_mp.items()]
        table = format_table(
            ["scheme", "max MP"], rows, title="Maximum MP achieved by the population"
        )
        return (
            table
            + f"\nP/SA ratio: {self.p_to_sa_ratio:.2f} (paper: ~0.33)"
            + f"\nP/BF ratio: {self.p_to_bf_ratio:.2f}"
        )


def run_headline_comparison(context: ExperimentContext) -> HeadlineComparison:
    """E7: evaluate the population under all three schemes."""
    return HeadlineComparison(
        max_mp={name: context.max_total_mp(name) for name in ("P", "SA", "BF")}
    )


# --------------------------------------------------------------------- #
# E8 / detector operating points
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class OperatingPoints:
    """Detection quality on scripted attacks plus fair-data false alarms.

    ``scorecards`` (one per attack row, in order) carries the full
    ground-truth join behind each row: provenance-attributed confusion
    counts, detection latency, and bias at detection.
    """

    false_alarm_rate: float
    attack_rows: Tuple[Tuple[str, float, float], ...]  # (name, recall, collateral)
    scorecards: Tuple["Scorecard", ...] = ()

    def to_text(self) -> str:
        table = format_table(
            ["attack", "recall", "fair collateral"],
            self.attack_rows,
            title="Joint detector operating points",
        )
        text = table + f"\nfalse alarm rate on fair-only data: {self.false_alarm_rate:.4f}"
        if self.scorecards:
            latencies = [
                f"{card.detection_latency_days:.1f}d"
                if card.detection_latency_days is not None
                else "undetected"
                for card in self.scorecards
            ]
            text += f"\ndetection latency per attack: {', '.join(latencies)}"
        return text


def run_operating_points(context: ExperimentContext) -> OperatingPoints:
    """E8: exercise Figure 1's paths on scripted attacks and fair data."""
    challenge = context.challenge
    detector = JointDetector()
    # False alarms on fair-only data (one batched pass over all products).
    fair_marked = 0
    fair_total = 0
    fair_reports = detector.analyze_batch(challenge.fair_dataset)
    for product_id in challenge.fair_dataset:
        fair_marked += fair_reports[product_id].num_suspicious
        fair_total += len(challenge.fair_dataset[product_id])
    false_alarm_rate = fair_marked / max(fair_total, 1)

    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        scale=challenge.config.scale,
        seed=context.seed + 11,
    )
    product_ids = challenge.fair_dataset.product_ids
    span = challenge.end_day - challenge.start_day
    mid = challenge.start_day + span / 2.0
    scripted = [
        (
            "strong downgrade (path 1)",
            AttackSpec(3.0, 0.2, 50, UniformWindow(mid - 15.0, 25.0)),
        ),
        (
            "burst downgrade",
            AttackSpec(3.0, 0.3, 50, ConcentratedBurst(mid, width=2.0)),
        ),
        (
            "spread high-variance",
            AttackSpec(1.5, 1.2, 50, EvenlySpaced(challenge.start_day + 5.0, 1.4)),
        ),
    ]
    rows: List[Tuple[str, float, float]] = []
    cards: List[Scorecard] = []
    for name, spec in scripted:
        target = ProductTarget(product_ids[0], -1)
        submission = generator.generate([target], spec)
        attacked = challenge.fair_dataset.merge(submission.as_dict())
        stream = attacked[product_ids[0]]
        report = detector.analyze(stream)
        card = score_detection(stream, report)
        cards.append(card)
        unfair_mask = stream.unfair
        recall = float(card.joint.tp) / max(int(unfair_mask.sum()), 1)
        collateral = float(card.joint.fp) / max(int((~unfair_mask).sum()), 1)
        rows.append((name, recall, collateral))
    return OperatingPoints(
        false_alarm_rate=false_alarm_rate,
        attack_rows=tuple(rows),
        scorecards=tuple(cards),
    )
