"""Forgetting-factor trade-off study (extension).

The paper's Procedure 1 never forgets: a rater's suspicious marks depress
their trust for the rest of time.  Beta-reputation systems usually add
exponential evidence fading, trading two risks against each other:

- **without fading** (factor 1.0), honest raters caught as collateral in
  one imprecise detection interval are punished forever;
- **with fading**, a caught attacker can *redeem* themselves and strike
  again -- the camouflage/oscillation family of attacks gets stronger.

This experiment sweeps the factor and measures both sides:

1. MP of a **two-strike attack** (strike, lie low, strike again with the
   same raters) -- fading should *help the attacker* here;
2. the **final trust of honest raters falsely marked** in month 1 who
   keep rating honestly afterwards -- fading should *help them recover*
   toward (and past) the neutral 0.5 that Eq. 7 needs for any weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.aggregation.pscheme import PScheme, PSchemeConfig
from repro.analysis.reporting import format_table
from repro.attacks.base import AttackSubmission, ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.time_models import UniformWindow
from repro.experiments.context import ExperimentContext

__all__ = ["ForgettingStudy", "run_forgetting_study"]


@dataclass(frozen=True)
class ForgettingStudy:
    """Measured trade-off per forgetting factor."""

    factors: Tuple[float, ...]
    two_strike_mp: Tuple[float, ...]
    marked_rater_final_trust: Tuple[float, ...]

    def to_text(self) -> str:
        rows = list(
            zip(self.factors, self.two_strike_mp, self.marked_rater_final_trust)
        )
        return format_table(
            ["factor", "two-strike MP", "falsely-marked rater trust"],
            rows,
            title=(
                "Forgetting-factor trade-off (MP: lower = safer; "
                "final trust: higher = honest collateral recovers)"
            ),
        )


def _two_strike_attack(context: ExperimentContext) -> AttackSubmission:
    """The same rater cohort strikes twice, months apart.

    Each rater rates each product once (challenge rule), so the two
    strikes hit *different* products: strike 1 on two products early,
    strike 2 on two other products late.  Without fading, the trust lost
    in strike 1 pre-neutralizes strike 2; with fading, trust recovers in
    the quiet months between.
    """
    challenge = context.challenge
    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        scale=challenge.config.scale,
        seed=context.seed + 37,
    )
    pids = challenge.fair_dataset.product_ids
    span = challenge.end_day - challenge.start_day
    first = generator.generate(
        [ProductTarget(pids[0], -1), ProductTarget(pids[1], -1)],
        AttackSpec(
            3.0, 0.2, 50,
            UniformWindow(challenge.start_day + 2.0, 0.15 * span),
        ),
    )
    second = generator.generate(
        [ProductTarget(pids[2], -1), ProductTarget(pids[3], -1)],
        AttackSpec(
            3.0, 0.2, 50,
            UniformWindow(challenge.start_day + 0.75 * span, 0.2 * span),
        ),
    )
    streams = dict(first.streams)
    streams.update(second.streams)
    return AttackSubmission(
        "two_strike", streams, strategy="two_strike",
        params={"strikes": 2},
    )


def _marked_rater_final_trust(
    factor: float, bad_month_marks: int = 3, honest_months: int = 5
) -> float:
    """Final trust of an honest rater falsely marked in their first month.

    The victim submits ``bad_month_marks`` ratings in month 1 that all get
    marked (collateral of one imprecise detection interval), then one
    clean rating per month for ``honest_months`` months.  Without fading
    the early marks cancel the later good evidence indefinitely (with 3
    marks and 3 clean months the trust pins at exactly the weightless
    0.5); with fading the victim's voice returns.
    """
    from repro.trust.manager import TrustManager

    manager = TrustManager(0.5, factor)
    manager.record_epoch({"victim": (bad_month_marks, bad_month_marks)})
    for _ in range(honest_months):
        manager.record_epoch({"victim": (1, 0)})
    return manager.trust_of("victim")


def run_forgetting_study(
    context: ExperimentContext,
    factors: Tuple[float, ...] = (1.0, 0.9, 0.7, 0.5),
) -> ForgettingStudy:
    """Sweep the forgetting factor over both sides of the trade-off."""
    challenge = context.challenge
    attack = _two_strike_attack(context)
    mp_values: List[float] = []
    recovery: List[float] = []
    for factor in factors:
        scheme = PScheme(PSchemeConfig(forgetting_factor=factor))
        mp_values.append(
            challenge.evaluate(attack, scheme, validate=False).total
        )
        recovery.append(_marked_rater_final_trust(factor))
    return ForgettingStudy(
        factors=tuple(factors),
        two_strike_mp=tuple(mp_values),
        marked_rater_final_trust=tuple(recovery),
    )
