"""Population-size convergence of the figure conclusions (methodology).

The paper's conclusions rest on 251 human submissions; our reproduction
rests on 251 synthetic ones.  A fair question for both: *how many
submissions are needed before the winner-region story stabilizes?*  This
study regenerates the Figure 3-style analysis at increasing population
sizes (same world, nested seeds) and reports the dominant LMP winner
region and winner centroid per size, so the stability of the conclusion
is measurable rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bias_variance import Region, VarianceBiasAnalysis
from repro.analysis.reporting import format_table
from repro.attacks.population import PopulationConfig, generate_population
from repro.errors import ValidationError
from repro.marketplace.challenge import RatingChallenge

__all__ = ["ConvergenceStudy", "run_convergence_study"]


@dataclass(frozen=True)
class ConvergenceStudy:
    """Winner-region conclusion per population size."""

    scheme_name: str
    product_id: str
    sizes: Tuple[int, ...]
    dominant_regions: Tuple[Optional[Region], ...]
    centroids: Tuple[Optional[Tuple[float, float]], ...]

    def to_text(self) -> str:
        rows = []
        for size, region, centroid in zip(
            self.sizes, self.dominant_regions, self.centroids
        ):
            rows.append(
                (
                    size,
                    region.value if region else "-",
                    centroid[0] if centroid else float("nan"),
                    centroid[1] if centroid else float("nan"),
                )
            )
        return format_table(
            ["population", "dominant region", "centroid bias", "centroid std"],
            rows,
            title=(
                f"Winner-region convergence, {self.scheme_name}-scheme, "
                f"product {self.product_id}"
            ),
        )

    def stable_from(self) -> Optional[int]:
        """The smallest size from which the dominant region never changes.

        ``None`` when the final conclusion is not reached at any prefix
        (including the largest size being None).
        """
        final = self.dominant_regions[-1]
        if final is None:
            return None
        stable_size = None
        for size, region in zip(self.sizes, self.dominant_regions):
            if region is final:
                if stable_size is None:
                    stable_size = size
            else:
                stable_size = None
        return stable_size


def run_convergence_study(
    scheme,
    sizes: Sequence[int] = (20, 40, 80, 160),
    product_id: str = "tv1",
    seed: int = 2008,
    top_n: int = 10,
    challenge: Optional[RatingChallenge] = None,
) -> ConvergenceStudy:
    """Evaluate the winner-region conclusion at each population size.

    Populations are *nested*: the size-80 population is the size-160
    population's first 80 submissions, so growth only ever adds data (the
    clean way to study convergence).  The same scheme instance is reused,
    so P-scheme caches carry across sizes.
    """
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes or sizes[0] < 5:
        raise ValidationError("sizes must contain values >= 5")
    if challenge is None:
        challenge = RatingChallenge(seed=seed)
    full_population = generate_population(
        challenge, PopulationConfig(size=sizes[-1]), seed=seed + 1
    )
    # generate_population emits archetypes in blocks; shuffle (with a fixed
    # seed, preserving the nesting property) so every prefix carries the
    # full archetype mix.
    import numpy as np

    rng = np.random.default_rng(seed + 2)
    order = rng.permutation(len(full_population))
    full_population = [full_population[i] for i in order]
    analysis = VarianceBiasAnalysis(top_n=top_n)
    dominant: List[Optional[Region]] = []
    centroids: List[Optional[Tuple[float, float]]] = []
    results: Dict[str, object] = {}
    for size in sizes:
        population = full_population[:size]
        for submission in population:
            if submission.submission_id not in results:
                results[submission.submission_id] = challenge.evaluate(
                    submission, scheme, validate=False
                )
        points = analysis.build_points(
            population, results, challenge.fair_dataset, product_id
        )
        dominant.append(analysis.dominant_winner_region(points))
        centroids.append(analysis.mean_winner_point(points))
    return ConvergenceStudy(
        scheme_name=getattr(scheme, "name", type(scheme).__name__),
        product_id=product_id,
        sizes=tuple(sizes),
        dominant_regions=tuple(dominant),
        centroids=tuple(centroids),
    )
