"""Sensitivity analysis of detector thresholds (ROC-style sweeps).

The paper leaves several detection thresholds unspecified; DESIGN.md §6
documents how this reproduction calibrated them.  This module provides the
tooling that calibration used, packaged for reuse: sweep any
:class:`~repro.detectors.base.DetectorConfig` field and measure, at each
value,

- the **false-alarm rate** on fair-only worlds (fraction of fair ratings
  marked suspicious), and
- the **recall** and **fair collateral** on a canonical windowed
  downgrade attack,

giving the ROC-style trade-off curve a deployer needs when adapting the
P-scheme to a rating site with different fair-traffic statistics.

Each attacked case is judged through a :mod:`repro.obs.quality`
scorecard (provenance-attributed confusion counts, detection latency,
bias at detection), carried on the :class:`OperatingPoint`; the sweep
summarizes itself as ROC points and a trapezoidal AUC
(:meth:`SensitivityResult.roc_points` / :meth:`SensitivityResult.auc`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.attacks.base import ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.time_models import UniformWindow
from repro.detectors.base import DetectorConfig
from repro.detectors.integration import JointDetector
from repro.errors import ValidationError
from repro.marketplace.challenge import RatingChallenge
from repro.marketplace.fair_ratings import FairRatingGenerator
from repro.obs.quality import Scorecard, roc_auc, score_detection

__all__ = [
    "OperatingPoint",
    "SensitivityResult",
    "measure_operating_point",
    "sweep_detector_parameter",
]


@dataclass(frozen=True)
class OperatingPoint:
    """Detector quality at one parameter value.

    ``scorecards`` holds one ground-truth scorecard per attacked case
    (in case order), so the provenance-attributed confusion counts and
    detection latencies behind ``recall``/``collateral`` stay
    inspectable after the sweep.
    """

    value: float
    false_alarm_rate: float
    recall: float
    collateral: float
    scorecards: Tuple[Scorecard, ...] = ()


@dataclass(frozen=True)
class SensitivityResult:
    """Full sweep of one DetectorConfig parameter."""

    parameter: str
    points: Tuple[OperatingPoint, ...]

    def to_text(self) -> str:
        rows = [
            (p.value, p.false_alarm_rate, p.recall, p.collateral)
            for p in self.points
        ]
        table = format_table(
            [self.parameter, "false alarms", "recall", "collateral"],
            rows,
            float_format=".4f",
            title=f"Detector sensitivity to {self.parameter}",
        )
        return table + f"\nROC AUC (trapezoid, anchored): {self.auc():.4f}"

    def false_alarm_curve(self) -> np.ndarray:
        """False-alarm rates in sweep order."""
        return np.asarray([p.false_alarm_rate for p in self.points])

    def recall_curve(self) -> np.ndarray:
        """Recall values in sweep order."""
        return np.asarray([p.recall for p in self.points])

    def roc_points(self) -> Tuple[Tuple[float, float, float], ...]:
        """``(value, false_alarm_rate, recall)`` sorted by parameter value."""
        return tuple(
            sorted(
                (p.value, p.false_alarm_rate, p.recall) for p in self.points
            ),
        )

    def auc(self) -> float:
        """Trapezoidal AUC over the sweep's (false-alarm, recall) pairs."""
        return roc_auc(
            [(p.false_alarm_rate, p.recall) for p in self.points]
        )


def _measure(
    config: DetectorConfig,
    fair_datasets,
    attacked_cases,
) -> Tuple[float, float, float, Tuple[Scorecard, ...]]:
    detector = JointDetector(config)
    marked = total = 0
    for dataset in fair_datasets:
        reports = detector.analyze_batch(dataset)
        for product_id in dataset:
            marked += reports[product_id].num_suspicious
            total += len(dataset[product_id])
    false_alarm = marked / max(total, 1)
    recalls: List[float] = []
    collaterals: List[float] = []
    cards: List[Scorecard] = []
    for stream in attacked_cases:
        report = detector.analyze(stream)
        card = score_detection(stream, report)
        cards.append(card)
        unfair = stream.unfair
        recalls.append(
            float(card.joint.tp) / max(int(unfair.sum()), 1)
        )
        collaterals.append(
            float(card.joint.fp) / max(int((~unfair).sum()), 1)
        )
    return (
        false_alarm,
        float(np.mean(recalls)),
        float(np.mean(collaterals)),
        tuple(cards),
    )


#: Process-local cache of sweep fixtures (fair worlds + attacked
#: streams), keyed by the parameters that determine them.  One sweep's
#: values share fixtures (as the old inline construction did), and fork
#: pool workers measuring different values of the same sweep reuse the
#: parent's copy instead of regenerating the worlds per task.
_FIXTURES: Dict[tuple, tuple] = {}


def _sweep_fixtures(
    n_fair_worlds: int,
    n_attacks: int,
    attack_bias: float,
    attack_std: float,
    attack_ratings: int,
    attack_duration: float,
    seed: int,
) -> tuple:
    key = (
        int(n_fair_worlds),
        int(n_attacks),
        float(attack_bias),
        float(attack_std),
        int(attack_ratings),
        float(attack_duration),
        int(seed),
    )
    cached = _FIXTURES.get(key)
    if cached is not None:
        return cached
    fair_datasets = [
        FairRatingGenerator(seed=seed + i).generate() for i in range(n_fair_worlds)
    ]
    challenge = RatingChallenge(seed=seed + 100)
    generator = AttackGenerator(
        challenge.fair_dataset, challenge.config.biased_rater_ids(), seed=seed + 200
    )
    span = challenge.end_day - challenge.start_day
    attacked_cases = []
    product_ids = challenge.fair_dataset.product_ids
    for i in range(n_attacks):
        pid = product_ids[i % len(product_ids)]
        start = challenge.start_day + (0.2 + 0.15 * i) * span
        submission = generator.generate(
            [ProductTarget(pid, -1)],
            AttackSpec(
                attack_bias, attack_std, attack_ratings,
                UniformWindow(start, attack_duration),
            ),
        )
        attacked = challenge.fair_dataset.merge(submission.as_dict())
        attacked_cases.append(attacked[pid])
    # Sanctioned worker-side write: _FIXTURES is a pure per-process
    # memo keyed by the seeds that rebuild its value, exactly like the
    # exec.tasks._SHARED registry -- a worker losing or racing the entry
    # only re-derives the same deterministic fixtures, never a
    # different result.
    _FIXTURES[key] = (fair_datasets, attacked_cases)  # lint: ignore[worker-state-mutation]
    return _FIXTURES[key]


def measure_operating_point(
    parameter: str,
    value: float,
    n_fair_worlds: int = 2,
    n_attacks: int = 3,
    attack_bias: float = 2.2,
    attack_std: float = 0.4,
    attack_ratings: int = 40,
    attack_duration: float = 30.0,
    seed: int = 0,
) -> OperatingPoint:
    """Measure one :class:`OperatingPoint` at ``parameter=value``.

    A pure function of its arguments: fixtures regenerate
    deterministically from ``seed`` (and are cached per process), so a
    point measured inline, in a pool worker, or replayed from the MP
    cache is identical.  This is the work unit behind
    :class:`~repro.exec.SensitivityTask`.
    """
    base = DetectorConfig()
    if not hasattr(base, parameter):
        raise ValidationError(
            f"{parameter!r} is not a DetectorConfig field"
        )
    fair_datasets, attacked_cases = _sweep_fixtures(
        n_fair_worlds, n_attacks, attack_bias, attack_std,
        attack_ratings, attack_duration, seed,
    )
    config = replace(base, **{parameter: value})
    false_alarm, recall, collateral, cards = _measure(
        config, fair_datasets, attacked_cases
    )
    return OperatingPoint(
        value=float(value),
        false_alarm_rate=false_alarm,
        recall=recall,
        collateral=collateral,
        scorecards=cards,
    )


def sweep_detector_parameter(
    parameter: str,
    values: Sequence[float],
    n_fair_worlds: int = 2,
    n_attacks: int = 3,
    attack_bias: float = 2.2,
    attack_std: float = 0.4,
    attack_ratings: int = 40,
    attack_duration: float = 30.0,
    seed: int = 0,
    evaluator=None,
) -> SensitivityResult:
    """Sweep ``parameter`` over ``values`` and measure the trade-off.

    ``parameter`` must be a field of :class:`DetectorConfig`.  Fair worlds
    and attacks are regenerated deterministically from ``seed`` so sweeps
    are comparable across parameters.  The default attack is deliberately
    *marginal* (medium bias, ~1.3 unfair ratings/day): a blatant attack is
    caught at any sane threshold and flattens the curve, while the
    marginal attack exposes where detection actually starts to fail.

    With ``evaluator`` (a :class:`~repro.exec.ParallelEvaluator`), each
    value is one :class:`~repro.exec.SensitivityTask` and the whole sweep
    fans out in a single dispatch -- bit-identical to the serial loop,
    since every point is a pure function of ``(parameter, value, seed)``.
    """
    if not values:
        raise ValidationError("values must be non-empty")
    base = DetectorConfig()
    if not hasattr(base, parameter):
        raise ValidationError(
            f"{parameter!r} is not a DetectorConfig field"
        )
    if evaluator is not None:
        from repro.exec import SensitivityTask

        tasks = [
            SensitivityTask(
                parameter=parameter,
                value=value,
                n_fair_worlds=n_fair_worlds,
                n_attacks=n_attacks,
                attack_bias=attack_bias,
                attack_std=attack_std,
                attack_ratings=attack_ratings,
                attack_duration=attack_duration,
                seed=seed,
            )
            for value in values
        ]
        # Build fixtures before the pool forks so workers inherit them.
        _sweep_fixtures(
            n_fair_worlds, n_attacks, attack_bias, attack_std,
            attack_ratings, attack_duration, seed,
        )
        points = evaluator.map(tasks)
    else:
        points = [
            measure_operating_point(
                parameter,
                value,
                n_fair_worlds=n_fair_worlds,
                n_attacks=n_attacks,
                attack_bias=attack_bias,
                attack_std=attack_std,
                attack_ratings=attack_ratings,
                attack_duration=attack_duration,
                seed=seed,
            )
            for value in values
        ]
    return SensitivityResult(parameter=parameter, points=tuple(points))
