"""Wall-clock hygiene rule.

Fingerprinted code paths (task hashing, MP-cache keys, capsule-merged
telemetry) must be pure functions of their inputs: reading the wall
clock bakes "when did this run" into values that are supposed to replay
bit-identically.  ``time.perf_counter`` / ``perf_counter_ns`` stay legal
(durations are telemetry, never inputs); absolute-time reads are banned
everywhere except explicitly pragma'd sites (the run ledger's record
timestamp is the one sanctioned source in this repo).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.core import Finding, ModuleSource, Rule

__all__ = ["WallClockRule"]

_BANNED = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    id = "wall-clock"
    summary = (
        "no time.time()/datetime.now() outside pragma'd sites: absolute "
        "time in a fingerprinted path breaks bit-identical replay"
    )

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve_call(node)
            if resolved in _BANNED:
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        column=node.col_offset,
                        rule=self.id,
                        message=(
                            f"{resolved}() reads the wall clock; use "
                            "perf_counter for durations, or pragma this line "
                            "if it is a sanctioned timestamp source"
                        ),
                        symbol=resolved,
                    )
                )
        return findings
