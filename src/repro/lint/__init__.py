"""repro.lint: AST-based invariant checking for the reproduction repo.

Machine-checks the coding invariants the determinism and telemetry
guarantees rest on (see ``docs/LINT.md`` for the rule catalog):

========================  ============================================
rule id                   invariant
========================  ============================================
``rng-unseeded``          RNG constructors must receive a seed
``rng-global-state``      no module-level ``np.random.*``/``random.*``
``rng-missing-param``     world builders accept an ``rng``/``seed``
``wall-clock``            no absolute-time reads outside pragma'd sites
``pickle-safety``         no lambdas/closures in EvalTask/pool payloads
``metric-uncataloged``    emitted metric names appear in the docs
``metric-stale``          catalogued metric names are still emitted
``span-balance``          spans open only via ``with span(...)``
``unordered-iter``        no salted-order iteration near fingerprints
``alert-unknown-metric``  alert-rule files watch catalogued metrics
========================  ============================================

Run as ``python -m repro.lint [paths...]`` or ``repro-rating lint``;
suppress a single line with ``# lint: ignore[rule-id]``, and carry
accepted pre-existing findings in ``.repro-lint-baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.core import (
    Finding,
    LintConfig,
    LintResult,
    Linter,
    ModuleSource,
    Rule,
    baseline_payload,
    run_lint,
)
from repro.lint.rules_alerts import AlertRuleMetricRule
from repro.lint.rules_metrics import MetricCatalogRule, MetricStaleRule, SpanBalanceRule
from repro.lint.rules_order import UnorderedIterRule
from repro.lint.rules_pickle import PickleSafetyRule
from repro.lint.rules_rng import RngGlobalStateRule, RngMissingParamRule, RngUnseededRule
from repro.lint.rules_time import WallClockRule

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Linter",
    "ModuleSource",
    "Rule",
    "default_rules",
    "main",
    "run_lint",
]

DEFAULT_BASELINE = ".repro-lint-baseline.json"
DEFAULT_CATALOGS = ("docs/API.md", "docs/OBSERVABILITY.md")
#: Where committed alert-rule files live (relative to the repo root).
DEFAULT_ALERT_RULE_DIRS = ("src/repro/obs/alert_rules",)


def default_rules(config: LintConfig) -> List[Rule]:
    """The full rule battery, wired to ``config``'s catalog paths."""
    return [
        RngUnseededRule(),
        RngGlobalStateRule(),
        RngMissingParamRule(),
        WallClockRule(),
        PickleSafetyRule(),
        MetricCatalogRule(config.catalog_paths),
        MetricStaleRule(config.catalog_paths),
        SpanBalanceRule(),
        UnorderedIterRule(),
        AlertRuleMetricRule(config.catalog_paths, config.alert_rule_paths),
    ]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based invariant checker for the reproduction repo.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src, else .)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write findings as structured JSON to PATH ('-' = stdout)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE} "
             "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", metavar="IDS", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="IDS", default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--catalog", metavar="PATH", action="append", default=None,
        help="metric-catalog markdown file (repeatable; default: "
             "docs/API.md docs/OBSERVABILITY.md when present)",
    )
    parser.add_argument(
        "--alert-rules", metavar="PATH", action="append", default=None,
        help="alert-rule file checked for catalog parity (repeatable; "
             "default: every file under src/repro/obs/alert_rules)",
    )
    parser.add_argument(
        "--no-stale", action="store_true",
        help="skip the metric-stale direction (use when linting a subset "
             "of the tree, where 'nothing emits X' is vacuous)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _default_catalogs() -> List[str]:
    return [path for path in DEFAULT_CATALOGS if Path(path).exists()]


def _default_alert_rules() -> List[str]:
    out: List[str] = []
    for raw in DEFAULT_ALERT_RULE_DIRS:
        directory = Path(raw)
        if directory.is_dir():
            out.extend(
                p.as_posix()
                for p in sorted(directory.iterdir())
                if p.suffix.lower() in (".toml", ".json")
            )
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.lint`` and ``repro-rating lint``."""
    args = build_arg_parser().parse_args(argv)

    ignore = {part.strip() for part in args.ignore.split(",") if part.strip()}
    if args.no_stale:
        ignore.add(MetricStaleRule.id)
    select = None
    if args.select:
        select = {part.strip() for part in args.select.split(",") if part.strip()}

    baseline = args.baseline
    if baseline is None and not args.no_baseline and Path(DEFAULT_BASELINE).exists():
        baseline = DEFAULT_BASELINE
    if args.no_baseline:
        baseline = None

    config = LintConfig(
        select=select,
        ignore=ignore,
        baseline_path=baseline,
        catalog_paths=(
            args.catalog if args.catalog is not None else _default_catalogs()
        ),
        alert_rule_paths=(
            args.alert_rules
            if args.alert_rules is not None
            else _default_alert_rules()
        ),
        stale_check=not args.no_stale,
    )
    rules = default_rules(config)

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id:20s} {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    result = Linter(rules, config).run(paths)

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        payload = baseline_payload(result.findings + result.baseline_findings)
        Path(target).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(
            f"baseline {target} updated with "
            f"{len(payload['entries'])} entr(y/ies)"
        )
        return 0

    json_owns_stdout = args.json == "-"
    if args.json:
        rendered = json.dumps(result.to_json(), indent=2, sort_keys=True)
        if json_owns_stdout:
            print(rendered)
        else:
            Path(args.json).write_text(rendered + "\n", encoding="utf-8")

    # With ``--json -`` the JSON report owns stdout; the human-readable
    # report moves to stderr so piped output stays parseable.
    out = sys.stderr if json_owns_stdout else sys.stdout
    if args.quiet:
        for finding in result.findings + result.parse_errors:
            print(finding.to_text(), file=out)
    else:
        print(result.to_text(), file=out)
    return 0 if result.ok else 1
