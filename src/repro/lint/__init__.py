"""repro.lint: AST-based invariant checking for the reproduction repo.

Machine-checks the coding invariants the determinism and telemetry
guarantees rest on (see ``docs/LINT.md`` for the rule catalog):

==========================  ============================================
rule id                     invariant
==========================  ============================================
``rng-unseeded``            RNG constructors must receive a seed
``rng-global-state``        no module-level ``np.random.*``/``random.*``
``rng-missing-param``       world builders accept an ``rng``/``seed``
``wall-clock``              no absolute-time reads outside pragma'd sites
``pickle-safety``           no lambdas/closures in EvalTask/pool payloads
``metric-uncataloged``      emitted metric names appear in the docs
``metric-stale``            catalogued metric names are still emitted
``span-balance``            spans open only via ``with span(...)``
``unordered-iter``          no salted-order iteration near fingerprints
``alert-unknown-metric``    alert-rule files watch catalogued metrics
``rng-taint``               task-reachable RNG seeded from plumbed seeds
``worker-state-mutation``   no global/shared writes in the worker closure
``pickle-reachability``     task fields resolve to picklable definitions
``wallclock-fingerprint``   no wall clock anywhere in fingerprint inputs
``span-escape``             helper-returned spans land in ``with`` blocks
==========================  ============================================

The first ten are per-file AST rules; the last five run over the linked
whole-program call graph (:mod:`repro.lint.graph` /
:mod:`repro.lint.flow`), with per-module summaries cached by content
hash in ``.repro-lint-cache.json``.

Run as ``python -m repro.lint [paths...]`` or ``repro-rating lint``;
suppress a single line with ``# lint: ignore[rule-id]``, carry accepted
pre-existing findings in ``.repro-lint-baseline.json``, and export
GitHub-code-scanning annotations with ``--sarif``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.core import (
    Finding,
    LintConfig,
    LintResult,
    Linter,
    ModuleSource,
    Rule,
    baseline_payload,
    run_lint,
)
from repro.lint.flow import (
    PickleReachabilityRule,
    RngTaintRule,
    SpanEscapeRule,
    WallclockFingerprintRule,
    WorkerStateMutationRule,
)
from repro.lint.rules_alerts import AlertRuleMetricRule
from repro.lint.rules_metrics import MetricCatalogRule, MetricStaleRule, SpanBalanceRule
from repro.lint.rules_order import UnorderedIterRule
from repro.lint.rules_pickle import PickleSafetyRule
from repro.lint.rules_rng import RngGlobalStateRule, RngMissingParamRule, RngUnseededRule
from repro.lint.rules_time import WallClockRule

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Linter",
    "ModuleSource",
    "Rule",
    "default_rules",
    "main",
    "run_lint",
]

DEFAULT_BASELINE = ".repro-lint-baseline.json"
DEFAULT_CACHE = ".repro-lint-cache.json"
DEFAULT_CATALOGS = ("docs/API.md", "docs/OBSERVABILITY.md")
#: Where committed alert-rule files live (relative to the repo root).
DEFAULT_ALERT_RULE_DIRS = ("src/repro/obs/alert_rules",)


def default_rules(config: LintConfig) -> List[Rule]:
    """The full rule battery, wired to ``config``'s catalog paths."""
    return [
        RngUnseededRule(),
        RngGlobalStateRule(),
        RngMissingParamRule(),
        WallClockRule(),
        PickleSafetyRule(),
        MetricCatalogRule(config.catalog_paths),
        MetricStaleRule(config.catalog_paths),
        SpanBalanceRule(),
        UnorderedIterRule(),
        AlertRuleMetricRule(config.catalog_paths, config.alert_rule_paths),
        RngTaintRule(),
        WorkerStateMutationRule(),
        PickleReachabilityRule(),
        WallclockFingerprintRule(),
        SpanEscapeRule(),
    ]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based invariant checker for the reproduction repo.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src, else .)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write findings as structured JSON to PATH ('-' = stdout)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE} "
             "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", metavar="IDS", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="IDS", default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--catalog", metavar="PATH", action="append", default=None,
        help="metric-catalog markdown file (repeatable; default: "
             "docs/API.md docs/OBSERVABILITY.md when present)",
    )
    parser.add_argument(
        "--alert-rules", metavar="PATH", action="append", default=None,
        help="alert-rule file checked for catalog parity (repeatable; "
             "default: every file under src/repro/obs/alert_rules)",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", default=None,
        help="also write findings as a SARIF 2.1.0 report to PATH",
    )
    parser.add_argument(
        "--cache", metavar="PATH", default=None,
        help="per-module analysis cache file for the whole-program rules "
             f"(default: {DEFAULT_CACHE}; warm runs re-analyze only "
             "changed modules)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the analysis cache",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="check only modules touched in git diff (plus their "
             "reverse-dependency closure over the import graph); implies "
             "--no-stale",
    )
    parser.add_argument(
        "--diff-base", metavar="REF", default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--no-stale", action="store_true",
        help="skip the metric-stale direction (use when linting a subset "
             "of the tree, where 'nothing emits X' is vacuous)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _default_catalogs() -> List[str]:
    return [path for path in DEFAULT_CATALOGS if Path(path).exists()]


def _default_alert_rules() -> List[str]:
    out: List[str] = []
    for raw in DEFAULT_ALERT_RULE_DIRS:
        directory = Path(raw)
        if directory.is_dir():
            out.extend(
                p.as_posix()
                for p in sorted(directory.iterdir())
                if p.suffix.lower() in (".toml", ".json")
            )
    return out


def _git_changed_paths(diff_base: str) -> List[str]:
    """Python files touched vs ``diff_base``, plus untracked ones."""
    import subprocess

    out: List[str] = []
    commands = [
        ["git", "diff", "--name-only", diff_base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise RuntimeError(
                f"--changed-only needs git ({' '.join(command)} failed: {exc})"
            ) from exc
        out.extend(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return sorted(set(out))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.lint`` and ``repro-rating lint``."""
    args = build_arg_parser().parse_args(argv)

    ignore = {part.strip() for part in args.ignore.split(",") if part.strip()}
    if args.no_stale or args.changed_only:
        # A partial tree makes "nothing emits X" vacuous.
        ignore.add(MetricStaleRule.id)
    select = None
    if args.select:
        select = {part.strip() for part in args.select.split(",") if part.strip()}

    baseline = args.baseline
    if baseline is None and not args.no_baseline and Path(DEFAULT_BASELINE).exists():
        baseline = DEFAULT_BASELINE
    if args.no_baseline:
        baseline = None

    changed_paths: Optional[List[str]] = None
    if args.changed_only:
        try:
            changed_paths = _git_changed_paths(args.diff_base)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    config = LintConfig(
        select=select,
        ignore=ignore,
        baseline_path=baseline,
        catalog_paths=(
            args.catalog if args.catalog is not None else _default_catalogs()
        ),
        alert_rule_paths=(
            args.alert_rules
            if args.alert_rules is not None
            else _default_alert_rules()
        ),
        stale_check=not (args.no_stale or args.changed_only),
        cache_path=(
            None if args.no_cache else (args.cache or DEFAULT_CACHE)
        ),
        changed_paths=changed_paths,
    )
    rules = default_rules(config)

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id:20s} {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    result = Linter(rules, config).run(paths)

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        payload = baseline_payload(result.findings + result.baseline_findings)
        Path(target).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(
            f"baseline {target} updated with "
            f"{len(payload['entries'])} entr(y/ies)"
        )
        return 0

    if args.sarif:
        from repro.lint.sarif import to_sarif

        Path(args.sarif).write_text(
            json.dumps(to_sarif(result, rules), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )

    json_owns_stdout = args.json == "-"
    if args.json:
        rendered = json.dumps(result.to_json(), indent=2, sort_keys=True)
        if json_owns_stdout:
            print(rendered)
        else:
            Path(args.json).write_text(rendered + "\n", encoding="utf-8")

    # With ``--json -`` the JSON report owns stdout; the human-readable
    # report moves to stderr so piped output stays parseable.
    out = sys.stderr if json_owns_stdout else sys.stdout
    if args.quiet:
        for finding in result.findings + result.parse_errors:
            print(finding.to_text(), file=out)
    else:
        print(result.to_text(), file=out)
    return 0 if result.ok else 1
