"""Metric-name catalog parsing and wildcard-pattern intersection.

The docs (``docs/API.md``, ``docs/OBSERVABILITY.md``) carry markdown
tables cataloguing every metric the pipeline emits::

    | `exec.cache.{hits,misses}` | counter | MP-cache traffic |
    | `detector.<kind>.seconds`  | histogram | per-call latency |

The catalog-parity rule needs those names as machine-checkable patterns:
``{a,b}`` brace alternatives expand, ``<placeholder>`` segments become
wildcards, and one table cell may list several names (``` `a` / `b` ``).
Emitted names on the code side may themselves be patterns (an f-string
``f"quality.{name}.{cell}"`` is ``quality.*.*``), so parity is decided
by *pattern intersection*: two wildcard patterns agree when some
concrete metric name matches both.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Tuple

__all__ = [
    "CatalogEntry",
    "expand_braces",
    "globs_intersect",
    "parse_catalog",
    "pattern_to_glob",
]

#: The table-cell kinds that mark a row as a metric-catalog row (other
#: markdown tables -- API summaries, rule lists -- are skipped).
_METRIC_KINDS = {"counter", "gauge", "histogram"}

_BACKTICK = re.compile(r"`([^`]+)`")
_BRACE = re.compile(r"\{([^{}]*)\}")
_PLACEHOLDER = re.compile(r"<[^<>]+>")
#: What a catalogued metric name may look like (after backtick removal).
_NAME_SHAPE = re.compile(r"^[A-Za-z0-9_.\-<>{},]+$")


@dataclass(frozen=True)
class CatalogEntry:
    """One catalogued metric-name pattern."""

    name: str  # as written, e.g. "detector.<kind>.calls"
    glob: str  # wildcard form, e.g. "detector.*.calls"
    kind: str  # counter | gauge | histogram
    path: str  # catalog file it came from
    line: int


def expand_braces(pattern: str) -> List[str]:
    """All alternatives of ``{a,b,c}`` groups (possibly nested/multiple)."""
    match = _BRACE.search(pattern)
    if match is None:
        return [pattern]
    out: List[str] = []
    for alternative in match.group(1).split(","):
        expanded = pattern[: match.start()] + alternative.strip() + pattern[match.end():]
        out.extend(expand_braces(expanded))
    return out


def pattern_to_glob(pattern: str) -> str:
    """Replace ``<placeholder>`` segments with ``*`` wildcards."""
    return _PLACEHOLDER.sub("*", pattern)


def globs_intersect(a: str, b: str) -> bool:
    """Whether some concrete string matches both wildcard patterns.

    Both sides may contain ``*`` (any run of characters, including
    empty); everything else is literal.  This is emptiness-of-
    intersection for the two star-languages, decided by an explicit
    reachability walk over position pairs.
    """
    seen: Set[Tuple[int, int]] = set()
    stack: List[Tuple[int, int]] = [(0, 0)]
    while stack:
        i, j = stack.pop()
        if (i, j) in seen:
            continue
        seen.add((i, j))
        if i == len(a) and j == len(b):
            return True
        if i < len(a) and a[i] == "*":
            stack.append((i + 1, j))  # star matches the empty string
            if j < len(b):
                stack.append((i, j + 1))  # star absorbs one unit of b
            continue
        if j < len(b) and b[j] == "*":
            stack.append((i, j + 1))
            if i < len(a):
                stack.append((i + 1, j))
            continue
        if i < len(a) and j < len(b) and a[i] == b[j]:
            stack.append((i + 1, j + 1))
    return False


def _row_cells(line: str) -> List[str]:
    stripped = line.strip()
    if not (stripped.startswith("|") and stripped.endswith("|")):
        return []
    return [cell.strip() for cell in stripped[1:-1].split("|")]


def parse_catalog_text(text: str, path: str) -> List[CatalogEntry]:
    """Catalog entries from one markdown document."""
    entries: List[CatalogEntry] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        cells = _row_cells(line)
        if len(cells) < 2 or cells[1].lower() not in _METRIC_KINDS:
            continue
        kind = cells[1].lower()
        for token in _BACKTICK.findall(cells[0]):
            if "." not in token or not _NAME_SHAPE.match(token):
                continue
            for name in expand_braces(token):
                entries.append(
                    CatalogEntry(
                        name=name,
                        glob=pattern_to_glob(name),
                        kind=kind,
                        path=path,
                        line=lineno,
                    )
                )
    return entries


def parse_catalog(paths: Iterable[str]) -> List[CatalogEntry]:
    """All entries from every existing catalog file, in path order."""
    entries: List[CatalogEntry] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            continue
        entries.extend(
            parse_catalog_text(path.read_text(encoding="utf-8"), path.as_posix())
        )
    return entries


def catalog_matches(glob: str, entries: Sequence[CatalogEntry]) -> bool:
    """Whether an emitted-name pattern agrees with any catalog entry."""
    return any(globs_intersect(glob, entry.glob) for entry in entries)
