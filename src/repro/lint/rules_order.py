"""Unordered-iteration hygiene in fingerprint-reachable code.

:mod:`repro.exec.hashing` canonicalises task descriptions into BLAKE2b
digests that serve as cache keys, derived RNG seeds, and the ledger's
workload fingerprint.  Any code on a path into those digests that
iterates a ``set`` (or ``dict.keys()`` of a dict whose insertion order
is not itself deterministic) in construction order injects
process-salted hash ordering into a value that must be stable across
interpreter launches.  Inside modules that touch the hashing API (or
live in ``repro/exec/``), iteration over ``set(...)`` / set literals /
``.keys()`` must go through ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import Finding, ModuleSource, Rule

__all__ = ["UnorderedIterRule"]

#: Importing any of these marks a module as fingerprint-reachable.
_HASHING_NAMES = {"derive_seed", "stable_fingerprint", "canonical_bytes"}


def _fingerprint_scoped(module: ModuleSource) -> bool:
    if "/exec/" in module.path or module.path.endswith("exec/__init__.py"):
        return True
    for canonical in module.imports.names.values():
        if "repro.exec.hashing" in canonical:
            return True
        if canonical.rsplit(".", 1)[-1] in _HASHING_NAMES and canonical.startswith(
            "repro."
        ):
            return True
    return False


def _unordered_source(node: ast.AST) -> Optional[str]:
    """What unordered collection ``node`` iterates, if any."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return ".keys()"
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    return None


class UnorderedIterRule(Rule):
    id = "unordered-iter"
    summary = (
        "code reachable from exec/hashing must not iterate sets or "
        ".keys() without sorted(...): hash order is process-salted and "
        "poisons fingerprints"
    )

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        if not _fingerprint_scoped(module):
            return []
        findings: List[Finding] = []
        iter_sites: List[ast.AST] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_sites.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iter_sites.extend(gen.iter for gen in node.generators)
        for site in iter_sites:
            source = _unordered_source(site)
            if source is None:
                continue
            findings.append(
                Finding(
                    path=module.path,
                    line=site.lineno,
                    column=site.col_offset,
                    rule=self.id,
                    message=(
                        f"iterating {source} in fingerprint-reachable code "
                        "follows process-salted hash order; wrap the iterable "
                        "in sorted(...)"
                    ),
                    symbol=source,
                )
            )
        return findings
