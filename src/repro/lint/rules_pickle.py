"""Pickle-safety rule for execution-engine payloads.

Every :class:`~repro.exec.tasks.EvalTask` must cross a process boundary
(``ProcessPoolExecutor`` pickles task lists into workers) and land in
the content-addressed MP cache (pickled to disk).  Lambdas, closures
over local state, and locally-defined classes pickle either not at all
or by *reference to a qualname that does not exist in the worker* --
the failure shows up only when ``--workers`` goes above 0, long after
the code merged.  This rule flags those payloads at the call site:
arguments to ``*Task(...)`` constructors and to ``.map(...)`` on a
parallel evaluator / pool / executor.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set

from repro.lint.core import Finding, ModuleSource, Rule, expr_window

__all__ = ["PickleSafetyRule"]

_TASK_CTOR = re.compile(r"^[A-Z]\w*Task$")

#: Receiver names whose ``.map(...)`` dispatches across processes.
_POOL_RECEIVERS = {"evaluator", "pool", "executor"}

#: Constructors whose instances dispatch across processes; a name
#: assigned from one of these makes that name a pool receiver too.
_POOL_TYPES = {"ParallelEvaluator", "ProcessPoolExecutor", "Pool"}


def _terminal_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _pool_bound_names(tree: ast.AST) -> Set[str]:
    """Names assigned (or with-bound) from a pool-type constructor."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        value = None
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            value, targets = node.context_expr, [node.optional_vars]
        if not isinstance(value, ast.Call):
            continue
        if _terminal_name(value.func) not in _POOL_TYPES:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _local_defs(tree: ast.AST) -> Set[str]:
    """Names of functions/classes defined inside another function."""
    local: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                local.add(child.name)
    return local


class PickleSafetyRule(Rule):
    id = "pickle-safety"
    summary = (
        "no lambdas, closures, or locally-defined classes in EvalTask "
        "fields or ParallelEvaluator.map payloads -- they cannot pickle "
        "into pool workers or the MP cache"
    )

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        pool_names = _POOL_RECEIVERS | _pool_bound_names(module.tree)
        local_defs = _local_defs(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._payload_target(node, pool_names)
            if target is None:
                continue
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                bad = self._unpicklable(value, local_defs)
                if bad is None:
                    continue
                findings.append(
                    Finding(
                        path=module.path,
                        line=value.lineno,
                        column=value.col_offset,
                        rule=self.id,
                        message=(
                            f"{bad} passed into {target} will not pickle "
                            "across the process boundary; use a module-level "
                            "function or a frozen dataclass field instead"
                        ),
                        symbol=f"{target}:{bad}",
                        # The pragma may sit anywhere on the enclosing
                        # call -- its first line, the flagged argument,
                        # or the closing-paren line.
                        extra_lines=(node.lineno,) + expr_window(node),
                    )
                )
        return findings

    @staticmethod
    def _payload_target(call: ast.Call, pool_names: Set[str]) -> Optional[str]:
        """The pickled-payload sink this call feeds, if any."""
        name = _terminal_name(call.func)
        if _TASK_CTOR.match(name) or name == "EvalTask":
            return f"{name}(...)"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "map"
        ):
            receiver = call.func.value
            if isinstance(receiver, ast.Name) and receiver.id in pool_names:
                return f"{receiver.id}.map(...)"
            if (
                isinstance(receiver, ast.Call)
                and _terminal_name(receiver.func) in _POOL_TYPES
            ):
                return f"{_terminal_name(receiver.func)}().map(...)"
        return None

    @classmethod
    def _unpicklable(cls, value: ast.AST, local_defs: Set[str]) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name) and value.id in local_defs:
            return f"locally-defined '{value.id}'"
        # functools.partial pickles by reference to whatever it wraps:
        # partial(lambda ...) and partial(local_def) fail in the worker
        # exactly like the bare callable would.
        partial_payload = cls._partial_payload(value, local_defs)
        if partial_payload is not None:
            return partial_payload
        # Containers of lambdas ([f, lambda: ...]) are payloads too.
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Lambda):
                    return "a lambda"
                if isinstance(element, ast.Name) and element.id in local_defs:
                    return f"locally-defined '{element.id}'"
                partial_payload = cls._partial_payload(element, local_defs)
                if partial_payload is not None:
                    return partial_payload
        return None

    @staticmethod
    def _partial_payload(
        value: ast.AST, local_defs: Set[str]
    ) -> Optional[str]:
        """The description of a bad ``partial(...)`` payload, if any."""
        if not isinstance(value, ast.Call):
            return None
        if _terminal_name(value.func) != "partial":
            return None
        for arg in list(value.args) + [kw.value for kw in value.keywords]:
            if isinstance(arg, ast.Lambda):
                return "a functools.partial wrapping a lambda"
            if isinstance(arg, ast.Name) and arg.id in local_defs:
                return (
                    f"a functools.partial wrapping locally-defined '{arg.id}'"
                )
        return None
