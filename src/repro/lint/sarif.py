"""SARIF 2.1.0 export for lint results.

GitHub code scanning (and most editor SARIF viewers) can annotate a pull
request directly from this file, which turns the invariant checker's
findings into inline review comments instead of a log to scroll.  One
run object carries the full rule metadata; baselined findings are
emitted with a ``suppressions`` entry so viewers show them as accepted
rather than new.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lint.core import Finding, LintResult, Rule

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _result(finding: Finding, suppressed: bool) -> Dict:
    out: Dict = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.column + 1),
                    },
                }
            }
        ],
    }
    if finding.symbol:
        out["partialFingerprints"] = {
            "repro/baselineKey/v1": "::".join(finding.baseline_key)
        }
    if suppressed:
        out["suppressions"] = [
            {"kind": "external", "justification": "committed lint baseline"}
        ]
    return out


def to_sarif(result: LintResult, rules: Sequence[Rule]) -> Dict:
    """The complete SARIF 2.1.0 payload for one lint run."""
    rule_meta: List[Dict] = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary or rule.id},
        }
        for rule in rules
        if rule.id
    ]
    known = {meta["id"] for meta in rule_meta}
    for finding in result.parse_errors:
        if finding.rule not in known:
            known.add(finding.rule)
            rule_meta.append(
                {
                    "id": finding.rule,
                    "shortDescription": {"text": "file could not be parsed"},
                }
            )
    results = [
        _result(finding, suppressed=False)
        for finding in result.findings + result.parse_errors
    ]
    results.extend(
        _result(finding, suppressed=True)
        for finding in result.baseline_findings
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "rules": rule_meta,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
