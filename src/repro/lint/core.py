"""The AST-based invariant checker's core: rules, findings, runner.

The repo's headline guarantee -- bit-identical results and telemetry
across serial, chunked, and multi-process runs -- rests on coding
invariants (seed plumbing, pickle-safe task payloads, catalogued metric
names, clock hygiene, ordered iteration on fingerprint inputs) that
ordinary linters cannot see.  This module provides the machinery those
repo-specific rules plug into:

- :class:`Finding` -- one violation, with a stable ``baseline_key`` so a
  committed baseline file can grandfather accepted findings without
  pinning line numbers;
- :class:`Rule` -- the visitor contract (``check_module`` per file plus
  a ``finalize`` hook for whole-project rules such as catalog parity);
- :class:`ModuleSource` -- a parsed file with its pragma map and an
  import-alias resolver shared by every rule;
- :class:`Linter` / :func:`run_lint` -- deterministic file walking,
  ``# lint: ignore[rule-id]`` suppression, baseline filtering, and JSON
  plus human-readable output.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ImportMap",
    "LintConfig",
    "LintResult",
    "Linter",
    "ModuleSource",
    "Rule",
    "expr_window",
    "load_baseline",
    "run_lint",
]

JSON_SCHEMA_VERSION = 1


def expr_window(node: ast.AST, cap: int = 12) -> Tuple[int, ...]:
    """Continuation lines of a multiline node, for ``Finding.extra_lines``.

    A ``# lint: ignore[...]`` pragma anywhere inside a multiline call
    (typically on the closing-paren line) should suppress the finding
    anchored at the call's first line; ``cap`` bounds the window so a
    pathological expression cannot blanket a whole file.
    """
    end = getattr(node, "end_lineno", None) or node.lineno
    return tuple(range(node.lineno + 1, min(end, node.lineno + cap) + 1))

#: ``# lint: ignore`` suppresses every rule on that line;
#: ``# lint: ignore[rule-a,rule-b]`` suppresses only the named rules.
_PRAGMA = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    #: A short stable identifier for *what* was flagged (a metric name, a
    #: function name, a call expression) -- the line-independent part of
    #: the baseline key, so unrelated edits don't churn the baseline.
    symbol: str = ""
    #: Extra lines where a suppression pragma also counts -- decorator
    #: lines above a flagged def, or the continuation lines of a
    #: multiline call.  Excluded from ordering, JSON, and the baseline.
    extra_lines: Tuple[int, ...] = field(default=(), compare=False)

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "symbol": self.symbol,
        }

    def to_text(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"


class ImportMap:
    """Resolves local names to canonical dotted module paths.

    Built from a module's ``import``/``from`` statements (at any nesting
    level), so rules can ask "is this call ``numpy.random.default_rng``?"
    regardless of aliasing (``import numpy as np``, ``from numpy.random
    import default_rng as mk_rng``, ...).
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.names[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` to module ``a``.
                        top = alias.name.split(".")[0]
                        self.names[top] = top
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.names[bound] = f"{module}.{alias.name}" if module else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.names.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)


class ModuleSource:
    """One parsed python file plus the per-line pragma map."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.imports = ImportMap(tree)
        #: line -> None (ignore everything) or the set of ignored rule ids.
        self.ignores: Dict[int, Optional[Set[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            if match.group(1) is None:
                self.ignores[lineno] = None
            else:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.ignores[lineno] = {part for part in ids if part}

    @classmethod
    def parse(cls, path: str, text: str) -> "ModuleSource":
        return cls(path, text, ast.parse(text, filename=path))

    def suppresses(self, finding: Finding) -> bool:
        """Whether a pragma on any of the finding's lines covers its rule."""
        for line in (finding.line, *finding.extra_lines):
            rules = self.ignores.get(line, ...)
            if rules is ...:
                continue
            if rules is None or finding.rule in rules:
                return True
        return False


class Rule:
    """Base class for one lint rule (or one tightly-related family)."""

    #: Stable kebab-case identifier used in output, pragmas, and baselines.
    id: str = ""
    #: One-line description shown by ``--list-rules`` and docs.
    summary: str = ""
    #: Whole-program rules set this; the linter then builds the linked
    #: call graph (:mod:`repro.lint.graph`) and calls ``check_program``.
    needs_program: bool = False

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Findings for one parsed file."""
        return ()

    def check_program(self, program) -> Iterable[Finding]:
        """Findings over the linked whole-program view (flow rules)."""
        return ()

    def finalize(self, modules: Sequence[ModuleSource]) -> Iterable[Finding]:
        """Whole-project findings, after every module was checked."""
        return ()


@dataclass
class LintConfig:
    """Knobs for one linter run."""

    #: Only run these rule ids (None = all registered rules).
    select: Optional[Set[str]] = None
    #: Never run these rule ids.
    ignore: Set[str] = field(default_factory=set)
    #: Baseline file; findings whose ``baseline_key`` appears there are
    #: reported in counts but do not fail the run.
    baseline_path: Optional[str] = None
    #: Markdown files holding the metric-name catalog tables.
    catalog_paths: Sequence[str] = ()
    #: Alert-rule files (TOML/JSON) whose metrics must be catalogued.
    alert_rule_paths: Sequence[str] = ()
    #: Whether to report catalog entries no code emits (disable when
    #: linting a partial tree, where "nothing emits X" is vacuous).
    stale_check: bool = True
    #: Per-module analysis cache file (None disables persistence; the
    #: in-memory store is still used within the run).
    cache_path: Optional[str] = None
    #: When set, only these paths plus their reverse-dependency closure
    #: over the import graph are checked (``--changed-only`` mode).
    changed_paths: Optional[Sequence[str]] = None


@dataclass
class LintResult:
    """Everything one run produced."""

    findings: List[Finding]
    baseline_findings: List[Finding]
    pragma_suppressed: int
    files_checked: int
    rules: List[str]
    parse_errors: List[Finding]
    #: Whole-program analysis stats: which modules were (re-)extracted
    #: (``analyzed``), served from the cache (``cached``), and actually
    #: rule-checked this run (``checked``).  Empty when no program rule
    #: ran.
    analysis: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_json(self) -> Dict[str, object]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro.lint",
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "findings": [f.as_dict() for f in self.findings],
            "parse_errors": [f.as_dict() for f in self.parse_errors],
            "suppressed": {
                "pragma": self.pragma_suppressed,
                "baseline": len(self.baseline_findings),
            },
            "analysis": {
                key: list(value) for key, value in self.analysis.items()
            },
            "ok": self.ok,
        }

    def to_text(self) -> str:
        lines = [f.to_text() for f in self.findings + self.parse_errors]
        total = len(self.findings) + len(self.parse_errors)
        lines.append(
            f"repro.lint: {total} finding(s) in {self.files_checked} file(s)"
            f" ({self.pragma_suppressed} pragma-suppressed,"
            f" {len(self.baseline_findings)} baselined)"
        )
        return "\n".join(lines)


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """The set of grandfathered ``baseline_key``\\ s from a baseline file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = payload.get("entries", [])
    return {
        (str(e["rule"]), str(e["path"]), str(e.get("symbol", "")))
        for e in entries
    }


def baseline_payload(findings: Sequence[Finding]) -> Dict[str, object]:
    """The JSON payload ``--update-baseline`` writes."""
    keys = sorted({f.baseline_key for f in findings})
    return {
        "version": JSON_SCHEMA_VERSION,
        "entries": [
            {"rule": rule, "path": path, "symbol": symbol}
            for rule, path, symbol in keys
        ],
    }


def walk_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.append(path)
    seen: Set[str] = set()
    unique: List[Path] = []
    for path in out:
        key = path.as_posix()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


class Linter:
    """Runs a battery of rules over a file tree."""

    def __init__(self, rules: Sequence[Rule], config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.rules = [
            rule
            for rule in rules
            if rule.id not in self.config.ignore
            and (self.config.select is None or rule.id in self.config.select)
        ]

    def run(self, paths: Sequence[str]) -> LintResult:
        parse_errors: List[Finding] = []
        files = walk_python_files(paths)
        texts: Dict[str, str] = {}
        order: List[str] = []
        for file_path in files:
            rel = file_path.as_posix()
            try:
                texts[rel] = file_path.read_text(encoding="utf-8")
                order.append(rel)
            except (OSError, UnicodeDecodeError) as exc:
                parse_errors.append(
                    Finding(
                        path=rel,
                        line=1,
                        column=0,
                        rule="parse-error",
                        message=f"cannot read file: {exc}",
                        symbol=rel,
                    )
                )

        parsed: Dict[str, Optional[ModuleSource]] = {}

        def parse(rel: str) -> Optional[ModuleSource]:
            if rel in parsed:
                return parsed[rel]
            try:
                parsed[rel] = ModuleSource.parse(rel, texts[rel])
            except SyntaxError as exc:
                line = getattr(exc, "lineno", 1) or 1
                parse_errors.append(
                    Finding(
                        path=rel,
                        line=int(line),
                        column=0,
                        rule="parse-error",
                        message=f"cannot parse file: {exc}",
                        symbol=rel,
                    )
                )
                parsed[rel] = None
            return parsed[rel]

        # ---- whole-program phase: summaries, cache, linked call graph.
        program = None
        analysis: Dict[str, List[str]] = {}
        program_rules = [
            rule for rule in self.rules if getattr(rule, "needs_program", False)
        ]
        if program_rules or self.config.changed_paths is not None:
            # Imported lazily: graph depends on this module.
            from repro.lint.graph import build_program, extract_summary
            from repro.lint.store import AnalysisStore, content_digest

            store_path = (
                Path(self.config.cache_path) if self.config.cache_path else None
            )
            store = AnalysisStore(store_path)
            summaries = []
            for rel in order:
                digest = content_digest(texts[rel])
                summary = store.get(rel, digest)
                if summary is None:
                    module = parse(rel)
                    if module is None:
                        continue
                    summary = extract_summary(module, digest)
                    store.put(summary)
                summaries.append(summary)
            program = build_program(summaries)
            store.prune(order)
            store.save()
            analysis = {
                "analyzed": sorted(store.misses),
                "cached": sorted(store.hits),
            }

        # ---- scope: everything, or the changed set's dependency closure.
        if self.config.changed_paths is not None and program is not None:
            wanted = program.reverse_dependency_closure(
                Path(p).as_posix() for p in self.config.changed_paths
            )
            check_list = [rel for rel in order if rel in wanted]
        else:
            check_list = list(order)
        checked_set = set(check_list)
        if analysis or self.config.changed_paths is not None:
            analysis["checked"] = list(check_list)

        # ---- per-file phase.
        raw: List[Finding] = []
        modules: List[ModuleSource] = []
        for rel in check_list:
            module = parse(rel)
            if module is None:
                continue
            modules.append(module)
            for rule in self.rules:
                if not getattr(rule, "needs_program", False):
                    raw.extend(rule.check_module(module))

        # ---- program phase: flow rules see the whole graph but only
        # report into the checked scope.
        if program is not None:
            for rule in program_rules:
                for finding in rule.check_program(program):
                    if finding.path in checked_set:
                        raw.append(finding)

        for rule in self.rules:
            if not getattr(rule, "needs_program", False):
                raw.extend(rule.finalize(modules))

        by_path = {module.path: module for module in modules}
        pragma_suppressed = 0
        survivors: List[Finding] = []
        for finding in sorted(raw):
            module = by_path.get(finding.path)
            if module is not None and module.suppresses(finding):
                pragma_suppressed += 1
            else:
                survivors.append(finding)

        baseline_keys: Set[Tuple[str, str, str]] = set()
        if self.config.baseline_path and Path(self.config.baseline_path).exists():
            baseline_keys = load_baseline(self.config.baseline_path)
        baselined = [f for f in survivors if f.baseline_key in baseline_keys]
        fresh = [f for f in survivors if f.baseline_key not in baseline_keys]

        return LintResult(
            findings=fresh,
            baseline_findings=baselined,
            pragma_suppressed=pragma_suppressed,
            files_checked=len(check_list),
            rules=[rule.id for rule in self.rules],
            parse_errors=parse_errors,
            analysis=analysis,
        )


def run_lint(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Convenience wrapper: build the default battery and run it."""
    if rules is None:
        from repro.lint import default_rules

        rules = default_rules(config or LintConfig())
    return Linter(rules, config).run(paths)
