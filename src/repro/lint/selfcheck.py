"""Analyzer self-check against the seeded bad-fixture corpus.

``tests/fixtures/lint_corpus`` contains one deliberately-broken module
per interprocedural rule family, and ``expected.json`` pins the exact
``(rule, file, line)`` triples the analyzer must produce over them.
This runner diffs actual against expected in both directions, so CI
catches the analyzer going blind (a fixture no longer flagged) as well
as going noisy (a finding the corpus does not expect) -- on every
supported python version, since AST shapes shift between releases.

Run as ``python -m repro.lint.selfcheck [corpus_dir]``; exit 0 iff the
corpus findings match exactly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from repro.lint import default_rules
from repro.lint.core import LintConfig, Linter

__all__ = ["main", "run_selfcheck"]

DEFAULT_CORPUS = "tests/fixtures/lint_corpus"

#: The families the corpus seeds violations for.  Per-file rules outside
#: this set are deliberately not run: the corpus pragmas some of them off
#: to isolate the interprocedural finding (see ``wallclock_feed_bad``).
SELECTED_RULES = {
    "rng-taint",
    "worker-state-mutation",
    "pickle-reachability",
    "wallclock-fingerprint",
    "span-escape",
    "pickle-safety",
}


def run_selfcheck(corpus_dir: str = DEFAULT_CORPUS) -> Tuple[bool, List[str]]:
    """(ok, report_lines) for one corpus run."""
    corpus = Path(corpus_dir)
    expected_path = corpus / "expected.json"
    if not expected_path.exists():
        return False, [f"selfcheck: no {expected_path}"]
    payload = json.loads(expected_path.read_text(encoding="utf-8"))
    expected: Set[Tuple[str, str, int]] = {
        (e["rule"], e["file"], int(e["line"])) for e in payload["findings"]
    }

    config = LintConfig(
        select=set(SELECTED_RULES),
        baseline_path=None,
        stale_check=False,
        cache_path=None,
    )
    result = Linter(default_rules(config), config).run([corpus.as_posix()])
    actual: Set[Tuple[str, str, int]] = {
        (f.rule, Path(f.path).name, f.line) for f in result.findings
    }

    lines: List[str] = []
    for triple in sorted(expected - actual):
        lines.append("selfcheck: MISSING expected finding: "
                     f"{triple[1]}:{triple[2]}: {triple[0]}")
    for triple in sorted(actual - expected):
        lines.append("selfcheck: UNEXPECTED finding: "
                     f"{triple[1]}:{triple[2]}: {triple[0]}")
    for finding in result.parse_errors:
        lines.append(f"selfcheck: parse error: {finding.to_text()}")
    ok = not lines
    lines.append(
        f"selfcheck: {len(actual)}/{len(expected)} expected finding(s) "
        f"matched over {result.files_checked} corpus file(s): "
        + ("OK" if ok else "MISMATCH")
    )
    return ok, lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    corpus_dir = args[0] if args else DEFAULT_CORPUS
    ok, lines = run_selfcheck(corpus_dir)
    print("\n".join(lines))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
