"""Metric-catalog parity and span-balance rules.

The metric-name tables in ``docs/API.md`` / ``docs/OBSERVABILITY.md``
are the contract dashboards and the run-ledger regression checker build
on.  Drift in either direction is a failure:

- ``metric-uncataloged``: code emits a ``quality.*`` / ``exec.*`` / ...
  name the catalog does not know -- the new series would be invisible to
  docs and to ``runs check`` reviewers;
- ``metric-stale``: the catalog promises a name nothing emits -- readers
  chase telemetry that does not exist.

Emissions are collected from every string literal (or f-string pattern)
passed to ``counter( / gauge( / histogram( / inc( / observe( /
set_gauge(`` and to ``span(``; f-string holes become wildcards and
parity is decided by pattern intersection (see
:mod:`repro.lint.catalog`).

``span-balance`` rides along: spans must be opened via ``with span(...)``
so the per-thread stack always unwinds -- a bare ``span(...)`` call (or
manual ``record_span`` / span-stack plumbing outside ``repro.obs``)
leaves the stack unbalanced and corrupts every enclosing span path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.lint.catalog import (
    CatalogEntry,
    catalog_matches,
    globs_intersect,
    parse_catalog,
)
from repro.lint.core import Finding, ModuleSource, Rule

__all__ = ["MetricCatalogRule", "MetricStaleRule", "SpanBalanceRule", "iter_emissions"]

#: Registry methods whose first string argument names a metric.
_EMIT_METHODS = {"counter", "gauge", "histogram", "inc", "observe", "set_gauge"}

#: Canonical paths that resolve to the span context manager.
_SPAN_FUNCS = {"repro.obs.span", "repro.obs.spans.span"}

#: Span-plumbing internals that only ``repro/obs`` itself may touch.
_SPAN_INTERNALS = {"record_span", "adopt_span"}


@dataclass(frozen=True)
class Emission:
    """One metric-name emission site."""

    glob: str  # wildcard pattern; concrete names have no '*'
    display: str  # what to show in findings ('{...}' for f-string holes)
    path: str
    line: int
    column: int


def _literal_glob(node: ast.AST) -> Optional[tuple]:
    """(glob, display) for a Constant-str or JoinedStr node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node.value
    if isinstance(node, ast.JoinedStr):
        glob_parts: List[str] = []
        display_parts: List[str] = []
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                glob_parts.append(part.value)
                display_parts.append(part.value)
            else:
                glob_parts.append("*")
                display_parts.append("{...}")
        return "".join(glob_parts), "".join(display_parts)
    return None


def _is_span_call(module: ModuleSource, call: ast.Call) -> bool:
    if isinstance(call.func, ast.Name) and call.func.id == "span":
        resolved = module.imports.resolve_call(call)
        return resolved is None or resolved in _SPAN_FUNCS
    return module.imports.resolve_call(call) in _SPAN_FUNCS


def iter_emissions(module: ModuleSource) -> Iterable[Emission]:
    """Every metric-name emission in one module."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        name = None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _EMIT_METHODS
        ):
            name = _literal_glob(node.args[0])
            if name is not None:
                glob, display = name
                yield Emission(glob, display, module.path, node.lineno, node.col_offset)
        elif _is_span_call(module, node):
            name = _literal_glob(node.args[0])
            if name is not None:
                glob, display = name
                # A span named N records histogram span.<enclosing>.N.seconds;
                # the enclosing prefix is dynamic, so it is a wildcard hole.
                yield Emission(
                    f"span.*{glob}.seconds",
                    f"span.…{display}.seconds",
                    module.path,
                    node.lineno,
                    node.col_offset,
                )


class _CatalogMixin:
    def __init__(self, catalog_paths: Sequence[str]) -> None:
        self.catalog_paths = list(catalog_paths)
        self._entries: Optional[List[CatalogEntry]] = None

    @property
    def entries(self) -> List[CatalogEntry]:
        if self._entries is None:
            self._entries = parse_catalog(self.catalog_paths)
        return self._entries


class MetricCatalogRule(_CatalogMixin, Rule):
    id = "metric-uncataloged"
    summary = (
        "every emitted metric name must appear in the docs metric catalog "
        "(docs/API.md / docs/OBSERVABILITY.md)"
    )

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        if not self.entries:
            return []
        findings: List[Finding] = []
        for emission in iter_emissions(module):
            if catalog_matches(emission.glob, self.entries):
                continue
            findings.append(
                Finding(
                    path=emission.path,
                    line=emission.line,
                    column=emission.column,
                    rule=self.id,
                    message=(
                        f"metric '{emission.display}' is not in the catalog; "
                        f"add it to {self.catalog_paths[0] if self.catalog_paths else 'the docs'} "
                        "or rename it to a catalogued pattern"
                    ),
                    symbol=emission.display,
                )
            )
        return findings


class MetricStaleRule(_CatalogMixin, Rule):
    id = "metric-stale"
    summary = (
        "every catalogued metric name must still be emitted somewhere in "
        "the linted tree (stale docs mislead dashboards)"
    )

    def finalize(self, modules: Sequence[ModuleSource]) -> Iterable[Finding]:
        emitted = [e.glob for m in modules for e in iter_emissions(m)]
        findings: List[Finding] = []
        for entry in self.entries:
            if any(globs_intersect(entry.glob, glob) for glob in emitted):
                continue
            findings.append(
                Finding(
                    path=entry.path,
                    line=entry.line,
                    column=0,
                    rule=self.id,
                    message=(
                        f"catalogued metric '{entry.name}' is never emitted "
                        "by the linted code; delete the row or restore the "
                        "emission"
                    ),
                    symbol=entry.name,
                )
            )
        return findings


class SpanBalanceRule(Rule):
    id = "span-balance"
    summary = (
        "spans open only via 'with span(...)'; bare span() calls or manual "
        "record_span/stack plumbing outside repro.obs unbalance the "
        "per-thread span stack"
    )

    @staticmethod
    def _in_obs(path: str) -> bool:
        return "/obs/" in path

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        with_contexts: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_span_call(module, node) and id(node) not in with_contexts:
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        column=node.col_offset,
                        rule=self.id,
                        message=(
                            "span(...) must be the context of a 'with' "
                            "statement; a bare call never closes and corrupts "
                            "the span stack"
                        ),
                        symbol="span",
                    )
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SPAN_INTERNALS
                and not self._in_obs(module.path)
            ):
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        column=node.col_offset,
                        rule=self.id,
                        message=(
                            f"manual {node.func.attr}() outside repro.obs "
                            "bypasses the span context manager; open spans "
                            "with 'with span(...)'"
                        ),
                        symbol=node.func.attr,
                    )
                )
        return findings
