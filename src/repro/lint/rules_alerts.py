"""Alert-rule hygiene: every rule's metric must exist in the catalog.

An alert rule that watches a metric nothing emits can never fire -- a
silent monitoring gap, which is exactly the failure mode declarative
alerting was supposed to remove.  This rule loads every committed
alert-rule file (TOML/JSON, see :mod:`repro.obs.alerts`) and checks
each rule's ``metric`` against the same markdown catalog the
metric-parity rules use.  A metric may also name a *derived* series
(``<histogram>.count`` / ``.mean`` / ``.p50`` / ``.p90`` / ``.max``,
see :data:`repro.obs.series.HISTOGRAM_SERIES_SUFFIXES`); those resolve
by stripping the suffix and matching a catalogued histogram.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

from repro.errors import ValidationError
from repro.lint.catalog import CatalogEntry, globs_intersect, parse_catalog
from repro.lint.core import Finding, ModuleSource, Rule
from repro.obs.alerts import load_rules
from repro.obs.series import HISTOGRAM_SERIES_SUFFIXES

__all__ = ["AlertRuleMetricRule"]


def _metric_catalogued(metric: str, entries: Sequence[CatalogEntry]) -> bool:
    """Whether an alert rule's metric resolves to a catalog entry."""
    if any(globs_intersect(metric, entry.glob) for entry in entries):
        return True
    for suffix in HISTOGRAM_SERIES_SUFFIXES:
        if not metric.endswith(suffix):
            continue
        base = metric[: -len(suffix)]
        if any(
            globs_intersect(base, entry.glob)
            for entry in entries
            if entry.kind == "histogram"
        ):
            return True
    return False


def _metric_line(text: str, metric: str) -> int:
    """First line mentioning ``metric`` (1 when not found)."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        if metric in line:
            return lineno
    return 1


class AlertRuleMetricRule(Rule):
    """Committed alert-rule files only reference catalogued metrics."""

    id = "alert-unknown-metric"
    summary = "alert rules watch metrics the catalog knows about"

    def __init__(
        self,
        catalog_paths: Sequence[str],
        alert_rule_paths: Sequence[str] = (),
    ) -> None:
        self.catalog_paths = list(catalog_paths)
        self.alert_rule_paths = list(alert_rule_paths)

    def finalize(self, modules: Sequence[ModuleSource]) -> Iterable[Finding]:
        if not self.alert_rule_paths:
            return []
        entries = parse_catalog(self.catalog_paths)
        if not entries:
            # No catalog on disk (partial tree): parity is unjudgeable.
            return []
        findings: List[Finding] = []
        for raw in self.alert_rule_paths:
            path = Path(raw)
            rel = path.as_posix()
            try:
                rules = load_rules(path)
            except ValidationError as exc:
                findings.append(
                    Finding(
                        path=rel,
                        line=1,
                        column=0,
                        rule=self.id,
                        message=f"cannot load alert rules: {exc}",
                        symbol=rel,
                    )
                )
                continue
            text = path.read_text(encoding="utf-8")
            for rule in rules:
                if _metric_catalogued(rule.metric, entries):
                    continue
                findings.append(
                    Finding(
                        path=rel,
                        line=_metric_line(text, rule.metric),
                        column=0,
                        rule=self.id,
                        message=(
                            f"alert rule {rule.name!r} watches metric "
                            f"{rule.metric!r}, which no catalog entry "
                            f"covers (it can never fire)"
                        ),
                        symbol=f"{rule.name}:{rule.metric}",
                    )
                )
        return findings
