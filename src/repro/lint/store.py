"""Content-hash keyed cache for per-module analysis summaries.

Extraction (:func:`repro.lint.graph.extract_summary`) is a pure
function of a file's text, so its result can be reused across runs as
long as the text has not changed.  The store keeps one JSON file
(``.repro-lint-cache.json`` by default) mapping each analyzed path to
its content digest and serialized :class:`~repro.lint.graph.ModuleSummary`;
a warm run re-extracts only the modules whose digest moved and loads the
rest straight from disk, which is what keeps ``--changed-only`` and the
CI cache cheap.

The file is versioned by the extraction schema: when
:data:`repro.lint.graph.SCHEMA_VERSION` bumps, every cached entry is
silently discarded rather than risking stale-shaped summaries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro.lint.graph import SCHEMA_VERSION, ModuleSummary

__all__ = ["AnalysisStore", "content_digest"]

DEFAULT_STORE = ".repro-lint-cache.json"


def content_digest(text: str) -> str:
    """Stable digest of one module's source text."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


class AnalysisStore:
    """Digest-keyed summary cache with atomic persistence."""

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self.entries: Dict[str, Dict] = {}
        #: Paths whose summaries were served from cache this run.
        self.hits: list = []
        #: Paths that had to be (re-)extracted this run.
        self.misses: list = []
        if path is not None and path.exists():
            self._load(path)

    def _load(self, path: Path) -> None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != SCHEMA_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def get(self, path: str, digest: str) -> Optional[ModuleSummary]:
        """The cached summary for ``path`` iff its digest still matches."""
        entry = self.entries.get(path)
        if not entry or entry.get("digest") != digest:
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            return None
        self.hits.append(path)
        return summary

    def put(self, summary: ModuleSummary) -> None:
        self.entries[summary.path] = {
            "digest": summary.digest,
            "summary": summary.to_dict(),
        }
        self.misses.append(summary.path)

    def prune(self, keep_paths) -> None:
        """Drop entries for files that no longer exist in the check set."""
        keep = set(keep_paths)
        self.entries = {p: e for p, e in self.entries.items() if p in keep}

    def save(self) -> None:
        """Atomically persist the store (no-op without a backing path)."""
        if self.path is None:
            return
        payload = {"version": SCHEMA_VERSION, "entries": self.entries}
        text = json.dumps(payload, sort_keys=True)
        directory = self.path.parent
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(directory), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
