"""RNG discipline rules.

Bit-identical replay (serial vs chunked vs multi-process, warm vs cold
cache) only holds when *every* random draw descends from a plumbed seed:
``np.random.default_rng()`` with no argument seeds from the OS entropy
pool, and the module-level ``np.random.*`` / ``random.*`` APIs share
hidden global state that depends on import order and call interleaving.
Three rules enforce the discipline:

- ``rng-unseeded``: generator constructors called with no seed;
- ``rng-global-state``: any use of the global-state RNG APIs;
- ``rng-missing-param``: world-building functions (``*_world``,
  ``generate_*``, ``sample_*``) that accept neither an ``rng`` nor a
  ``seed`` parameter, so callers *cannot* plumb determinism through.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable, List

from repro.lint.core import Finding, ModuleSource, Rule, expr_window

__all__ = ["RngUnseededRule", "RngGlobalStateRule", "RngMissingParamRule"]

#: Constructors that take the seed as their first argument: calling them
#: with *no* arguments means "seed me from OS entropy" -- banned.
_SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "random.Random",
}

#: ``numpy.random`` attributes that are fine to call: explicit
#: generator/bit-generator construction (unseeded use is caught by
#: ``rng-unseeded``).  Everything else on the module is the legacy
#: global-state API (``np.random.normal``, ``np.random.seed``, ...).
_NUMPY_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Function-name shapes that build or sample random worlds and therefore
#: must accept a pluggable seed.
_WORLD_PATTERNS = ("*_world", "generate_*", "sample_*")

#: Parameter names that count as a plumbed seed.
_SEED_PARAMS = {"rng", "seed", "seeds", "random_state", "generator"}
_SEED_SUFFIXES = ("_rng", "_seed")
_SEED_PREFIXES = ("rng_", "seed_")


def _call_symbol(module: ModuleSource, call: ast.Call) -> str:
    return module.imports.resolve_call(call) or ast.dump(call.func)[:40]


class RngUnseededRule(Rule):
    id = "rng-unseeded"
    summary = (
        "RNG constructors must be seeded: `default_rng()` / `Random()` with "
        "no argument draw from OS entropy and break replay"
    )

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            resolved = module.imports.resolve_call(node)
            if resolved in _SEEDED_CONSTRUCTORS:
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        column=node.col_offset,
                        rule=self.id,
                        message=(
                            f"{resolved}() with no seed draws from OS entropy; "
                            "pass a seed derived from the plumbed root seed"
                        ),
                        symbol=resolved,
                        extra_lines=expr_window(node),
                    )
                )
        return findings


class RngGlobalStateRule(Rule):
    id = "rng-global-state"
    summary = (
        "the module-level np.random.* / random.* APIs share hidden global "
        "state; use a Generator threaded through the call tree"
    )

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve_call(node)
            if resolved is None:
                continue
            offender = None
            if resolved.startswith("numpy.random."):
                tail = resolved[len("numpy.random."):]
                if "." not in tail and tail not in _NUMPY_CONSTRUCTORS:
                    offender = resolved
            elif resolved.startswith("random."):
                tail = resolved[len("random."):]
                if "." not in tail and tail != "Random":
                    offender = resolved
            if offender is not None:
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        column=node.col_offset,
                        rule=self.id,
                        message=(
                            f"{offender}() uses the process-global RNG stream; "
                            "draw from an explicitly seeded np.random.Generator "
                            "instead"
                        ),
                        symbol=offender,
                        extra_lines=expr_window(node),
                    )
                )
        return findings


class RngMissingParamRule(Rule):
    id = "rng-missing-param"
    summary = (
        "functions named *_world / generate_* / sample_* must accept an "
        "rng/seed parameter so determinism can be plumbed through"
    )

    @staticmethod
    def _is_seed_param(name: str) -> bool:
        return (
            name in _SEED_PARAMS
            or name.endswith(_SEED_SUFFIXES)
            or name.startswith(_SEED_PREFIXES)
        )

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name
            if not any(fnmatch(name, pattern) for pattern in _WORLD_PATTERNS):
                continue
            params = [
                arg.arg
                for arg in (
                    node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                )
            ]
            if any(self._is_seed_param(param) for param in params):
                continue
            # Methods of classes that took the seed at construction time
            # hold it on ``self``; only flag free functions and methods
            # with no seed-ish parameter at all (``self`` alone is not
            # evidence of a seed, so those are still flagged -- carry a
            # pragma if the instance genuinely owns a seeded Generator).
            findings.append(
                Finding(
                    path=module.path,
                    line=node.lineno,
                    column=node.col_offset,
                    rule=self.id,
                    message=(
                        f"'{name}' builds or samples random structure but has "
                        "no rng/seed parameter; callers cannot plumb the root "
                        "seed through it"
                    ),
                    symbol=name,
                    # A pragma on any decorator line above the def also
                    # suppresses -- the def line is often mid-signature.
                    extra_lines=tuple(
                        d.lineno for d in node.decorator_list
                    ),
                )
            )
        return findings
