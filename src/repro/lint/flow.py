"""Interprocedural dataflow rules over the linked call graph.

The per-file rules guard each function in isolation; these four rule
families guard the *paths* between them, using
:class:`repro.lint.graph.Program`:

- ``rng-taint`` -- any RNG constructed on a path reachable from an
  ``EvalTask.run`` override must be seeded from a plumbed seed source
  (a seed-like parameter, a ``derive_seed`` call, or a value derived
  from one).  This replaces the per-file signature-name heuristic with
  real reachability: a helper three calls below ``run`` that draws from
  ``default_rng()`` -- or ``default_rng(42)`` -- breaks replay exactly
  like one inside the task.
- ``worker-state-mutation`` -- a static race detector for the fork pool:
  nothing reachable from ``_run_task_timed``/``_run_chunk`` may write a
  module-level global or mutate a fork-shared world object, except the
  sanctioned registry sites (``_SHARED``/``_HERMETIC`` in
  ``repro.exec.tasks``) and the telemetry capsule machinery under
  ``repro.obs``.  Such writes are invisible to the parent on fork-exec
  platforms and racy on fork, so results would silently depend on the
  worker schedule.
- ``pickle-reachability`` -- every annotated field of every
  ``EvalTask`` subclass crosses the pool boundary; each must resolve,
  transitively through project dataclasses, to module-level picklable
  definitions.  ``object``/``Any``/``Callable`` annotations and names
  that resolve to nothing are flagged.
- ``wallclock-fingerprint`` / ``span-escape`` -- the hashing API's
  inputs must not depend on the wall clock through *any* call chain,
  and a raw span record returned from a helper must be consumed by a
  ``with`` block at the eventual call site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Finding, Rule
from repro.lint.graph import Program

__all__ = [
    "PickleReachabilityRule",
    "RngTaintRule",
    "SpanEscapeRule",
    "WallclockFingerprintRule",
    "WorkerStateMutationRule",
]


class RngTaintRule(Rule):
    """Taint-check randomness on every task-reachable path."""

    id = "rng-taint"
    summary = (
        "RNG constructed on an EvalTask.run-reachable path must be seeded "
        "from a plumbed seed (parameter, derive_seed, or derived value)"
    )
    needs_program = True

    def check_program(self, program: Program) -> Iterable[Finding]:
        roots: List[str] = []
        for class_id in program.task_classes():
            roots.extend(program.lookup_method(class_id, "run"))
        parents = program.reachable(roots)
        for fn_id in sorted(parents):
            node = program.functions[fn_id]
            for site in node.facts.rng_sites:
                if site.get("suppressed"):
                    continue
                if site["seeded"] and site["tainted"]:
                    continue
                chain = " <- ".join(reversed(program.chain(parents, fn_id)))
                what = (
                    "with no seed argument"
                    if not site["seeded"]
                    else "from a seed not derived from a plumbed seed source"
                )
                ctor = site["ctor"].rsplit(".", 1)[-1]
                yield Finding(
                    path=node.path,
                    line=site["line"],
                    column=site["col"],
                    rule=self.id,
                    message=(
                        f"`{ctor}(...)` constructed {what} on a task-reachable "
                        f"path ({chain}); replay from the task fingerprint "
                        "requires every draw to derive from the task seed"
                    ),
                    symbol=f"{node.display}:{site['ctor']}",
                )


#: Module-global names the worker is *meant* to touch: the fork-shared
#: context registry and the hermetic-scheme toggle.
_SANCTIONED_GLOBALS: Set[Tuple[str, str]] = {
    ("repro.exec.tasks", "_SHARED"),
    ("repro.exec.tasks", "_HERMETIC"),
}


class WorkerStateMutationRule(Rule):
    """Static race detector for the process-pool worker closure."""

    id = "worker-state-mutation"
    summary = (
        "functions reachable from the pool workers must not write module "
        "globals or fork-shared world state outside sanctioned sites"
    )
    needs_program = True

    _ROOTS = ("_run_task_timed", "_run_chunk")

    def _sanctioned(self, module: str, name: str) -> bool:
        base = name.split(".")[0]
        if (module, base) in _SANCTIONED_GLOBALS:
            return True
        # Writes routed through the telemetry layer (capsule merge,
        # registry emit) are the sanctioned sink for worker-side state.
        if name.startswith("repro.obs.") or base.startswith("repro.obs"):
            return True
        if name.split(".")[0] in {
            dotted.split(".")[0]
            for mod, dotted in _SANCTIONED_GLOBALS
            if mod == module
        }:
            return True
        return False

    def check_program(self, program: Program) -> Iterable[Finding]:
        roots: List[str] = []
        for name in self._ROOTS:
            roots.extend(program.find_functions(name))
        parents = program.reachable(roots)
        for fn_id in sorted(parents):
            node = program.functions[fn_id]
            if node.module == "repro.obs" or node.module.startswith("repro.obs."):
                continue
            chain = " <- ".join(reversed(program.chain(parents, fn_id)))
            for write in node.facts.global_writes:
                if self._sanctioned(node.module, write["name"]):
                    continue
                yield Finding(
                    path=node.path,
                    line=write["line"],
                    column=write["col"],
                    rule=self.id,
                    message=(
                        f"write to module-level `{write['name']}` on a "
                        f"worker-reachable path ({chain}); worker-side "
                        "global mutations are lost on fork-exec and race "
                        "under fork"
                    ),
                    symbol=f"{node.display}:{write['name']}",
                )
            for write in node.facts.shared_writes:
                yield Finding(
                    path=node.path,
                    line=write["line"],
                    column=write["col"],
                    rule=self.id,
                    message=(
                        f"mutation of fork-shared object `{write['name']}` "
                        f"on a worker-reachable path ({chain}); shared world "
                        "state must stay read-only inside workers"
                    ),
                    symbol=f"{node.display}:{write['name']}",
                )


#: Annotation names that always pickle (builtins, typing containers).
_PICKLABLE_NAMES: Set[str] = {
    "int", "float", "str", "bytes", "bool", "complex", "None",
    "tuple", "list", "dict", "set", "frozenset", "type",
    "Tuple", "List", "Dict", "Set", "FrozenSet", "Optional", "Union",
    "Sequence", "Mapping", "Iterable", "Literal", "ClassVar",
}

#: Annotation names that defeat the static pickle check outright.
_OPAQUE_NAMES: Set[str] = {"object", "Any", "Callable", "callable"}


class PickleReachabilityRule(Rule):
    """Transitive pickle-safety of everything crossing the pool boundary."""

    id = "pickle-reachability"
    summary = (
        "EvalTask field annotations must transitively resolve to "
        "module-level picklable definitions"
    )
    needs_program = True

    _DEPTH_CAP = 4

    def check_program(self, program: Program) -> Iterable[Finding]:
        for class_id in program.task_classes():
            module = program.class_module(class_id)
            summary = program.modules[module]
            cfacts = program.classes[class_id]
            for field_name, info in sorted(cfacts.fields.items()):
                for problem in self._vet(
                    program, module, info["annotation"], set(), 0
                ):
                    yield Finding(
                        path=summary.path,
                        line=info["line"],
                        column=0,
                        rule=self.id,
                        message=(
                            f"field `{cfacts.name}.{field_name}: "
                            f"{info['annotation']}` crosses the pool "
                            f"boundary but {problem}"
                        ),
                        symbol=f"{cfacts.name}.{field_name}",
                    )

    def _vet(
        self,
        program: Program,
        module: str,
        annotation: str,
        seen: Set[str],
        depth: int,
    ) -> List[str]:
        """Problem descriptions for one annotation string."""
        try:
            tree = ast.parse(annotation, mode="eval")
        except SyntaxError:
            return [f"annotation `{annotation}` is not parseable"]
        problems: List[str] = []
        for name, dotted in self._terminal_names(tree.body, program, module):
            problems.extend(
                self._vet_name(program, module, name, dotted, seen, depth)
            )
        return problems

    def _terminal_names(self, node: ast.AST, program: Program, module: str):
        """(simple_name, resolved_dotted|None) for each type name used."""
        out: List[Tuple[str, Optional[str]]] = []
        imports = program.modules[module].imports

        def visit(expr: ast.AST) -> None:
            if isinstance(expr, ast.Subscript):
                visit(expr.value)
                visit(expr.slice)
            elif isinstance(expr, ast.Tuple):
                for element in expr.elts:
                    visit(element)
            elif isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
                visit(expr.left)
                visit(expr.right)
            elif isinstance(expr, ast.Constant):
                if isinstance(expr.value, str):
                    try:
                        visit(ast.parse(expr.value, mode="eval").body)
                    except SyntaxError:
                        pass
            elif isinstance(expr, ast.Attribute):
                chain: List[str] = []
                inner: ast.AST = expr
                while isinstance(inner, ast.Attribute):
                    chain.append(inner.attr)
                    inner = inner.value
                if isinstance(inner, ast.Name):
                    base = imports.get(inner.id, inner.id)
                    dotted = ".".join([base] + list(reversed(chain)))
                    out.append((expr.attr, dotted))
            elif isinstance(expr, ast.Name):
                out.append((expr.id, imports.get(expr.id)))

        visit(node)
        return out

    def _vet_name(
        self,
        program: Program,
        module: str,
        name: str,
        dotted: Optional[str],
        seen: Set[str],
        depth: int,
    ) -> List[str]:
        if name in _OPAQUE_NAMES:
            return [
                f"`{name}` gives the pool boundary no picklable shape -- "
                "annotate the concrete (module-level) type"
            ]
        if name in _PICKLABLE_NAMES or name == "...":
            return []
        if dotted is not None and (
            dotted.startswith("numpy.") or dotted == "numpy"
        ):
            return []  # numpy scalars/arrays pickle fine
        if dotted is not None and dotted.startswith("typing."):
            tail = dotted.rsplit(".", 1)[-1]
            if tail in _OPAQUE_NAMES:
                return [
                    f"`{tail}` gives the pool boundary no picklable shape"
                ]
            return []
        # A project class?  (Local, imported, or unique by simple name.)
        class_id = None
        if dotted is not None:
            class_id = program.resolve_class_spec(["dotted", dotted], module)
        if class_id is None:
            class_id = program.resolve_class_spec(["local", name], module)
        if class_id is None:
            return [
                f"`{name}` does not resolve to a module-level definition "
                "visible to the analyzer"
            ]
        if class_id in seen or depth >= self._DEPTH_CAP:
            return []
        seen.add(class_id)
        cfacts = program.classes[class_id]
        problems: List[str] = []
        if cfacts.is_dataclass:
            inner_module = program.class_module(class_id)
            for info in cfacts.fields.values():
                problems.extend(
                    self._vet(
                        program, inner_module, info["annotation"], seen,
                        depth + 1,
                    )
                )
        return problems


class WallclockFingerprintRule(Rule):
    """No wall-clock dependence anywhere in a fingerprint's input."""

    id = "wallclock-fingerprint"
    summary = (
        "inputs to derive_seed/stable_fingerprint/canonical_bytes must not "
        "reach a wall-clock read through any call chain"
    )
    needs_program = True

    def check_program(self, program: Program) -> Iterable[Finding]:
        for fn_id in sorted(program.functions):
            node = program.functions[fn_id]
            for feed in node.facts.hash_feeds:
                roots: List[str] = []
                for target in feed["targets"]:
                    roots.extend(program.resolve_spec(target, node.module))
                parents = program.reachable(roots)
                finding = self._first_dirty(program, parents, node, feed)
                if finding is not None:
                    yield finding

    def _first_dirty(
        self,
        program: Program,
        parents: Dict[str, Optional[str]],
        node,
        feed: Dict,
    ) -> Optional[Finding]:
        for fn_id in sorted(parents):
            callee = program.functions[fn_id]
            for clock in callee.facts.wallclock:
                if clock.get("suppressed"):
                    continue
                chain = " -> ".join(program.chain(parents, fn_id))
                return Finding(
                    path=node.path,
                    line=feed["line"],
                    column=feed["col"],
                    rule=self.id,
                    message=(
                        f"`{feed['api']}(...)` input calls {chain}, which "
                        f"reads `{clock['name']}` at {callee.path}:"
                        f"{clock['line']}; fingerprints and derived seeds "
                        "must be wall-clock independent"
                    ),
                    symbol=f"{node.display}:{feed['api']}",
                )
        return None


class SpanEscapeRule(Rule):
    """Raw span records returned from helpers must land in a ``with``."""

    id = "span-escape"
    summary = (
        "a call to a helper that returns an open span context must be "
        "consumed by a `with` block at the call site"
    )
    needs_program = True

    def check_program(self, program: Program) -> Iterable[Finding]:
        returning = self._span_returning(program)
        for fn_id in sorted(program.functions):
            node = program.functions[fn_id]
            if node.module == "repro.obs" or node.module.startswith("repro.obs."):
                continue
            if fn_id in returning:
                # Wrappers pass the open span through; their callers are
                # the ones on the hook.
                continue
            for call in node.facts.calls:
                if call.in_with:
                    continue
                targets = program.resolve_spec(call.target, node.module)
                if not targets or not all(t in returning for t in targets):
                    continue
                callee = program.functions[targets[0]].display
                yield Finding(
                    path=node.path,
                    line=call.line,
                    column=call.col,
                    rule=self.id,
                    message=(
                        f"`{callee}` returns an open span context but the "
                        "call site does not enter it with `with`; the span "
                        "never closes and telemetry nesting breaks"
                    ),
                    symbol=f"{node.display}:{callee}",
                )

    @staticmethod
    def _span_returning(program: Program) -> Set[str]:
        returning = {
            fn_id
            for fn_id, node in program.functions.items()
            if node.facts.returns_span
        }
        changed = True
        while changed:
            changed = False
            for fn_id, node in program.functions.items():
                if fn_id in returning:
                    continue
                for spec in node.facts.return_targets:
                    resolved = program.resolve_spec(spec, node.module)
                    if resolved and any(t in returning for t in resolved):
                        returning.add(fn_id)
                        changed = True
                        break
        return returning
