"""Project-wide symbol table and call graph for the invariant checker.

The per-file rules in :mod:`repro.lint` can only see one module at a
time, but the contracts they guard are *interprocedural*: a helper three
calls below ``EvalTask.run`` that seeds a generator from a constant
breaks replay just as surely as one in the task itself, and a function
reachable from a pool worker that mutates fork-shared state races no
matter which file it lives in.  This module gives the whole-program
rules in :mod:`repro.lint.flow` their eyes:

- :func:`extract_summary` distils one parsed module into a
  JSON-serializable :class:`ModuleSummary`: its functions and classes,
  every call site (with a symbolic target), RNG-construction sites with
  seed-taint verdicts, module-global and fork-shared writes, wall-clock
  reads, and span-escape facts.  Summaries are pure functions of the
  file's text, which is what makes them cacheable by content hash
  (:mod:`repro.lint.store`).
- :class:`Program` links summaries into a project: imports (including
  package re-exports) are resolved, methods are bound through parameter
  and attribute type hints plus constructor assignments, calls through a
  base-typed receiver conservatively fan out to every subclass override,
  and receiver-less dynamic dispatch falls back to binding only when the
  method name is unique project-wide.
- :meth:`Program.reachable` answers the closure queries the flow rules
  are built on, keeping parent links so findings can show the call
  chain from the root to the violation.

The symbolic call-target encoding (``["dotted", ...]`` / ``["local",
...]`` / ``["self", ...]`` / ``["attr", ...]`` / ``["dyn", ...]``) keeps
extraction local -- a summary never needs another module -- so a single
changed file re-analyzes alone while the rest of the graph loads from
the store.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.core import ModuleSource

__all__ = [
    "CallFact",
    "ClassFacts",
    "FunctionFacts",
    "ModuleSummary",
    "Program",
    "build_program",
    "extract_summary",
    "module_name_for",
]

#: Bump when the extraction schema changes; cached summaries from other
#: versions are discarded (see :mod:`repro.lint.store`).
SCHEMA_VERSION = 1

#: RNG constructors whose seed argument the taint analysis inspects.
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "random.Random",
}

#: Canonical names of the fingerprint/seed-derivation API.
_HASHING_APIS = {
    "repro.exec.hashing.derive_seed",
    "repro.exec.hashing.stable_fingerprint",
    "repro.exec.hashing.canonical_bytes",
}
_HASHING_TAILS = {"derive_seed", "stable_fingerprint", "canonical_bytes"}

#: Wall-clock reads (mirrors rules_time; kept in sync by a lint test).
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Canonical paths of the span context manager.
_SPAN_FUNCS = {"repro.obs.span", "repro.obs.spans.span"}

#: Parameter/attribute names that count as a plumbed seed (mirrors
#: rules_rng's accepted spellings).
_SEED_NAMES = {"rng", "seed", "seeds", "random_state", "generator"}
_SEED_SUFFIXES = ("_rng", "_seed", "_seed_root", "_generator")
_SEED_PREFIXES = ("rng_", "seed_")


def seedlike(name: str) -> bool:
    """Whether ``name`` spells a plumbed seed/generator."""
    return (
        name in _SEED_NAMES
        or name == "seed_root"
        or name.endswith(_SEED_SUFFIXES)
        or name.startswith(_SEED_PREFIXES)
    )


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, by climbing ``__init__.py`` chains.

    ``src/repro/exec/tasks.py`` maps to ``repro.exec.tasks`` because
    ``repro/`` and ``repro/exec/`` are packages while ``src/`` is not.
    Files outside any package keep their stem, which is what the
    single-file test fixtures rely on.
    """
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


# --------------------------------------------------------------------- #
# Summary dataclasses
# --------------------------------------------------------------------- #


@dataclass
class CallFact:
    """One call site with a link-time-resolvable symbolic target."""

    line: int
    col: int
    #: ``["dotted", name]`` / ``["local", name]`` / ``["self", cls, m]``
    #: / ``["attr", typespec, m]`` / ``["dyn", m]``.
    target: List
    in_with: bool = False

    def to_dict(self) -> Dict:
        return {
            "line": self.line, "col": self.col,
            "target": self.target, "in_with": self.in_with,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CallFact":
        return cls(
            line=int(data["line"]), col=int(data["col"]),
            target=list(data["target"]), in_with=bool(data["in_with"]),
        )


@dataclass
class FunctionFacts:
    """Everything the flow rules need to know about one function."""

    name: str  # qualname within the module ("f" or "Cls.f")
    line: int
    end_line: int
    decorator_lines: List[int] = field(default_factory=list)
    params: List[str] = field(default_factory=list)
    calls: List[CallFact] = field(default_factory=list)
    #: ``{line, col, ctor, seeded, tainted}`` per RNG-constructor call.
    rng_sites: List[Dict] = field(default_factory=list)
    #: ``{name, line, col, kind}`` with kind ``global`` | ``module-attr``.
    global_writes: List[Dict] = field(default_factory=list)
    #: ``{name, line, col}`` -- attr/subscript stores on ``get_shared_*``
    #: results (fork-shared world objects).
    shared_writes: List[Dict] = field(default_factory=list)
    #: ``{name, line, col, suppressed}`` wall-clock reads.
    wallclock: List[Dict] = field(default_factory=list)
    #: ``{line, col, api, targets}`` -- hashing-API calls and the
    #: symbolic targets of calls nested in their argument expressions.
    hash_feeds: List[Dict] = field(default_factory=list)
    #: Returns a raw span record (``return span(...)`` or a variable
    #: holding one).
    returns_span: bool = False
    #: Symbolic targets whose return value this function returns --
    #: span-escape propagates through these.
    return_targets: List[List] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "name": self.name, "line": self.line, "end_line": self.end_line,
            "decorator_lines": self.decorator_lines, "params": self.params,
            "calls": [c.to_dict() for c in self.calls],
            "rng_sites": self.rng_sites,
            "global_writes": self.global_writes,
            "shared_writes": self.shared_writes,
            "wallclock": self.wallclock,
            "hash_feeds": self.hash_feeds,
            "returns_span": self.returns_span,
            "return_targets": self.return_targets,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FunctionFacts":
        return cls(
            name=data["name"], line=data["line"], end_line=data["end_line"],
            decorator_lines=list(data["decorator_lines"]),
            params=list(data["params"]),
            calls=[CallFact.from_dict(c) for c in data["calls"]],
            rng_sites=list(data["rng_sites"]),
            global_writes=list(data["global_writes"]),
            shared_writes=list(data["shared_writes"]),
            wallclock=list(data["wallclock"]),
            hash_feeds=list(data["hash_feeds"]),
            returns_span=bool(data["returns_span"]),
            return_targets=list(data["return_targets"]),
        )


@dataclass
class ClassFacts:
    """One top-level class: bases, annotated fields, methods."""

    name: str
    line: int
    #: Base-class specs: ``["local", name]`` or ``["dotted", name]``.
    bases: List[List] = field(default_factory=list)
    #: ``{field: {"annotation": source, "line": n}}`` from class-body
    #: ``AnnAssign`` (dataclass fields cross the pool boundary).
    fields: Dict[str, Dict] = field(default_factory=dict)
    #: ``{attr: typespec}`` from class-level hints and ``self.x = Ctor()``
    #: constructor assignments -- how ``self.x.m()`` binds.
    attr_types: Dict[str, List] = field(default_factory=dict)
    methods: Dict[str, FunctionFacts] = field(default_factory=dict)
    is_dataclass: bool = False

    def to_dict(self) -> Dict:
        return {
            "name": self.name, "line": self.line, "bases": self.bases,
            "fields": self.fields, "attr_types": self.attr_types,
            "methods": {k: m.to_dict() for k, m in self.methods.items()},
            "is_dataclass": self.is_dataclass,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ClassFacts":
        return cls(
            name=data["name"], line=data["line"],
            bases=[list(b) for b in data["bases"]],
            fields=dict(data["fields"]),
            attr_types={k: list(v) for k, v in data["attr_types"].items()},
            methods={
                k: FunctionFacts.from_dict(m)
                for k, m in data["methods"].items()
            },
            is_dataclass=bool(data["is_dataclass"]),
        )


@dataclass
class ModuleSummary:
    """The cacheable whole-module analysis record."""

    path: str
    module: str
    digest: str
    imports: Dict[str, str] = field(default_factory=dict)
    module_names: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    #: Names of functions/classes defined *inside* functions (pickle
    #: hazards when referenced from task payloads).
    local_defs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "path": self.path, "module": self.module, "digest": self.digest,
            "imports": self.imports, "module_names": self.module_names,
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "local_defs": self.local_defs,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ModuleSummary":
        return cls(
            path=data["path"], module=data["module"], digest=data["digest"],
            imports=dict(data["imports"]),
            module_names=list(data["module_names"]),
            functions={
                k: FunctionFacts.from_dict(f)
                for k, f in data["functions"].items()
            },
            classes={
                k: ClassFacts.from_dict(c) for k, c in data["classes"].items()
            },
            local_defs=list(data["local_defs"]),
        )


# --------------------------------------------------------------------- #
# Extraction
# --------------------------------------------------------------------- #


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``["base", "a", "b"]`` for a ``base.a.b`` chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _annotation_spec(
    node: Optional[ast.AST], module: ModuleSource
) -> Optional[List]:
    """A symbolic type spec for an annotation expression, if simple."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # Quoted forward reference: parse the string and recurse.
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        # Optional[T] / "T | None" carry the payload type in the slice;
        # for containers the element type does not drive dispatch.
        value = _attr_chain(node.value)
        if value and value[-1] == "Optional":
            return _annotation_spec(node.slice, module)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            spec = _annotation_spec(side, module)
            if spec is not None:
                return spec
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        resolved = module.imports.resolve(node)
        if resolved is not None:
            return ["dotted", resolved]
        if isinstance(node, ast.Name):
            return ["local", node.id]
    return None


class _FunctionExtractor:
    """Distils one function body into :class:`FunctionFacts`."""

    def __init__(
        self,
        node: ast.AST,
        qualname: str,
        module: ModuleSource,
        class_name: Optional[str],
        module_names: Set[str],
    ) -> None:
        self.node = node
        self.module = module
        self.class_name = class_name
        self.module_names = module_names
        args = node.args
        self.params = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        if args.vararg:
            self.params.append(args.vararg.arg)
        if args.kwarg:
            self.params.append(args.kwarg.arg)
        self.var_types: Dict[str, List] = {}
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            spec = _annotation_spec(a.annotation, module)
            if spec is not None:
                self.var_types[a.arg] = spec
        self.shared_vars: Set[str] = set()
        self.locals: Set[str] = set(self.params)
        self.tainted: Set[str] = {p for p in self.params if seedlike(p)}
        self.globals_declared: Set[str] = set()
        self.facts = FunctionFacts(
            name=qualname,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
            decorator_lines=[d.lineno for d in node.decorator_list],
            params=list(self.params),
        )
        self.with_ctx: Set[int] = set()
        self.returned_names: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    self.with_ctx.add(id(item.context_expr))

    # -- helpers ------------------------------------------------------- #

    def _resolve_dotted(self, node: ast.AST) -> Optional[str]:
        return self.module.imports.resolve(node)

    def target_spec(self, func: ast.AST) -> List:
        """The symbolic call target for a callee expression."""
        if isinstance(func, ast.Name):
            resolved = self.module.imports.names.get(func.id)
            if resolved is not None:
                return ["dotted", resolved]
            return ["local", func.id]
        if isinstance(func, ast.Attribute):
            resolved = self._resolve_dotted(func)
            if resolved is not None:
                return ["dotted", resolved]
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self.class_name is not None:
                    return ["self", self.class_name, func.attr]
                spec = self.var_types.get(base.id)
                if spec is not None:
                    return ["attr", spec, func.attr]
            return ["dyn", func.attr]
        return ["dyn", ""]

    def _expr_tainted(self, node: ast.AST) -> bool:
        """Whether a seed-ish source appears anywhere in ``node``."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                if sub.id in self.tainted or seedlike(sub.id):
                    return True
            elif isinstance(sub, ast.Attribute) and seedlike(sub.attr):
                return True
            elif isinstance(sub, ast.Call):
                resolved = self.module.imports.resolve_call(sub)
                if resolved is not None and (
                    resolved in _HASHING_APIS
                    or resolved.rsplit(".", 1)[-1] in _HASHING_TAILS
                ):
                    return True
        return False

    def _suppressed(self, line: int, *rule_ids: str) -> bool:
        rules = self.module.ignores.get(line, ...)
        if rules is ...:
            return False
        return rules is None or any(r in rules for r in rule_ids)

    def _is_store_on_module_name(self, target: ast.AST) -> Optional[Tuple[str, str]]:
        """(name, kind) when ``target`` writes through a module-level name."""
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        if node is target:
            # Plain ``name = ...`` only writes a module global under a
            # ``global`` declaration; otherwise it creates a local.
            if name in self.globals_declared:
                return name, "global"
            return None
        if name in self.shared_vars:
            return None  # reported as a shared write, not a global one
        if name in self.locals and name not in self.globals_declared:
            return None
        if name in self.globals_declared or name in self.module_names:
            return name, "module-attr"
        resolved = self.module.imports.names.get(name)
        if resolved is not None:
            chain = _attr_chain(target if isinstance(target, ast.Attribute) else node)
            dotted = ".".join([resolved] + (chain[1:] if chain else []))
            return dotted, "module-attr"
        return None

    # -- the walk ------------------------------------------------------ #

    def run(self) -> FunctionFacts:
        self._prescan()
        self._walk_statements(self.node.body)
        return self.facts

    def _bound_names(self, target: ast.AST, out: Set[str]) -> None:
        """Names *bound* by an assignment target -- not names merely
        written through (``cache[k] = v`` does not bind ``cache``)."""
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bound_names(element, out)
        elif isinstance(target, ast.Starred):
            self._bound_names(target.value, out)

    def _prescan(self) -> None:
        """Collect locals, ``global`` decls, and returned names first."""
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    self._bound_names(target, self.locals)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(sub.target, ast.Name):
                    self.locals.add(sub.target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                self._bound_names(sub.target, self.locals)
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                self._bound_names(sub.optional_vars, self.locals)
            elif isinstance(sub, ast.Return) and isinstance(sub.value, ast.Name):
                self.returned_names.add(sub.value.id)

    def _walk_statements(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        # One BFS walk per top-level statement handles arbitrarily nested
        # assignments, loops, and comprehensions in near-source order, so
        # taint introduced by an outer node is visible to inner calls.
        # Facts inside nested defs are attributed to this function: the
        # nested callee is invisible to the linker, and attributing its
        # body here over-approximates reachability (the safe direction).
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                self._note_assign(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None:
                    self._note_assign([node.target], node.value)
                spec = _annotation_spec(node.annotation, self.module)
                if spec is not None and isinstance(node.target, ast.Name):
                    self.var_types[node.target.id] = spec
            elif isinstance(node, ast.AugAssign):
                self._note_store(node.target)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._note_return(node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._note_loop_taint(node.target, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                # Taint the comprehension variables when the *outer* node
                # is seen: ast.walk is breadth-first, so the element
                # expression would otherwise be visited before its
                # generators.
                for gen in node.generators:
                    self._note_loop_taint(gen.target, gen.iter)
            elif isinstance(node, ast.Call):
                self._note_call(node)

    def _note_loop_taint(self, target: ast.AST, source: ast.AST) -> None:
        """Iterating a tainted source taints the loop variables."""
        if not self._expr_tainted(source):
            return
        for name_node in ast.walk(target):
            if isinstance(name_node, ast.Name):
                self.tainted.add(name_node.id)

    def _note_assign(self, targets: List[ast.AST], value: ast.AST) -> None:
        for target in targets:
            self._note_store(target)
        if not isinstance(value, ast.Call):
            if self._expr_tainted(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.tainted.add(target.id)
            return
        spec = self.target_spec(value.func)
        terminal = spec[-1] if spec and isinstance(spec[-1], str) else ""
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if terminal.rsplit(".", 1)[-1].startswith("get_shared_"):
                self.shared_vars.add(target.id)
            elif spec[0] in ("dotted", "local"):
                # ``v = Ctor(...)`` pins v's type for method binding.
                tail = terminal.rsplit(".", 1)[-1]
                if tail[:1].isupper():
                    self.var_types[target.id] = spec
            if self._expr_tainted(value):
                self.tainted.add(target.id)

    def _note_store(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._note_store(element)
            return
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name) and node.id in self.shared_vars and node is not target:
            self.facts.shared_writes.append({
                "name": node.id, "line": target.lineno, "col": target.col_offset,
            })
            return
        hit = self._is_store_on_module_name(target)
        if hit is not None:
            name, kind = hit
            self.facts.global_writes.append({
                "name": name, "line": target.lineno,
                "col": target.col_offset, "kind": kind,
            })

    def _note_return(self, value: ast.AST) -> None:
        if isinstance(value, ast.Call):
            resolved = self.module.imports.resolve_call(value)
            if resolved in _SPAN_FUNCS:
                self.facts.returns_span = True
            else:
                self.facts.return_targets.append(self.target_spec(value.func))
        elif isinstance(value, ast.Name):
            # ``rec = span(...); return rec`` -- handled in _note_call.
            pass

    def _note_call(self, call: ast.Call) -> None:
        resolved = self.module.imports.resolve_call(call)
        spec = self.target_spec(call.func)
        self.facts.calls.append(CallFact(
            line=call.lineno, col=call.col_offset, target=spec,
            in_with=id(call) in self.with_ctx,
        ))
        if resolved is not None:
            if resolved in _RNG_CONSTRUCTORS:
                seeded = bool(call.args or call.keywords)
                tainted = seeded and any(
                    self._expr_tainted(a)
                    for a in list(call.args) + [k.value for k in call.keywords]
                )
                self.facts.rng_sites.append({
                    "line": call.lineno, "col": call.col_offset,
                    "ctor": resolved, "seeded": seeded, "tainted": tainted,
                    "suppressed": self._suppressed(call.lineno, "rng-taint"),
                })
            if resolved in _WALLCLOCK:
                # Only a `wallclock-fingerprint` pragma blesses hashing
                # chains through this site; a plain `wall-clock` pragma
                # covers the per-file rule alone.
                self.facts.wallclock.append({
                    "name": resolved, "line": call.lineno,
                    "col": call.col_offset,
                    "suppressed": self._suppressed(
                        call.lineno, "wallclock-fingerprint"
                    ),
                })
            if (
                resolved in _HASHING_APIS
                or (
                    resolved.startswith("repro.")
                    and resolved.rsplit(".", 1)[-1] in _HASHING_TAILS
                )
            ):
                targets = [
                    self.target_spec(sub.func)
                    for arg in list(call.args) + [k.value for k in call.keywords]
                    for sub in ast.walk(arg)
                    if isinstance(sub, ast.Call)
                ]
                self.facts.hash_feeds.append({
                    "line": call.lineno, "col": call.col_offset,
                    "api": resolved.rsplit(".", 1)[-1], "targets": targets,
                })
            if resolved in _SPAN_FUNCS and not self.facts.returns_span:
                # ``rec = span(...); return rec`` escapes just like a
                # direct ``return span(...)``.
                parent_assign = self._assigned_name_of(call)
                if parent_assign is not None and parent_assign in self.returned_names:
                    self.facts.returns_span = True

    def _assigned_name_of(self, call: ast.Call) -> Optional[str]:
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Assign) and sub.value is call:
                if len(sub.targets) == 1 and isinstance(sub.targets[0], ast.Name):
                    return sub.targets[0].id
        return None


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module scope (without descending into defs)."""
    names: Set[str] = set()

    def visit(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, (ast.If, ast.Try)):
                visit(stmt.body)
                for handler in getattr(stmt, "handlers", []):
                    visit(handler.body)
                visit(stmt.orelse)
                visit(getattr(stmt, "finalbody", []))

    visit(tree.body)
    return names


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = _attr_chain(target)
        if chain and chain[-1] == "dataclass":
            return True
    return False


def extract_summary(module: ModuleSource, digest: str = "") -> ModuleSummary:
    """The whole-module analysis record for one parsed file."""
    tree = module.tree
    module_names = _module_level_names(tree)
    summary = ModuleSummary(
        path=module.path,
        module=module_name_for(Path(module.path)),
        digest=digest,
        imports=dict(module.imports.names),
        module_names=sorted(module_names),
    )

    def extract_function(
        node: ast.AST, qualname: str, class_name: Optional[str]
    ) -> FunctionFacts:
        return _FunctionExtractor(
            node, qualname, module, class_name, module_names
        ).run()

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[stmt.name] = extract_function(stmt, stmt.name, None)
        elif isinstance(stmt, ast.ClassDef):
            facts = ClassFacts(
                name=stmt.name,
                line=stmt.lineno,
                is_dataclass=_is_dataclass_decorated(stmt),
            )
            for base in stmt.bases:
                resolved = module.imports.resolve(base)
                if resolved is not None:
                    facts.bases.append(["dotted", resolved])
                elif isinstance(base, ast.Name):
                    facts.bases.append(["local", base.id])
            for item in stmt.body:
                if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    facts.fields[item.target.id] = {
                        "annotation": ast.unparse(item.annotation),
                        "line": item.lineno,
                    }
                    spec = _annotation_spec(item.annotation, module)
                    if spec is not None:
                        facts.attr_types[item.target.id] = spec
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{stmt.name}.{item.name}"
                    facts.methods[item.name] = extract_function(
                        item, qual, stmt.name
                    )
                    if item.name == "__init__":
                        _collect_ctor_attr_types(item, module, facts)
            summary.classes[stmt.name] = facts

    # Functions/classes defined inside functions: pickle hazards.
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    summary.local_defs.append(child.name)
    summary.local_defs = sorted(set(summary.local_defs))
    return summary


def _collect_ctor_attr_types(
    init: ast.AST, module: ModuleSource, facts: ClassFacts
) -> None:
    """``self.x = Ctor(...)`` assignments pin ``self.x``'s type."""
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
            continue
        resolved = module.imports.resolve_call(stmt.value)
        func = stmt.value.func
        spec: Optional[List] = None
        if resolved is not None and resolved.rsplit(".", 1)[-1][:1].isupper():
            spec = ["dotted", resolved]
        elif isinstance(func, ast.Name) and func.id[:1].isupper():
            spec = ["local", func.id]
        if spec is None:
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                facts.attr_types.setdefault(target.attr, spec)


# --------------------------------------------------------------------- #
# Linking
# --------------------------------------------------------------------- #


@dataclass
class FunctionNode:
    """One linked function: its facts plus resolved outgoing edges."""

    id: str  # "module:qualname"
    module: str
    path: str
    facts: FunctionFacts
    edges: List[str] = field(default_factory=list)

    @property
    def display(self) -> str:
        return f"{self.module}:{self.facts.name}"


class Program:
    """Linked whole-program view over a set of module summaries."""

    #: Re-export chasing depth cap (a.b -> a.b.c -> ...).
    _REEXPORT_DEPTH = 6

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self.by_path: Dict[str, ModuleSummary] = {
            s.path: s for s in summaries
        }
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassFacts] = {}  # "module:Cls"
        self._class_modules: Dict[str, str] = {}  # "module:Cls" -> module
        self._name_to_classes: Dict[str, List[str]] = {}
        self._name_to_functions: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, List[str]] = {}
        self._link()

    # -- construction -------------------------------------------------- #

    def _link(self) -> None:
        for summary in self.modules.values():
            for fname, facts in summary.functions.items():
                fid = f"{summary.module}:{fname}"
                self.functions[fid] = FunctionNode(
                    id=fid, module=summary.module, path=summary.path, facts=facts
                )
                self._name_to_functions.setdefault(fname, []).append(fid)
            for cname, cfacts in summary.classes.items():
                cid = f"{summary.module}:{cname}"
                self.classes[cid] = cfacts
                self._class_modules[cid] = summary.module
                self._name_to_classes.setdefault(cname, []).append(cid)
                for mname, mfacts in cfacts.methods.items():
                    fid = f"{summary.module}:{cname}.{mname}"
                    self.functions[fid] = FunctionNode(
                        id=fid, module=summary.module, path=summary.path,
                        facts=mfacts,
                    )
                    self._name_to_functions.setdefault(mname, []).append(fid)
        # Subclass map (transitive expansion happens in lookups).
        for cid, cfacts in sorted(self.classes.items()):
            for base in cfacts.bases:
                base_id = self.resolve_class_spec(
                    base, self._class_modules[cid]
                )
                if base_id is not None:
                    self._subclasses.setdefault(base_id, []).append(cid)
        # Resolve every call fact into edges.
        for node in self.functions.values():
            seen: Set[str] = set()
            for call in node.facts.calls:
                for fid in self.resolve_spec(call.target, node.module):
                    if fid not in seen:
                        seen.add(fid)
                        node.edges.append(fid)

    # -- name resolution ----------------------------------------------- #

    def resolve_dotted(self, dotted: str, depth: int = 0) -> List[str]:
        """Function ids a canonical dotted name can denote."""
        if depth > self._REEXPORT_DEPTH:
            return []
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.modules.get(module)
            if summary is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                name = rest[0]
                if name in summary.functions:
                    return [f"{module}:{name}"]
                if name in summary.classes:
                    return self._ctor_targets(f"{module}:{name}")
                if name in summary.imports:
                    return self.resolve_dotted(summary.imports[name], depth + 1)
                return []
            if len(rest) == 2:
                cls, method = rest
                if cls in summary.classes:
                    return self.lookup_method(f"{module}:{cls}", method)
                if cls in summary.imports:
                    return self.resolve_dotted(
                        f"{summary.imports[cls]}.{method}", depth + 1
                    )
            # Deeper chains only make sense through re-exports.
            if rest[0] in summary.imports:
                return self.resolve_dotted(
                    ".".join([summary.imports[rest[0]]] + rest[1:]), depth + 1
                )
            return []
        return []

    def resolve_class_spec(
        self, spec: Sequence, module: str
    ) -> Optional[str]:
        """Class id for a ``["dotted", d]`` / ``["local", n]`` type spec."""
        if not spec:
            return None
        kind = spec[0]
        if kind == "local":
            name = spec[1]
            cid = f"{module}:{name}"
            if cid in self.classes:
                return cid
            summary = self.modules.get(module)
            if summary is not None and name in summary.imports:
                return self._dotted_class(summary.imports[name])
            candidates = self._name_to_classes.get(name, [])
            return candidates[0] if len(candidates) == 1 else None
        if kind == "dotted":
            return self._dotted_class(spec[1])
        return None

    def _dotted_class(self, dotted: str, depth: int = 0) -> Optional[str]:
        if depth > self._REEXPORT_DEPTH:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.modules.get(module)
            if summary is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                if rest[0] in summary.classes:
                    return f"{module}:{rest[0]}"
                if rest[0] in summary.imports:
                    return self._dotted_class(summary.imports[rest[0]], depth + 1)
            return None
        # Fall back to a unique simple-name match (covers annotations
        # naming a class the module never imports at runtime).
        tail = parts[-1]
        candidates = self._name_to_classes.get(tail, [])
        return candidates[0] if len(candidates) == 1 else None

    def _ctor_targets(self, class_id: str) -> List[str]:
        """Calling a class runs ``__init__`` (its own or inherited)."""
        return self.lookup_method(class_id, "__init__", with_overrides=False)

    def subclasses_of(self, class_id: str) -> List[str]:
        """All transitive subclasses of ``class_id``."""
        out: List[str] = []
        queue = list(self._subclasses.get(class_id, []))
        seen: Set[str] = set()
        while queue:
            cid = queue.pop()
            if cid in seen:
                continue
            seen.add(cid)
            out.append(cid)
            queue.extend(self._subclasses.get(cid, []))
        return sorted(out)

    def lookup_method(
        self, class_id: str, method: str, with_overrides: bool = True
    ) -> List[str]:
        """Function ids ``obj.method()`` can bind to for ``obj: class_id``.

        The defining class (walking bases) contributes one target; with
        ``with_overrides`` every transitive subclass override joins it,
        because a base-typed receiver can hold any subclass instance --
        the conservative direction for reachability.
        """
        out: List[str] = []
        # Walk the class and its bases for the static definition.
        queue = [class_id]
        seen: Set[str] = set()
        while queue:
            cid = queue.pop(0)
            if cid in seen:
                continue
            seen.add(cid)
            cfacts = self.classes.get(cid)
            if cfacts is None:
                continue
            if method in cfacts.methods:
                out.append(f"{self._class_modules[cid]}:{cfacts.name}.{method}")
                break
            module = self._class_modules[cid]
            for base in cfacts.bases:
                base_id = self.resolve_class_spec(base, module)
                if base_id is not None:
                    queue.append(base_id)
        if with_overrides:
            for sub in self.subclasses_of(class_id):
                cfacts = self.classes[sub]
                if method in cfacts.methods:
                    fid = f"{self._class_modules[sub]}:{cfacts.name}.{method}"
                    if fid not in out:
                        out.append(fid)
        return out

    def resolve_spec(self, spec: Sequence, module: str) -> List[str]:
        """Function ids a symbolic call target can reach."""
        if not spec:
            return []
        kind = spec[0]
        if kind == "dotted":
            return self.resolve_dotted(spec[1])
        if kind == "local":
            summary = self.modules.get(module)
            if summary is None:
                return []
            name = spec[1]
            if name in summary.functions:
                return [f"{module}:{name}"]
            if name in summary.classes:
                return self._ctor_targets(f"{module}:{name}")
            return []
        if kind == "self":
            _, cls, method = spec
            return self.lookup_method(f"{module}:{cls}", method)
        if kind == "attr":
            _, typespec, method = spec
            class_id = self.resolve_class_spec(typespec, module)
            if class_id is None:
                return []
            return self.lookup_method(class_id, method)
        if kind == "dyn":
            # Conservative fallback on dynamic dispatch: bind only when
            # the method name is unambiguous project-wide.
            candidates = self._name_to_functions.get(spec[1], [])
            return list(candidates) if len(candidates) == 1 else []
        return []

    # -- queries -------------------------------------------------------- #

    def reachable(
        self, roots: Iterable[str]
    ) -> Dict[str, Optional[str]]:
        """BFS closure over call edges; value = parent id (None at roots)."""
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for nxt in self.functions[current].edges:
                if nxt not in parents:
                    parents[nxt] = current
                    queue.append(nxt)
        return parents

    def chain(
        self, parents: Dict[str, Optional[str]], fn_id: str, limit: int = 6
    ) -> List[str]:
        """Display names from a root down to ``fn_id``."""
        out: List[str] = []
        current: Optional[str] = fn_id
        while current is not None and len(out) < limit:
            out.append(self.functions[current].display)
            current = parents.get(current)
        return list(reversed(out))

    def task_classes(self) -> List[str]:
        """Class ids of ``EvalTask`` and every (transitive) subclass."""
        bases = [
            cid for cid, cfacts in sorted(self.classes.items())
            if cfacts.name == "EvalTask"
        ]
        out: List[str] = list(bases)
        for base in bases:
            out.extend(self.subclasses_of(base))
        return sorted(set(out))

    def class_module(self, class_id: str) -> str:
        return self._class_modules[class_id]

    def find_functions(self, name: str) -> List[str]:
        """Every function id whose terminal name is ``name``."""
        return sorted(self._name_to_functions.get(name, []))

    def importers_of(self, module: str) -> List[str]:
        """Modules whose imports resolve into ``module`` (direct only)."""
        out: List[str] = []
        for name, summary in self.modules.items():
            if name == module:
                continue
            for dotted in summary.imports.values():
                if dotted == module or dotted.startswith(module + "."):
                    out.append(name)
                    break
        return sorted(out)

    def reverse_dependency_closure(self, paths: Iterable[str]) -> Set[str]:
        """Paths of the given modules plus everything importing them.

        This is the re-check set for ``--changed-only``: a change in B
        can invalidate any interprocedural fact in a module that imports
        B, transitively.
        """
        wanted: Set[str] = set()
        queue: List[str] = []
        for path in paths:
            summary = self.by_path.get(path)
            if summary is None:
                wanted.add(path)  # unknown files stay in the check set
                continue
            if summary.path not in wanted:
                wanted.add(summary.path)
                queue.append(summary.module)
        seen_modules: Set[str] = set(queue)
        while queue:
            module = queue.pop(0)
            for importer in self.importers_of(module):
                if importer not in seen_modules:
                    seen_modules.add(importer)
                    wanted.add(self.modules[importer].path)
                    queue.append(importer)
        return wanted


def build_program(summaries: Sequence[ModuleSummary]) -> Program:
    """Link ``summaries`` into a queryable :class:`Program`."""
    return Program(summaries)
