"""SA-scheme: simple averaging, no unfair-rating detection.

The undefended baseline of Section V-A.  Against it, the optimal attack is
to submit the most extreme values allowed -- which is exactly what the
variance-bias analysis of Figure 3 shows (large-MP submissions sit at
large negative bias, any variance).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.aggregation.base import AggregationScheme, month_windows
from repro.types import RatingDataset

__all__ = ["SimpleAveragingScheme"]


class SimpleAveragingScheme(AggregationScheme):
    """Monthly score = arithmetic mean of that month's ratings."""

    name = "SA"

    def monthly_scores(
        self,
        dataset: RatingDataset,
        period_days: float = 30.0,
        start_day: float = 0.0,
        end_day: float = 90.0,
    ) -> Dict[str, np.ndarray]:
        windows = month_windows(start_day, end_day, period_days)
        scores: Dict[str, np.ndarray] = {}
        for product_id in dataset:
            stream = dataset[product_id]
            series = np.full(len(windows), np.nan)
            for i, (lo, hi) in enumerate(windows):
                window = stream.between(lo, hi)
                if len(window):
                    series[i] = window.values.mean()
            scores[product_id] = series
        return scores
