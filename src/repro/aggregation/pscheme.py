"""P-scheme: the paper's signal-based reliable rating aggregation system.

The four-step pipeline of Section IV-A:

1. **Raw rating analysis** -- the four detectors (MC, H/L-ARC, HC, ME) run
   over every product stream.
2. **Joint detection** -- Path 1 / Path 2 integration marks suspicious
   ratings (:class:`~repro.detectors.integration.JointDetector`).
3. **Trust manager** -- Procedure 1 converts per-epoch suspicious counts
   into per-rater beta trust (:class:`~repro.trust.manager.TrustManager`);
   epochs coincide with the monthly score periods.
4. **Filter + aggregation** -- highly suspicious ratings (marked suspicious
   *and* from a rater whose trust fell below the filter threshold) are
   removed; the remaining ratings are combined by the trust-weighted
   average of Eq. 7, under which raters at or below neutral trust (0.5)
   carry no weight.

An optional second pass (``two_pass=True``) re-runs detection with the
first pass's trust feeding the trust-moderated MC segment rule (Section
IV-B.3 condition 2), then recomputes trust -- capturing the feedback loop
between detection and trust at roughly double the cost.

Detection on a given stream is independent of the rest of the dataset, so
per-stream detection reports are cached by content fingerprint; evaluating
hundreds of challenge submissions against the same fair world only pays
for the attacked products.  Whether that claim holds in practice is
observable: both caches report hits/misses/evictions into the active
metrics registry (``pscheme.report_cache.*``, ``pscheme.scores_cache.*``)
and each pipeline stage is timed under
``span.pscheme.monthly_scores.{detect,trust,aggregate}.seconds``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.aggregation.base import AggregationScheme, dataset_fingerprint, month_windows
from repro.aggregation.weighted import trust_weighted_average
from repro.detectors.base import DetectorConfig
from repro.detectors.integration import JointDetector
from repro.errors import ValidationError
from repro.obs import get_logger, span
from repro.obs.registry import MetricsRegistry, get_registry
from repro.trust.manager import TrustManager
from repro.types import RatingDataset, RatingStream

__all__ = ["PSchemeConfig", "PScheme"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class PSchemeConfig:
    """Tunables of the P-scheme.

    Attributes
    ----------
    detector:
        Detection-stage configuration (windows, thresholds).
    initial_trust:
        Trust assigned to unseen raters (paper: 0.5).
    filter_trust_threshold:
        "Highly suspicious" filter: a rating is dropped when it is marked
        suspicious and its rater's trust is below this value.  Suspicious
        ratings from better-trusted raters stay in (they are probably the
        fair collateral of an imprecise interval) and are merely
        down-weighted by Eq. 7.
    two_pass:
        Re-run detection with first-pass trust (see module docstring).
    forgetting_factor:
        Evidence fading per epoch (1.0 = the paper's Procedure 1, no
        fading; below 1 lets trust recover -- see
        :class:`~repro.trust.manager.TrustManager`).
    use_trust_weights:
        Ablation switch.  ``True`` (default) runs the full pipeline:
        trust-moderated filtering plus Eq. 7 weighting.  ``False`` reduces
        the scheme to *filter-only*: every rating the detectors marked is
        dropped and the survivors are averaged without trust -- isolating
        how much the trust layer contributes beyond raw detection.
    cache_size:
        Number of ``monthly_scores`` results kept (FIFO).
    """

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    initial_trust: float = 0.5
    filter_trust_threshold: float = 0.4
    two_pass: bool = False
    use_trust_weights: bool = True
    forgetting_factor: float = 1.0
    cache_size: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_trust < 1.0:
            raise ValidationError(
                f"initial_trust must be in (0, 1), got {self.initial_trust}"
            )
        if not 0.0 < self.forgetting_factor <= 1.0:
            raise ValidationError(
                f"forgetting_factor must be in (0, 1], got {self.forgetting_factor}"
            )
        if not 0.0 <= self.filter_trust_threshold <= 1.0:
            raise ValidationError(
                "filter_trust_threshold must be in [0, 1], got "
                f"{self.filter_trust_threshold}"
            )
        if self.cache_size < 0:
            raise ValidationError(f"cache_size must be >= 0, got {self.cache_size}")


def _stream_key(stream: RatingStream):
    return (
        stream.product_id,
        len(stream),
        hash(stream.times.tobytes()),
        hash(stream.values.tobytes()),
        hash(stream.rater_ids),
    )


class PScheme(AggregationScheme):
    """The proposed reliable rating aggregation system.

    ``registry`` injects a metrics sink for this scheme's telemetry
    (cache counters, stage timings); ``None`` uses the globally active
    registry at call time.  The injected registry also feeds the embedded
    :class:`JointDetector` and :class:`TrustManager`.
    """

    name = "P"

    def __init__(
        self,
        config: Optional[PSchemeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else PSchemeConfig()
        self._registry = registry
        self.detector = JointDetector(self.config.detector, registry=registry)
        self._report_cache: "OrderedDict" = OrderedDict()
        self._scores_cache: "OrderedDict" = OrderedDict()

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink in effect (injected, else the global one)."""
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------ #
    # Detection with per-stream caching
    # ------------------------------------------------------------------ #

    def detect(
        self,
        dataset: RatingDataset,
        trust_lookup: Optional[Callable[[str], float]] = None,
    ) -> Dict[str, np.ndarray]:
        """Suspicious-rating masks per product.

        Results are cached per stream only for the trust-free pass (with a
        trust lookup the result depends on dataset-wide state).  Returned
        arrays are write-protected: cached masks are shared across calls,
        so a mutating caller would otherwise corrupt every later cache
        hit.  Copy before modifying.

        Detection itself runs through the joint detector's batched fast
        path: on the trust-free pass only the cache-missing streams are
        re-bundled into a dataset and analyzed together, so a warm cache
        pays one batched pass over the attacked products only.
        """
        registry = self.registry
        if trust_lookup is not None:
            reports = self.detector.analyze_batch(dataset, trust_lookup)
            marks: Dict[str, np.ndarray] = {}
            for product_id in dataset:
                mask = reports[product_id].suspicious
                mask.setflags(write=False)
                marks[product_id] = mask
            return marks
        marks = {}
        keys: Dict[str, tuple] = {}
        missing = []
        for product_id in dataset:
            stream = dataset[product_id]
            key = _stream_key(stream)
            keys[product_id] = key
            cached = self._report_cache.get(key)
            if cached is None:
                registry.inc("pscheme.report_cache.misses")
                missing.append(stream)
            else:
                registry.inc("pscheme.report_cache.hits")
                marks[product_id] = cached
        if missing:
            reports = self.detector.analyze_batch(RatingDataset(missing))
            for stream in missing:
                mask = reports[stream.product_id].suspicious
                mask.setflags(write=False)
                self._report_cache[keys[stream.product_id]] = mask
                while len(self._report_cache) > max(4 * self.config.cache_size, 64):
                    self._report_cache.popitem(last=False)
                    registry.inc("pscheme.report_cache.evictions")
                marks[stream.product_id] = mask
        return {product_id: marks[product_id] for product_id in dataset}

    # ------------------------------------------------------------------ #

    def _trust_and_marks(self, dataset: RatingDataset, epoch_times, registry):
        """Run detection + Procedure 1, optionally with the feedback pass."""
        with span("detect", registry):
            marks = self.detect(dataset)
        manager = TrustManager(
            self.config.initial_trust, self.config.forgetting_factor,
            registry=registry,
        )
        with span("trust", registry):
            snapshots = manager.run(dataset, marks, epoch_times)
        if self.config.two_pass:
            final = snapshots[-1]
            lookup = lambda rid: final.value(rid, self.config.initial_trust)  # noqa: E731
            with span("detect", registry):
                marks = self.detect(dataset, trust_lookup=lookup)
            manager = TrustManager(
                self.config.initial_trust, self.config.forgetting_factor,
                registry=registry,
            )
            with span("trust", registry):
                snapshots = manager.run(dataset, marks, epoch_times)
        return marks, snapshots

    def monthly_scores(
        self,
        dataset: RatingDataset,
        period_days: float = 30.0,
        start_day: float = 0.0,
        end_day: float = 90.0,
    ) -> Dict[str, np.ndarray]:
        registry = self.registry
        cache_key = (
            dataset_fingerprint(dataset),
            float(period_days),
            float(start_day),
            float(end_day),
        )
        if self.config.cache_size and cache_key in self._scores_cache:
            registry.inc("pscheme.scores_cache.hits")
            logger.debug("scores cache hit (%d products)", len(dataset))
            return {k: v.copy() for k, v in self._scores_cache[cache_key].items()}
        registry.inc("pscheme.scores_cache.misses")
        with span("pscheme.monthly_scores", registry):
            windows = month_windows(start_day, end_day, period_days)
            epoch_times = [hi for _, hi in windows]
            marks, snapshots = self._trust_and_marks(
                dataset, epoch_times, registry
            )
            with span("aggregate", registry):
                scores = self._aggregate(dataset, windows, marks, snapshots)
        if self.config.cache_size:
            self._scores_cache[cache_key] = {k: v.copy() for k, v in scores.items()}
            while len(self._scores_cache) > self.config.cache_size:
                self._scores_cache.popitem(last=False)
                registry.inc("pscheme.scores_cache.evictions")
        return scores

    def _aggregate(self, dataset, windows, marks, snapshots):
        """Step 4: filter highly suspicious ratings, combine per Eq. 7."""
        scores: Dict[str, np.ndarray] = {}
        threshold = self.config.filter_trust_threshold
        for product_id in dataset:
            stream = dataset[product_id]
            mask = marks[product_id]
            series = np.full(len(windows), np.nan)
            for i, (lo, hi) in enumerate(windows):
                in_window = (stream.times >= lo) & (stream.times < hi)
                if not in_window.any():
                    continue
                idx = np.nonzero(in_window)[0]
                suspicious = mask[idx]
                if not self.config.use_trust_weights:
                    # Filter-only ablation: drop marked ratings, plain mean.
                    keep = ~suspicious
                    if not keep.any():
                        continue
                    series[i] = float(stream.values[idx][keep].mean())
                    continue
                snapshot = snapshots[i]
                trusts = np.asarray(
                    [
                        snapshot.value(stream.rater_ids[j], self.config.initial_trust)
                        for j in idx
                    ]
                )
                keep = ~(suspicious & (trusts < threshold))
                if not keep.any():
                    continue
                series[i] = trust_weighted_average(
                    stream.values[idx][keep], trusts[keep]
                )
            scores[product_id] = series
        return scores
