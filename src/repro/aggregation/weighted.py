"""Trust-weighted rating aggregation -- paper Eq. 7.

Given ratings ``r_i`` from raters with trust ``T_i``, the aggregate is

    R_ag = sum_i r_i * max(T_i - 0.5, 0) / sum_i max(T_i - 0.5, 0)

so raters at or below the neutral trust 0.5 contribute nothing.  When every
weight is zero (all raters neutral or distrusted -- e.g. the very first
epoch, before any trust is established), the paper's formula is undefined;
we fall back to the plain mean, which equals the formula's limit when all
raters share the same trust.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EmptyDataError, ValidationError

__all__ = ["trust_weighted_average"]


def trust_weighted_average(
    values: Sequence[float], trusts: Sequence[float], neutral: float = 0.5
) -> float:
    """Eq. 7 aggregation of ``values`` with rater ``trusts``.

    ``neutral`` is the trust level that carries zero weight (0.5 in the
    paper).  Raises :class:`~repro.errors.EmptyDataError` for empty input.
    """
    values_arr = np.asarray(values, dtype=float)
    trusts_arr = np.asarray(trusts, dtype=float)
    if values_arr.size == 0:
        raise EmptyDataError("cannot aggregate zero ratings")
    if values_arr.size != trusts_arr.size:
        raise ValidationError(
            f"{values_arr.size} values but {trusts_arr.size} trust values"
        )
    if np.any(trusts_arr < 0) or np.any(trusts_arr > 1):
        raise ValidationError("trust values must lie in [0, 1]")
    weights = np.maximum(trusts_arr - neutral, 0.0)
    total = float(weights.sum())
    if total <= 0.0:
        return float(values_arr.mean())
    return float((values_arr * weights).sum() / total)
