"""BF-scheme: beta-function based majority-rule filtering.

The representative majority-rule defense from Whitby, Jøsang and Indulska
("Filtering out unfair ratings in Bayesian reputation systems"), as used
for comparison in the paper's Section V-A:

1. Each rating ``r`` on the 0..5 scale is normalized to ``x = r / 5`` and
   viewed as beta evidence ``Beta(1 + x, 2 - x)`` held by its rater.
2. Within each monthly window, the majority opinion is the mean normalized
   value of the window's ratings.  A rating is filtered out when the
   majority opinion falls outside the ``[q, 1 - q]`` quantile range of
   that rating's individual beta distribution -- i.e. the rater's opinion
   is statistically incompatible with the majority.
3. Rater trust accumulates over months as ``(S_i + 1) / (S_i + F_i + 2)``
   where ``F_i`` counts the rater's filtered ratings (Section V-A).  The
   monthly score is the plain mean of the surviving ratings from raters
   whose trust has not collapsed below the exclusion threshold.

Two deliberate properties, matching the paper's findings about BF:

- The majority estimate is the **mean**, so a colluding block drags the
  majority toward itself and shields all but the most extreme unfair
  ratings.  This is exactly why the paper observes that BF "can only
  detect the unfair ratings with large bias and very small variance".
- Filtering is **single-pass** by default (``max_iterations=1``): the
  compatibility bounds are computed once from the initial majority.
  Iterating the filter lets a boosting block cascade -- each removal of a
  harsh-but-honest rating raises the majority, exposing the next honest
  rating -- which *amplifies* boost attacks instead of stopping them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np
from scipy.stats import beta as beta_dist

from repro.aggregation.base import AggregationScheme, month_windows
from repro.errors import ValidationError
from repro.trust.beta import BetaEvidence
from repro.types import DEFAULT_SCALE, RatingDataset, RatingScale, RatingStream

__all__ = ["BetaFilterConfig", "BetaFilterScheme"]


@dataclass(frozen=True)
class BetaFilterConfig:
    """Tunables of the BF-scheme.

    Attributes
    ----------
    quantile:
        The ``q`` of the ``[q, 1 - q]`` compatibility interval.  Larger
        values filter more aggressively.
    max_iterations:
        Rounds of the remove-and-retest loop.  1 (default) computes the
        bounds once; see the module docstring for why iterating is risky.
    exclude_trust_threshold:
        Raters whose cumulative trust falls below this are excluded from
        aggregation even when their current rating survives the filter.
    scale:
        Rating scale used for normalisation.
    """

    quantile: float = 0.15
    max_iterations: int = 1
    exclude_trust_threshold: float = 0.25
    scale: RatingScale = field(default_factory=lambda: DEFAULT_SCALE)

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 0.5:
            raise ValidationError(
                f"quantile must be in (0, 0.5), got {self.quantile}"
            )
        if self.max_iterations < 1:
            raise ValidationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if not 0.0 <= self.exclude_trust_threshold <= 1.0:
            raise ValidationError(
                "exclude_trust_threshold must be in [0, 1], got "
                f"{self.exclude_trust_threshold}"
            )


class BetaFilterScheme(AggregationScheme):
    """Majority-rule beta filtering with cumulative beta trust."""

    name = "BF"

    def __init__(self, config: BetaFilterConfig = BetaFilterConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------ #

    def _normalize(self, values: np.ndarray) -> np.ndarray:
        scale = self.config.scale
        return (np.asarray(values, dtype=float) - scale.minimum) / scale.width

    def filter_window(self, values: np.ndarray) -> np.ndarray:
        """Return the keep-mask after majority filtering of one window.

        A window with a single rating is never filtered (there is no
        majority to conflict with).
        """
        x = self._normalize(values)
        n = x.size
        keep = np.ones(n, dtype=bool)
        if n <= 1:
            return keep
        q = self.config.quantile
        alpha = 1.0 + x
        beta_param = 2.0 - x
        lower = beta_dist.ppf(q, alpha, beta_param)
        upper = beta_dist.ppf(1.0 - q, alpha, beta_param)
        for _ in range(self.config.max_iterations):
            included = x[keep]
            if included.size == 0:
                break
            majority = float(included.mean())
            incompatible = keep & ((majority < lower) | (majority > upper))
            if not incompatible.any():
                break
            # Never remove the last rating: a majority of zero is undefined.
            if int(keep.sum()) - int(incompatible.sum()) < 1:
                break
            keep &= ~incompatible
        return keep

    # ------------------------------------------------------------------ #

    def monthly_scores(
        self,
        dataset: RatingDataset,
        period_days: float = 30.0,
        start_day: float = 0.0,
        end_day: float = 90.0,
    ) -> Dict[str, np.ndarray]:
        windows = month_windows(start_day, end_day, period_days)
        evidence: Dict[str, BetaEvidence] = {}
        # Work month-by-month across ALL products so trust accumulates
        # globally (a rater filtered on one product is distrusted on all).
        per_window_masks: Dict[str, List[np.ndarray]] = {}
        window_streams: Dict[str, List[RatingStream]] = {}
        for product_id in dataset:
            stream = dataset[product_id]
            window_streams[product_id] = self._windowed_streams(stream, windows)
            per_window_masks[product_id] = []
        scores: Dict[str, np.ndarray] = {
            product_id: np.full(len(windows), np.nan) for product_id in dataset
        }
        for w_index in range(len(windows)):
            # Phase 1: filter every product's window, update evidence.
            for product_id in dataset:
                window = window_streams[product_id][w_index]
                if len(window) == 0:
                    per_window_masks[product_id].append(np.zeros(0, dtype=bool))
                    continue
                keep = self.filter_window(window.values)
                per_window_masks[product_id].append(keep)
                for rater_id, kept in zip(window.rater_ids, keep):
                    acc = evidence.setdefault(rater_id, BetaEvidence())
                    acc.record(good=1.0 if kept else 0.0, bad=0.0 if kept else 1.0)
            # Phase 2: aggregate the survivors of trusted-enough raters.
            threshold = self.config.exclude_trust_threshold
            for product_id in dataset:
                window = window_streams[product_id][w_index]
                keep = per_window_masks[product_id][w_index]
                if len(window) == 0 or not keep.any():
                    continue
                trusted = np.asarray(
                    [
                        evidence.get(rater_id, BetaEvidence()).trust >= threshold
                        for rater_id in window.rater_ids
                    ]
                )
                usable = keep & trusted
                if not usable.any():
                    continue
                scores[product_id][w_index] = float(window.values[usable].mean())
        return scores
