"""Aggregation scheme interface and shared window plumbing."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

import numpy as np

from repro.marketplace.mp import month_edges
from repro.types import RatingDataset, RatingStream

__all__ = ["month_windows", "AggregationScheme"]


def month_windows(
    start_day: float, end_day: float, period_days: float = 30.0
) -> List[Tuple[float, float]]:
    """Half-open ``[start, stop)`` period windows covering the time span."""
    edges = month_edges(start_day, end_day, period_days)
    return [(float(edges[i]), float(edges[i + 1])) for i in range(edges.size - 1)]


def dataset_fingerprint(dataset: RatingDataset) -> Tuple:
    """A cheap, content-based cache key for a dataset.

    Streams are immutable snapshots (their arrays are write-protected), so
    hashing the raw bytes of times and values identifies the data reliably.
    Rater identities matter to trust-based schemes, so they are included.
    """
    parts = []
    for product_id in dataset:
        stream = dataset[product_id]
        parts.append(
            (
                product_id,
                len(stream),
                hash(stream.times.tobytes()),
                hash(stream.values.tobytes()),
                hash(stream.rater_ids),
            )
        )
    return tuple(parts)


class AggregationScheme(ABC):
    """Base class: turns a dataset into per-product monthly score series.

    Subclasses must set :attr:`name` and implement
    :meth:`monthly_scores`.  Scores use NaN for months with no publishable
    value (no ratings, or everything filtered); the MP metric treats those
    months as contributing zero manipulation.
    """

    name: str = "abstract"

    @abstractmethod
    def monthly_scores(
        self,
        dataset: RatingDataset,
        period_days: float = 30.0,
        start_day: float = 0.0,
        end_day: float = 90.0,
    ) -> Dict[str, np.ndarray]:
        """Per-product arrays of one aggregated score per period."""

    # Convenience used by examples and tests ---------------------------- #

    def final_scores(
        self,
        dataset: RatingDataset,
        period_days: float = 30.0,
        start_day: float = 0.0,
        end_day: float = 90.0,
    ) -> Dict[str, float]:
        """The last non-NaN monthly score per product (NaN if none)."""
        out: Dict[str, float] = {}
        for product_id, series in self.monthly_scores(
            dataset, period_days, start_day, end_day
        ).items():
            finite = series[np.isfinite(series)]
            out[product_id] = float(finite[-1]) if finite.size else float("nan")
        return out

    @staticmethod
    def _windowed_streams(
        stream: RatingStream, windows: List[Tuple[float, float]]
    ) -> List[RatingStream]:
        """The stream cut into the per-period sub-streams."""
        return [stream.between(lo, hi) for lo, hi in windows]
