"""Rating aggregation schemes.

The three defense configurations evaluated in the paper (Section V-A):

- :class:`~repro.aggregation.simple.SimpleAveragingScheme` (**SA**) --
  plain averaging, no unfair-rating defense.
- :class:`~repro.aggregation.beta_filter.BetaFilterScheme` (**BF**) --
  the representative majority-rule defense: Whitby-Jøsang beta-function
  filtering plus beta trust.
- :class:`~repro.aggregation.pscheme.PScheme` (**P**) -- the paper's
  proposed signal-based system: joint detectors, trust manager, rating
  filter, and trust-weighted aggregation (Eq. 7).

All schemes implement
``monthly_scores(dataset, period_days, start_day, end_day)`` and plug into
the MP metric (:mod:`repro.marketplace.mp`).
"""

from repro.aggregation.base import AggregationScheme, month_windows
from repro.aggregation.beta_filter import BetaFilterConfig, BetaFilterScheme
from repro.aggregation.pscheme import PScheme, PSchemeConfig
from repro.aggregation.simple import SimpleAveragingScheme
from repro.aggregation.weighted import trust_weighted_average

__all__ = [
    "AggregationScheme",
    "month_windows",
    "BetaFilterConfig",
    "BetaFilterScheme",
    "PScheme",
    "PSchemeConfig",
    "SimpleAveragingScheme",
    "trust_weighted_average",
]
