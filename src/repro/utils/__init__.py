"""Shared low-level helpers used across the :mod:`repro` library.

The submodules are deliberately small and dependency-free (numpy only):

- :mod:`repro.utils.validation` -- argument checking helpers that raise
  :class:`repro.errors.ValidationError` with readable messages.
- :mod:`repro.utils.rng` -- seeding helpers producing
  :class:`numpy.random.Generator` instances.
- :mod:`repro.utils.windows` -- sliding-window index construction, including
  the shrinking edge windows used by the paper's indicator curves.
- :mod:`repro.utils.stats` -- tiny numeric helpers (safe logs, clipping to
  the rating scale, descriptive statistics).
"""

from repro.utils.rng import resolve_rng, spawn_rng
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.windows import centered_windows, shrink_to_bounds, sliding_window_indices

__all__ = [
    "resolve_rng",
    "spawn_rng",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "centered_windows",
    "shrink_to_bounds",
    "sliding_window_indices",
]
