"""Argument validation helpers.

Every helper raises :class:`repro.errors.ValidationError` on failure and
returns the (possibly coerced) value on success, so they can be used inline::

    self.window = check_positive_int(window, "window")
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ValidationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_positive_int",
    "check_probability",
    "check_in_range",
]


def _check_finite_number(value: float, name: str) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a real number, got {value!r}") from None
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Return ``value`` as a float, requiring ``value > 0``."""
    value = _check_finite_number(value, name)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` as a float, requiring ``value >= 0``."""
    value = _check_finite_number(value, name)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Return ``value`` as an int, requiring ``value >= minimum``.

    Accepts floats only when they are integral (e.g. ``3.0``), so silent
    truncation never happens.
    """
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got a bool")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValidationError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    if not isinstance(value, int):
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            raise ValidationError(f"{name} must be an integer, got {value!r}") from None
        if as_int != value:
            raise ValidationError(f"{name} must be an integer, got {value!r}")
        value = as_int
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` as a float, requiring ``0 <= value <= 1``."""
    value = _check_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Return ``value`` as a float, requiring it to lie in the given interval.

    ``low``/``high`` may be ``None`` for a half-open requirement.
    """
    value = _check_finite_number(value, name)
    if low is not None:
        if low_inclusive and value < low:
            raise ValidationError(f"{name} must be >= {low}, got {value!r}")
        if not low_inclusive and value <= low:
            raise ValidationError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValidationError(f"{name} must be <= {high}, got {value!r}")
        if not high_inclusive and value >= high:
            raise ValidationError(f"{name} must be < {high}, got {value!r}")
    return value
