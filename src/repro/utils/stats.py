"""Small numeric helpers shared by the detectors and generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EmptyDataError

__all__ = [
    "safe_xlogx",
    "clip_to_scale",
    "DescriptiveStats",
    "describe",
    "running_mean",
]


def safe_xlogx(x: np.ndarray) -> np.ndarray:
    """Return ``x * log(x)`` elementwise with the convention ``0·log 0 = 0``.

    Used by the Poisson GLRT statistic, where empty half-windows yield zero
    estimated arrival rates.
    """
    x = np.asarray(x, dtype=float)
    out = np.zeros_like(x)
    positive = x > 0
    out[positive] = x[positive] * np.log(x[positive])
    return out


def clip_to_scale(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clip rating values into the rating scale ``[low, high]``."""
    return np.clip(np.asarray(values, dtype=float), low, high)


@dataclass(frozen=True)
class DescriptiveStats:
    """Mean / standard deviation / extrema summary of a sample.

    ``std`` is the population standard deviation (``ddof=0``) to match the
    paper's usage, where the "variance" of an unfair-rating value set is a
    property of the submitted set itself rather than an estimator of a
    hypothetical larger population.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def describe(values: Sequence[float]) -> DescriptiveStats:
    """Return :class:`DescriptiveStats` of ``values`` (must be non-empty)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise EmptyDataError("cannot describe an empty sample")
    return DescriptiveStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def running_mean(values: Sequence[float], width: int) -> np.ndarray:
    """Centered running mean with shrinking edge windows.

    Mirrors the edge behaviour of the indicator curves: positions near the
    boundary average over however much of the window fits.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr.copy()
    if width < 1:
        raise EmptyDataError("width must be >= 1")
    half = max(width // 2, 1)
    out = np.empty_like(arr)
    n = arr.size
    cumsum = np.concatenate(([0.0], np.cumsum(arr)))
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = (cumsum[hi] - cumsum[lo]) / (hi - lo)
    return out
