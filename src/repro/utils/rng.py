"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None`` (non-deterministic), an integer, or an existing
:class:`numpy.random.Generator`. :func:`resolve_rng` normalises all three
into a ``Generator`` so downstream code never branches on the seed type.

:func:`spawn_rng` derives independent child generators from a parent, which
keeps parallel components (e.g. the per-participant attack simulators in the
synthetic challenge population) statistically independent while remaining
reproducible from a single root seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "resolve_rng", "spawn_rng"]

SeedLike = Union[None, int, np.random.Generator]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    - ``None``: fresh OS-entropy generator.
    - ``int``: deterministic generator seeded with that value.
    - ``Generator``: returned unchanged (shared state, by design).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int = 1) -> list:
    """Derive ``count`` statistically independent child generators.

    The children are produced by jumping the parent's bit generator via
    ``spawn`` when available, falling back to seeding from the parent's
    own stream otherwise (older numpy).
    """
    if count < 1:
        return []
    try:
        seeds = rng.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
        return [np.random.default_rng(s) for s in seeds]
    except AttributeError:
        return [np.random.default_rng(int(rng.integers(0, 2**63 - 1))) for _ in range(count)]
