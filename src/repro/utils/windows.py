"""Sliding-window index construction.

The paper's indicator curves (Sections IV-B.2 and IV-C.2) are built by
sliding a window of half-width ``W`` over the rating sequence and computing
a test statistic at the window's centre.  Near the sequence boundaries the
full window does not fit; the paper prescribes using *a smaller window size*
there rather than dropping those positions.  :func:`centered_windows`
implements exactly that: for each centre ``k`` it returns the largest
symmetric window around ``k`` that fits inside ``[0, n)``, capped at the
nominal half-width.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.utils.validation import check_positive_int

__all__ = ["sliding_window_indices", "centered_windows", "shrink_to_bounds"]


def sliding_window_indices(n: int, width: int, step: int = 1) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` half-open index pairs for full windows.

    Only windows that fully fit in ``[0, n)`` are yielded.  ``width`` is the
    total window length.  Yields nothing when ``n < width``.
    """
    width = check_positive_int(width, "width")
    step = check_positive_int(step, "step")
    if n < width:
        return
    for start in range(0, n - width + 1, step):
        yield (start, start + width)


def shrink_to_bounds(center: int, half_width: int, n: int) -> Tuple[int, int]:
    """Return the largest symmetric half-open window around ``center``.

    The window is ``[center - h, center + h)`` with ``h`` as large as
    possible subject to ``h <= half_width`` and the window fitting inside
    ``[0, n)``.  At the very edges the window degenerates to a width-2
    window when possible, and to an empty window for ``n < 2``.

    The "centre" convention matches the paper's curves: the first half of
    the window is ``[center - h, center)`` and the second half is
    ``[center, center + h)``, so the tested change point sits *between*
    sample ``center - 1`` and sample ``center``.
    """
    half_width = check_positive_int(half_width, "half_width")
    if n < 2:
        return (0, 0)
    if not 1 <= center <= n - 1:
        # A change point needs at least one sample on each side.
        return (0, 0)
    h = min(half_width, center, n - center)
    return (center - h, center + h)


def centered_windows(n: int, half_width: int) -> List[Tuple[int, int, int]]:
    """Return ``(center, start, stop)`` for every valid change-point centre.

    Centres run over ``1 .. n-1`` (a change point must have at least one
    sample on each side).  Windows shrink symmetrically near the edges per
    :func:`shrink_to_bounds`.
    """
    half_width = check_positive_int(half_width, "half_width")
    out: List[Tuple[int, int, int]] = []
    for center in range(1, max(n, 1)):
        start, stop = shrink_to_bounds(center, half_width, n)
        if stop - start >= 2:
            out.append((center, start, stop))
    return out
