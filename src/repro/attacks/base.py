"""Attack submission container.

One :class:`AttackSubmission` is the unit a challenge participant submits:
for each attacked product, a stream of unfair ratings (when each biased
rater rates and with what value), plus metadata describing how the
submission was produced.  All ratings carry ``unfair=True`` ground truth,
mirroring the rating challenge where injected ratings are known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.errors import AttackSpecError
from repro.types import RatingStream

__all__ = ["ProductTarget", "AttackSubmission", "build_attack_stream"]


@dataclass(frozen=True)
class ProductTarget:
    """One attacked product and the attack's direction.

    ``direction`` is ``+1`` for boosting (push the score up) and ``-1``
    for downgrading (push it down).
    """

    product_id: str
    direction: int

    def __post_init__(self) -> None:
        if self.direction not in (-1, 1):
            raise AttackSpecError(
                f"direction must be +1 (boost) or -1 (downgrade), got {self.direction}"
            )


def build_attack_stream(
    product_id: str,
    times: np.ndarray,
    values: np.ndarray,
    rater_ids: Iterable[str],
) -> RatingStream:
    """Build an unfair :class:`RatingStream` (all rows ``unfair=True``)."""
    times = np.asarray(times, dtype=float)
    return RatingStream(
        product_id,
        times,
        np.asarray(values, dtype=float),
        list(rater_ids),
        unfair=np.ones(times.size, dtype=bool),
    )


@dataclass(frozen=True)
class AttackSubmission:
    """A complete challenge entry.

    Attributes
    ----------
    submission_id:
        Identifier for leaderboards and analysis plots.
    streams:
        ``{product_id: unfair RatingStream}`` -- the injected ratings.
    strategy:
        Human-readable strategy name (``"ballot_stuffing"``,
        ``"generator"`` ...).
    params:
        Free-form parameter record (bias, variance, arrival model, ...)
        used by the analysis modules.
    """

    submission_id: str
    streams: Mapping[str, RatingStream]
    strategy: str = "unknown"
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for product_id, stream in self.streams.items():
            if stream.product_id != product_id:
                raise AttackSpecError(
                    f"stream keyed {product_id!r} is for product "
                    f"{stream.product_id!r}"
                )
            if len(stream) and not bool(stream.unfair.all()):
                raise AttackSpecError(
                    f"attack stream for {product_id!r} contains ratings not "
                    "marked unfair"
                )

    # ------------------------------------------------------------------ #

    @property
    def product_ids(self) -> Tuple[str, ...]:
        """Attacked product ids (insertion order)."""
        return tuple(self.streams)

    def total_ratings(self) -> int:
        """Total number of injected unfair ratings."""
        return sum(len(s) for s in self.streams.values())

    def rater_ids(self) -> Tuple[str, ...]:
        """Sorted unique biased rater ids used by the submission."""
        seen = set()
        for stream in self.streams.values():
            seen.update(stream.rater_ids)
        return tuple(sorted(seen))

    def stream_for(self, product_id: str) -> Optional[RatingStream]:
        """The unfair stream for ``product_id``, or ``None``."""
        return self.streams.get(product_id)

    def as_dict(self) -> Dict[str, RatingStream]:
        """A plain dict copy of the streams mapping (for dataset merging)."""
        return dict(self.streams)

    def attack_duration(self, product_id: str) -> float:
        """Time between the first and last unfair rating for a product."""
        stream = self.streams[product_id]
        if len(stream) == 0:
            return 0.0
        first, last = stream.time_span()
        return last - first

    def average_rating_interval(self, product_id: str) -> float:
        """Attack duration divided by the number of unfair ratings.

        The Section V-C time-domain feature (Figure 6's horizontal axis).
        Zero when the product has no unfair ratings.
        """
        stream = self.streams[product_id]
        if len(stream) == 0:
            return 0.0
        return self.attack_duration(product_id) / len(stream)
