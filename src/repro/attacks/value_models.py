"""Unfair rating value-set generation -- paper Section V-B.

The paper identifies **bias** (mean of unfair ratings minus mean of fair
ratings) and **variance** of the unfair values as the two features that
determine attack strength.  The value-set generator therefore samples a
set of values whose sample mean and sample standard deviation hit a target
(bias, sigma) as exactly as the rating scale allows:

1. draw Gaussian values,
2. affinely re-standardize the sample so its mean and std are *exactly*
   the targets (removing sampling error, so the variance-bias plane is
   swept precisely),
3. clip onto the rating scale (clipping can shrink extreme parameter
   combinations -- e.g. bias -4 forces values to the scale minimum, where
   no variance is achievable; this is a property of the real system too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AttackSpecError
from repro.types import DEFAULT_SCALE, RatingScale
from repro.utils.rng import SeedLike, resolve_rng

__all__ = ["ValueSetSpec", "generate_value_set"]


@dataclass(frozen=True)
class ValueSetSpec:
    """Target (bias, sigma) of an unfair value set.

    Attributes
    ----------
    bias:
        Target mean shift relative to the fair mean.  Negative bias
        downgrades, positive bias boosts.
    std:
        Target standard deviation of the unfair values.
    """

    bias: float
    std: float

    def __post_init__(self) -> None:
        if self.std < 0:
            raise AttackSpecError(f"std must be >= 0, got {self.std}")

    def target_mean(self, fair_mean: float) -> float:
        """The unfair-value mean implied by the fair mean."""
        return fair_mean + self.bias


def generate_value_set(
    n: int,
    fair_mean: float,
    spec: ValueSetSpec,
    scale: Optional[RatingScale] = None,
    seed: SeedLike = None,
    value_step: Optional[float] = None,
) -> np.ndarray:
    """Sample ``n`` unfair rating values targeting ``spec``.

    ``value_step`` optionally quantizes the values (e.g. 0.5 for half-star
    sites); quantisation and clipping both perturb the achieved moments,
    which mirrors reality -- an attacker cannot place a mean of -1 on a
    0..5 scale either.
    """
    if n < 1:
        raise AttackSpecError(f"value set size must be >= 1, got {n}")
    scale = scale if scale is not None else DEFAULT_SCALE
    rng = resolve_rng(seed)
    target_mean = spec.target_mean(fair_mean)
    raw = rng.normal(0.0, 1.0, n)
    if n > 1 and spec.std > 0:
        sample_std = float(raw.std())
        if sample_std > 1e-12:
            raw = (raw - raw.mean()) / sample_std
        values = target_mean + spec.std * raw
    else:
        values = np.full(n, target_mean, dtype=float)
    if value_step is not None:
        if value_step <= 0:
            raise AttackSpecError(f"value_step must be > 0, got {value_step}")
        values = np.round(values / value_step) * value_step
    return scale.clip(values)
