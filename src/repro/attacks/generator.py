"""The composite attack generator -- paper Section V-E, Figure 8.

Pipeline, mirroring the figure:

1. **Rating value set generator** -- sample unfair values from the chosen
   (bias, variance) point (:mod:`repro.attacks.value_models`).
2. **Rating time set generator** -- sample unfair rating times from the
   chosen arrival model (:mod:`repro.attacks.time_models`).
3. **Value & time mapper** -- combine the two sets, optionally applying
   Procedure 3 correlation with the fair rating sequence
   (:mod:`repro.attacks.correlation`).
4. **Parameter controller** -- sweep or optimize the parameters against a
   rating system's observed attack effect (the Procedure 2 search lives in
   :mod:`repro.attacks.optimizer`; :meth:`AttackGenerator.optimize_values`
   wires it up).

The output is a valid challenge :class:`~repro.attacks.base.AttackSubmission`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.attacks.base import AttackSubmission, ProductTarget, build_attack_stream
from repro.attacks.correlation import (
    heuristic_correlation_match,
    identity_match,
    random_match,
)
from repro.attacks.time_models import TimeModel, UniformWindow
from repro.attacks.value_models import ValueSetSpec, generate_value_set
from repro.errors import AttackSpecError
from repro.types import DEFAULT_SCALE, RatingDataset, RatingScale
from repro.utils.rng import SeedLike, resolve_rng

__all__ = ["AttackSpec", "AttackGenerator"]

_CORRELATION_MODES = ("identity", "random", "heuristic")


@dataclass(frozen=True)
class AttackSpec:
    """One point in attack-parameter space, applied to every target.

    Attributes
    ----------
    bias_magnitude:
        Absolute mean shift; the sign is taken from each target's
        direction (+1 boost, -1 downgrade).
    std:
        Standard deviation of the unfair values.
    n_ratings:
        Unfair ratings per attacked product (at most the number of biased
        raters, since a rater rates a product once).
    time_model:
        Arrival model for the unfair rating times.
    correlation:
        ``"identity"``, ``"random"``, or ``"heuristic"`` (Procedure 3).
    value_step:
        Optional quantisation of unfair values.
    """

    bias_magnitude: float
    std: float
    n_ratings: int = 50
    time_model: TimeModel = field(default_factory=lambda: UniformWindow(0.0, 60.0))
    correlation: str = "identity"
    value_step: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bias_magnitude < 0:
            raise AttackSpecError(
                f"bias_magnitude must be >= 0, got {self.bias_magnitude}"
            )
        if self.n_ratings < 1:
            raise AttackSpecError(f"n_ratings must be >= 1, got {self.n_ratings}")
        if self.correlation not in _CORRELATION_MODES:
            raise AttackSpecError(
                f"correlation must be one of {_CORRELATION_MODES}, "
                f"got {self.correlation!r}"
            )


class AttackGenerator:
    """Generates challenge submissions from attack specifications.

    Parameters
    ----------
    fair_dataset:
        The fair ratings the attacker can observe (the challenge hands the
        participants the full dataset).  Used for the fair means that
        anchor bias, and for Procedure 3 correlation.
    rater_ids:
        The biased rater ids the attacker controls.
    scale:
        The rating scale values must respect.
    seed:
        Root seed for reproducible generation.
    """

    def __init__(
        self,
        fair_dataset: RatingDataset,
        rater_ids: Sequence[str],
        scale: Optional[RatingScale] = None,
        seed: SeedLike = None,
    ) -> None:
        if not rater_ids:
            raise AttackSpecError("at least one biased rater id is required")
        self.fair_dataset = fair_dataset
        self.rater_ids = tuple(rater_ids)
        self.scale = scale if scale is not None else DEFAULT_SCALE
        self._rng = resolve_rng(seed)
        self._counter = itertools.count()

    # ------------------------------------------------------------------ #

    def _map_values(self, spec: AttackSpec, product_id: str, times, values):
        if spec.correlation == "identity":
            return identity_match(times, values)
        if spec.correlation == "random":
            return random_match(times, values, seed=self._rng)
        fair_stream = self.fair_dataset[product_id]
        return heuristic_correlation_match(times, values, fair_stream)

    # Draws from self._rng, seeded once at construction via ``seed=``.
    def generate_stream(self, target: ProductTarget, spec: AttackSpec):  # lint: ignore[rng-missing-param]
        """The unfair stream for a single product target."""
        if target.product_id not in self.fair_dataset:
            raise AttackSpecError(
                f"product {target.product_id!r} is not in the fair dataset"
            )
        if spec.n_ratings > len(self.rater_ids):
            raise AttackSpecError(
                f"{spec.n_ratings} ratings requested but only "
                f"{len(self.rater_ids)} biased raters are available"
            )
        fair_mean = self.fair_dataset[target.product_id].mean_value()
        value_spec = ValueSetSpec(
            bias=target.direction * spec.bias_magnitude, std=spec.std
        )
        values = generate_value_set(
            spec.n_ratings,
            fair_mean,
            value_spec,
            scale=self.scale,
            seed=self._rng,
            value_step=spec.value_step,
        )
        times = spec.time_model.sample(spec.n_ratings, self._rng)
        times, values = self._map_values(spec, target.product_id, times, values)
        raters = list(self.rater_ids[: spec.n_ratings])
        self._rng.shuffle(raters)
        return build_attack_stream(target.product_id, times, values, raters)

    def generate(
        self,
        targets: Sequence[ProductTarget],
        spec: AttackSpec,
        submission_id: Optional[str] = None,
        per_target_specs: Optional[Dict[str, AttackSpec]] = None,
    ) -> AttackSubmission:
        """A full submission: one unfair stream per target.

        ``per_target_specs`` optionally overrides the spec for specific
        product ids (e.g. different timing for boost and downgrade
        targets).
        """
        if not targets:
            raise AttackSpecError("at least one product target is required")
        seen: set = set()
        streams = {}
        for target in targets:
            if target.product_id in seen:
                raise AttackSpecError(
                    f"duplicate target for product {target.product_id!r}"
                )
            seen.add(target.product_id)
            target_spec = (per_target_specs or {}).get(target.product_id, spec)
            streams[target.product_id] = self.generate_stream(target, target_spec)
        if submission_id is None:
            submission_id = f"generated_{next(self._counter):04d}"
        return AttackSubmission(
            submission_id=submission_id,
            streams=streams,
            strategy="generator",
            params={
                "bias_magnitude": spec.bias_magnitude,
                "std": spec.std,
                "n_ratings": spec.n_ratings,
                "correlation": spec.correlation,
                "time_model": type(spec.time_model).__name__,
                "targets": {t.product_id: t.direction for t in targets},
            },
        )

    # ------------------------------------------------------------------ #

    def evaluator(
        self,
        targets: Sequence[ProductTarget],
        challenge,
        scheme,
        base_spec: Optional[AttackSpec] = None,
        randomize_timing: bool = True,
        min_duration: float = 30.0,
    ):
        """An ``evaluate(bias, std) -> MP`` closure for Procedure 2.

        Binds this generator, a challenge, and a defense scheme so the
        region search (:func:`repro.attacks.optimizer.heuristic_region_search`)
        can probe (bias, variance) points.

        With ``randomize_timing=True`` (default) each probe samples a fresh
        attack window and rating count -- Procedure 2 says to "randomly
        generate m set of unfair rating data" at the centre point, and only
        bias and variance are pinned by the search; the non-value
        dimensions are part of the random generation.  With ``False``,
        ``base_spec`` supplies fixed timing for every probe (useful for
        ablations isolating the value dimensions).
        """
        template = base_spec if base_spec is not None else AttackSpec(1.0, 0.5)
        span = challenge.end_day - challenge.start_day
        max_raters = len(self.rater_ids)

        # Closes over self._rng (seeded at construction); never pickled.
        def sample_spec(bias_magnitude: float, std: float) -> AttackSpec:  # lint: ignore[rng-missing-param]
            if not randomize_timing:
                time_model = template.time_model
                n_ratings = template.n_ratings
            else:
                duration = float(
                    self._rng.uniform(min(min_duration, span - 2.0), span - 2.0)
                )
                start = challenge.start_day + float(
                    self._rng.uniform(0.0, span - duration)
                )
                time_model = UniformWindow(start, duration)
                low = min(max(10, int(0.8 * max_raters)), max_raters)
                n_ratings = int(self._rng.integers(low, max_raters + 1))
            return AttackSpec(
                bias_magnitude=abs(bias_magnitude),
                std=std,
                n_ratings=n_ratings,
                time_model=time_model,
                correlation=template.correlation,
                value_step=template.value_step,
            )

        def evaluate(bias_magnitude: float, std: float) -> float:
            submission = self.generate(targets, sample_spec(bias_magnitude, std))
            return challenge.evaluate(submission, scheme).total

        return evaluate
