"""The simple attack models of prior work (paper Section II).

Earlier evaluations of rating systems used hand-written attacker models:
only a lying probability, only badmouthing/ballot-stuffing, or unfair
ratings from a fixed simple distribution.  These are reproduced here both
as baselines and as the "straightforward" archetypes of the challenge
population:

- :func:`ballot_stuffing` -- every unfair rating is the scale maximum
  (boost targets) -- the optimal attack against plain averaging;
- :func:`bad_mouthing` -- every unfair rating is the scale minimum
  (downgrade targets);
- :func:`random_unfair` -- unfair values uniform over the whole scale
  (the "irresponsible rater" model);
- :func:`probabilistic_lying` -- each controlled rating lies with
  probability ``p`` (extreme value in the attack direction), otherwise
  rates fairly -- the model of Aberer-Despotovic-style analyses.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import AttackSubmission, ProductTarget, build_attack_stream
from repro.attacks.time_models import TimeModel, UniformWindow
from repro.errors import AttackSpecError
from repro.types import DEFAULT_SCALE, RatingDataset, RatingScale
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_probability

__all__ = [
    "ballot_stuffing",
    "bad_mouthing",
    "random_unfair",
    "probabilistic_lying",
]


def _build(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    rater_ids: Sequence[str],
    value_fn,
    time_model: TimeModel,
    n_ratings: int,
    rng: np.random.Generator,
    submission_id: str,
    strategy: str,
    params: dict,
) -> AttackSubmission:
    if not targets:
        raise AttackSpecError("at least one product target is required")
    if n_ratings > len(rater_ids):
        raise AttackSpecError(
            f"{n_ratings} ratings requested but only {len(rater_ids)} raters"
        )
    streams = {}
    for target in targets:
        if target.product_id not in fair_dataset:
            raise AttackSpecError(
                f"product {target.product_id!r} is not in the fair dataset"
            )
        times = time_model.sample(n_ratings, rng)
        values = value_fn(target, n_ratings, rng)
        raters = list(rater_ids[:n_ratings])
        rng.shuffle(raters)
        streams[target.product_id] = build_attack_stream(
            target.product_id, times, values, raters
        )
    return AttackSubmission(
        submission_id=submission_id,
        streams=streams,
        strategy=strategy,
        params=dict(params, targets={t.product_id: t.direction for t in targets}),
    )


def _default_time_model(time_model: Optional[TimeModel]) -> TimeModel:
    return time_model if time_model is not None else UniformWindow(0.0, 60.0)


def ballot_stuffing(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    rater_ids: Sequence[str],
    n_ratings: int = 50,
    time_model: Optional[TimeModel] = None,
    scale: RatingScale = DEFAULT_SCALE,
    seed: SeedLike = None,
    submission_id: str = "ballot_stuffing",
) -> AttackSubmission:
    """Maximum-value ratings on boost targets, minimum on downgrades.

    (The classical "ballot stuffing" is the boost half; downgrade targets
    degrade to bad-mouthing so mixed-objective submissions stay valid.)
    """
    rng = resolve_rng(seed)

    def value_fn(target: ProductTarget, n: int, _rng) -> np.ndarray:
        extreme = scale.maximum if target.direction > 0 else scale.minimum
        return np.full(n, extreme, dtype=float)

    return _build(
        fair_dataset, targets, rater_ids, value_fn,
        _default_time_model(time_model), n_ratings, rng, submission_id,
        "ballot_stuffing", {"n_ratings": n_ratings},
    )


def bad_mouthing(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    rater_ids: Sequence[str],
    n_ratings: int = 50,
    time_model: Optional[TimeModel] = None,
    scale: RatingScale = DEFAULT_SCALE,
    seed: SeedLike = None,
    submission_id: str = "bad_mouthing",
) -> AttackSubmission:
    """Minimum-value ratings on every target (pure downgrading)."""
    rng = resolve_rng(seed)

    def value_fn(_target: ProductTarget, n: int, _rng) -> np.ndarray:
        return np.full(n, scale.minimum, dtype=float)

    return _build(
        fair_dataset, targets, rater_ids, value_fn,
        _default_time_model(time_model), n_ratings, rng, submission_id,
        "bad_mouthing", {"n_ratings": n_ratings},
    )


def random_unfair(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    rater_ids: Sequence[str],
    n_ratings: int = 50,
    time_model: Optional[TimeModel] = None,
    scale: RatingScale = DEFAULT_SCALE,
    seed: SeedLike = None,
    submission_id: str = "random_unfair",
) -> AttackSubmission:
    """Unfair values uniform over the rating scale (noise attack)."""
    rng = resolve_rng(seed)

    def value_fn(_target: ProductTarget, n: int, r: np.random.Generator) -> np.ndarray:
        return r.uniform(scale.minimum, scale.maximum, n)

    return _build(
        fair_dataset, targets, rater_ids, value_fn,
        _default_time_model(time_model), n_ratings, rng, submission_id,
        "random_unfair", {"n_ratings": n_ratings},
    )


def probabilistic_lying(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    rater_ids: Sequence[str],
    lie_probability: float = 0.5,
    n_ratings: int = 50,
    time_model: Optional[TimeModel] = None,
    scale: RatingScale = DEFAULT_SCALE,
    fair_noise_std: float = 0.5,
    seed: SeedLike = None,
    submission_id: str = "probabilistic_lying",
) -> AttackSubmission:
    """Each controlled rating lies with probability ``p``.

    A lie is the extreme value in the attack direction; an honest rating
    is drawn around the product's fair mean with ``fair_noise_std``.
    """
    lie_probability = check_probability(lie_probability, "lie_probability")
    rng = resolve_rng(seed)

    def value_fn(target: ProductTarget, n: int, r: np.random.Generator) -> np.ndarray:
        fair_mean = fair_dataset[target.product_id].mean_value()
        honest = scale.clip(r.normal(fair_mean, fair_noise_std, n))
        extreme = scale.maximum if target.direction > 0 else scale.minimum
        lies = r.uniform(0.0, 1.0, n) < lie_probability
        values = honest.copy()
        values[lies] = extreme
        return values

    return _build(
        fair_dataset, targets, rater_ids, value_fn,
        _default_time_model(time_model), n_ratings, rng, submission_id,
        "probabilistic_lying",
        {"n_ratings": n_ratings, "lie_probability": lie_probability},
    )
