"""Advanced adversarial strategies against trust-based defenses.

The paper's collected attacks manipulate values and times; its future-work
section anticipates smarter adversaries.  Two such strategies are
implemented here because they specifically probe the *trust* layer of the
P-scheme rather than the signal layer:

- :func:`camouflage_attack` -- each biased rater first submits honest-
  looking ratings (at the fair mean) on half of the targets, *early*,
  building beta-trust evidence; only later do they strike the remaining
  targets.  Against Procedure 1 this raises the raters' trust above the
  neutral 0.5 before the attack, so Eq. 7 initially weights their unfair
  ratings like honest ones.  The cost is real: the camouflage ratings
  slightly *help* the products they want to hurt.
- :func:`split_burst_attack` -- the unfair ratings are split into several
  short, well-separated bursts sized to stay below the arrival-rate
  detectors' thresholds, while the monthly MP metric still sees
  concentrated damage in its top-2 months.

A third strategy, :func:`sybil_flood`, models the threat the challenge
rules exclude: an attacker who can mint *unlimited fresh identities*
(Sybil accounts), one rating each.  It deliberately violates the
challenge's 50-rater budget -- evaluate it with
:func:`repro.marketplace.mp.manipulation_power` directly -- and probes how
each defense behaves when identity creation is free: under Eq. 7 a fresh
identity carries the neutral trust 0.5 and therefore zero weight, so the
P-scheme is structurally resistant, while averaging-based schemes are
fully exposed.

The challenge-legal strategies return standard
:class:`~repro.attacks.base.AttackSubmission` objects and respect the
rules (each rater rates each product at most once).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import AttackSubmission, ProductTarget, build_attack_stream
from repro.attacks.value_models import ValueSetSpec, generate_value_set
from repro.errors import AttackSpecError
from repro.types import DEFAULT_SCALE, RatingDataset, RatingScale
from repro.utils.rng import SeedLike, resolve_rng

__all__ = ["camouflage_attack", "split_burst_attack", "sybil_flood"]


def camouflage_attack(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    rater_ids: Sequence[str],
    bias_magnitude: float = 2.5,
    std: float = 0.5,
    camouflage_noise: float = 0.3,
    camouflage_end: float = 30.0,
    strike_start: float = 45.0,
    strike_duration: float = 20.0,
    scale: RatingScale = DEFAULT_SCALE,
    seed: SeedLike = None,
    submission_id: str = "camouflage",
) -> AttackSubmission:
    """Build trust first, strike later.

    The biased raters are split into two squads.  During the camouflage
    phase (before ``camouflage_end``) each squad rates *the other squad's
    target products* honestly -- values drawn around the fair mean with
    ``camouflage_noise`` -- accumulating clean beta evidence.  During the
    strike phase (``strike_start`` onward) each squad attacks its own
    targets with the requested (bias, std) values.

    Requires at least two targets (the squads need disjoint strike sets).
    """
    targets = list(targets)
    if len(targets) < 2:
        raise AttackSpecError("camouflage needs at least two targets")
    if camouflage_end >= strike_start:
        raise AttackSpecError(
            "camouflage phase must end before the strike starts "
            f"(got end={camouflage_end}, strike={strike_start})"
        )
    rater_ids = list(rater_ids)
    if len(rater_ids) < 2:
        raise AttackSpecError("camouflage needs at least two biased raters")
    rng = resolve_rng(seed)

    half = len(targets) // 2
    squads = [targets[:half], targets[half:]]
    squad_raters = [rater_ids[: len(rater_ids) // 2], rater_ids[len(rater_ids) // 2 :]]

    # Per product: (times, values, raters) accumulated across phases.
    per_product = {t.product_id: ([], [], []) for t in targets}

    for squad_index, strike_targets in enumerate(squads):
        raters = squad_raters[squad_index]
        camouflage_targets = squads[1 - squad_index]
        # Phase 1: honest-looking ratings on the other squad's products.
        for target in camouflage_targets:
            fair_mean = fair_dataset[target.product_id].mean_value()
            times = np.sort(rng.uniform(0.0, camouflage_end, len(raters)))
            values = scale.clip(rng.normal(fair_mean, camouflage_noise, len(raters)))
            bucket = per_product[target.product_id]
            bucket[0].extend(times.tolist())
            bucket[1].extend(values.tolist())
            bucket[2].extend(raters)
        # Phase 2: strike the squad's own products.
        for target in strike_targets:
            fair_mean = fair_dataset[target.product_id].mean_value()
            spec = ValueSetSpec(bias=target.direction * bias_magnitude, std=std)
            values = generate_value_set(
                len(raters), fair_mean, spec, scale=scale, seed=rng
            )
            times = np.sort(
                rng.uniform(strike_start, strike_start + strike_duration, len(raters))
            )
            bucket = per_product[target.product_id]
            bucket[0].extend(times.tolist())
            bucket[1].extend(values.tolist())
            bucket[2].extend(raters)

    streams = {
        product_id: build_attack_stream(product_id, times, values, raters)
        for product_id, (times, values, raters) in per_product.items()
    }
    return AttackSubmission(
        submission_id=submission_id,
        streams=streams,
        strategy="camouflage",
        params={
            "bias_magnitude": bias_magnitude,
            "std": std,
            "camouflage_end": camouflage_end,
            "strike_start": strike_start,
            "targets": {t.product_id: t.direction for t in targets},
        },
    )


def split_burst_attack(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    rater_ids: Sequence[str],
    bias_magnitude: float = 2.5,
    std: float = 0.5,
    n_bursts: int = 4,
    burst_width: float = 3.0,
    first_burst: float = 10.0,
    burst_spacing: float = 18.0,
    scale: RatingScale = DEFAULT_SCALE,
    seed: SeedLike = None,
    submission_id: str = "split_burst",
) -> AttackSubmission:
    """Several small bursts instead of one detectable block.

    The raters are divided evenly over ``n_bursts`` bursts of width
    ``burst_width`` days, starting at ``first_burst`` and spaced
    ``burst_spacing`` apart.  Each burst alone adds only a small number of
    ratings per day, weakening the arrival-rate signature, while the MP
    metric's top-2-months rule still collects the damage.
    """
    targets = list(targets)
    if not targets:
        raise AttackSpecError("at least one target is required")
    if n_bursts < 1:
        raise AttackSpecError(f"n_bursts must be >= 1, got {n_bursts}")
    if burst_width <= 0 or burst_spacing <= 0:
        raise AttackSpecError("burst_width and burst_spacing must be > 0")
    rater_ids = list(rater_ids)
    if len(rater_ids) < n_bursts:
        raise AttackSpecError(
            f"need at least one rater per burst ({n_bursts}), got {len(rater_ids)}"
        )
    rng = resolve_rng(seed)

    burst_assignment = np.array_split(np.arange(len(rater_ids)), n_bursts)
    streams = {}
    for target in targets:
        fair_mean = fair_dataset[target.product_id].mean_value()
        spec = ValueSetSpec(bias=target.direction * bias_magnitude, std=std)
        values = generate_value_set(
            len(rater_ids), fair_mean, spec, scale=scale, seed=rng
        )
        times = np.empty(len(rater_ids))
        for burst_index, members in enumerate(burst_assignment):
            start = first_burst + burst_index * burst_spacing
            times[members] = rng.uniform(start, start + burst_width, members.size)
        streams[target.product_id] = build_attack_stream(
            target.product_id, times, values, rater_ids
        )
    return AttackSubmission(
        submission_id=submission_id,
        streams=streams,
        strategy="split_burst",
        params={
            "bias_magnitude": bias_magnitude,
            "std": std,
            "n_bursts": n_bursts,
            "burst_width": burst_width,
            "burst_spacing": burst_spacing,
            "targets": {t.product_id: t.direction for t in targets},
        },
    )


def sybil_flood(
    fair_dataset: RatingDataset,
    targets: Sequence[ProductTarget],
    n_identities: int = 200,
    bias_magnitude: float = 2.5,
    std: float = 0.5,
    start: float = 10.0,
    duration: float = 50.0,
    scale: RatingScale = DEFAULT_SCALE,
    seed: SeedLike = None,
    submission_id: str = "sybil_flood",
    id_prefix: str = "sybil",
) -> AttackSubmission:
    """Unlimited fresh identities, one unfair rating each.

    Models free identity creation (outside the challenge rules -- do not
    pass the result to ``RatingChallenge.evaluate`` with validation on).
    Each target product receives ``n_identities`` unfair ratings from
    brand-new rater ids, spread uniformly over ``[start, start+duration]``.
    """
    targets = list(targets)
    if not targets:
        raise AttackSpecError("at least one target is required")
    if n_identities < 1:
        raise AttackSpecError(f"n_identities must be >= 1, got {n_identities}")
    if duration <= 0:
        raise AttackSpecError(f"duration must be > 0, got {duration}")
    rng = resolve_rng(seed)
    streams = {}
    counter = 0
    for target in targets:
        fair_mean = fair_dataset[target.product_id].mean_value()
        spec = ValueSetSpec(bias=target.direction * bias_magnitude, std=std)
        values = generate_value_set(
            n_identities, fair_mean, spec, scale=scale, seed=rng
        )
        times = np.sort(rng.uniform(start, start + duration, n_identities))
        raters = [f"{id_prefix}_{counter + i:06d}" for i in range(n_identities)]
        counter += n_identities
        streams[target.product_id] = build_attack_stream(
            target.product_id, times, values, raters
        )
    return AttackSubmission(
        submission_id=submission_id,
        streams=streams,
        strategy="sybil_flood",
        params={
            "n_identities": n_identities,
            "bias_magnitude": bias_magnitude,
            "std": std,
            "targets": {t.product_id: t.direction for t in targets},
        },
    )
