"""Attack models and the unfair-rating generator (the paper's contribution).

- :mod:`repro.attacks.base` -- the :class:`AttackSubmission` container (one
  challenge entry: unfair rating streams for the attacked products).
- :mod:`repro.attacks.value_models` -- rating-value-set generation from
  (bias, variance), Section V-B.
- :mod:`repro.attacks.time_models` -- rating-time-set generation from
  arrival rate / attack duration, Section V-C.
- :mod:`repro.attacks.correlation` -- value-to-time mappers, including the
  paper's Procedure 3 heuristic correlation, Section V-D.
- :mod:`repro.attacks.generator` -- the composite attack generator of
  Figure 8 (value set -> time set -> mapper -> submission).
- :mod:`repro.attacks.optimizer` -- Procedure 2: heuristic search for the
  strongest (bias, variance) region against a given defense.
- :mod:`repro.attacks.strategies` -- the simple attack models used by prior
  work (ballot stuffing, bad mouthing, probabilistic lying, ...).
- :mod:`repro.attacks.population` -- a synthetic 251-entry challenge
  population spanning the strategy space the paper observed.
"""

from repro.attacks.advanced import camouflage_attack, split_burst_attack, sybil_flood
from repro.attacks.base import AttackSubmission, ProductTarget
from repro.attacks.correlation import (
    heuristic_correlation_match,
    identity_match,
    random_match,
)
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.optimizer import RegionSearchResult, SearchArea, heuristic_region_search
from repro.attacks.population import PopulationConfig, generate_population
from repro.attacks.strategies import (
    bad_mouthing,
    ballot_stuffing,
    probabilistic_lying,
    random_unfair,
)
from repro.attacks.time_models import (
    ConcentratedBurst,
    EvenlySpaced,
    PoissonTimes,
    UniformWindow,
)
from repro.attacks.value_models import ValueSetSpec, generate_value_set

__all__ = [
    "camouflage_attack",
    "split_burst_attack",
    "sybil_flood",
    "AttackSubmission",
    "ProductTarget",
    "heuristic_correlation_match",
    "identity_match",
    "random_match",
    "AttackGenerator",
    "AttackSpec",
    "RegionSearchResult",
    "SearchArea",
    "heuristic_region_search",
    "PopulationConfig",
    "generate_population",
    "bad_mouthing",
    "ballot_stuffing",
    "probabilistic_lying",
    "random_unfair",
    "ConcentratedBurst",
    "EvenlySpaced",
    "PoissonTimes",
    "UniformWindow",
    "ValueSetSpec",
    "generate_value_set",
]
