"""A synthetic challenge population -- the stand-in for the 251 humans.

The paper's figures are scatter plots over its 251 valid human
submissions.  Those submissions are not public, so this module generates a
population with the *composition the paper reports* (Section V-A):

- more than half the attacks were straightforward (large bias, little
  exploitation of the defense);
- a substantial minority exploited the defense in complicated ways
  (moderate bias with large variance, tuned arrival rates, concentrated
  into one or two MP months);
- most submissions were hand-made or hand-tuned (we add parameter jitter
  so archetypes do not collapse onto grid points).

Every submission respects the challenge rules (50 biased raters, at most
two boost and two downgrade targets, one rating per rater per product).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackSubmission, ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.time_models import (
    ConcentratedBurst,
    EvenlySpaced,
    PoissonTimes,
    TimeModel,
    UniformWindow,
)
from repro.errors import ChallengeRuleError, ValidationError
from repro.utils.rng import SeedLike, resolve_rng

__all__ = [
    "PopulationConfig",
    "SubmissionLabels",
    "attacker_ids",
    "generate_population",
    "population_labels",
]


@dataclass(frozen=True)
class PopulationConfig:
    """Size and archetype mix of the synthetic population.

    Fractions must sum to 1; they follow the Section V-A observations
    (over half straightforward, the rest increasingly defense-aware).
    """

    size: int = 251
    straightforward_fraction: float = 0.40
    moderate_fraction: float = 0.25
    smart_fraction: float = 0.20
    burst_fraction: float = 0.10
    experimental_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValidationError(f"size must be >= 1, got {self.size}")
        total = (
            self.straightforward_fraction
            + self.moderate_fraction
            + self.smart_fraction
            + self.burst_fraction
            + self.experimental_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValidationError(f"archetype fractions must sum to 1, got {total}")

    def archetype_counts(self) -> List[Tuple[str, int]]:
        """``(archetype, count)`` pairs; rounding residue goes to the first."""
        fractions = [
            ("straightforward", self.straightforward_fraction),
            ("moderate", self.moderate_fraction),
            ("smart", self.smart_fraction),
            ("burst", self.burst_fraction),
            ("experimental", self.experimental_fraction),
        ]
        counts = [(name, int(np.floor(frac * self.size))) for name, frac in fractions]
        residue = self.size - sum(c for _, c in counts)
        name0, count0 = counts[0]
        counts[0] = (name0, count0 + residue)
        return counts


@dataclass(frozen=True)
class SubmissionLabels:
    """Ground-truth labels of one submission, for scorecard joins.

    The quality layer (:mod:`repro.obs.quality`) judges detection
    against what is *actually* unfair; this is the exported answer key:
    which products each submission attacked, which rater identities it
    used, and how many unfair ratings it injected.
    """

    submission_id: str
    archetype: str
    product_ids: Tuple[str, ...]
    rater_ids: Tuple[str, ...]
    n_unfair_ratings: int


def population_labels(
    population: Sequence[AttackSubmission],
) -> Dict[str, SubmissionLabels]:
    """Ground-truth labels keyed by submission id."""
    labels: Dict[str, SubmissionLabels] = {}
    for submission in population:
        labels[submission.submission_id] = SubmissionLabels(
            submission_id=submission.submission_id,
            archetype=str(
                submission.params.get("archetype", submission.strategy)
            ),
            product_ids=submission.product_ids,
            rater_ids=submission.rater_ids(),
            n_unfair_ratings=submission.total_ratings(),
        )
    return labels


def attacker_ids(population: Sequence[AttackSubmission]) -> Tuple[str, ...]:
    """The sorted union of rater identities used across a population."""
    ids = set()
    for submission in population:
        ids.update(submission.rater_ids())
    return tuple(sorted(ids))


def _pick_targets(
    product_ids: Sequence[str], rng: np.random.Generator
) -> List[ProductTarget]:
    """Two boost and two downgrade targets, distinct products."""
    chosen = rng.choice(len(product_ids), size=4, replace=False)
    return [
        ProductTarget(product_ids[chosen[0]], +1),
        ProductTarget(product_ids[chosen[1]], +1),
        ProductTarget(product_ids[chosen[2]], -1),
        ProductTarget(product_ids[chosen[3]], -1),
    ]


def _time_model_for(
    archetype: str,
    start_day: float,
    duration_days: float,
    n_ratings: int,
    rng: np.random.Generator,
) -> TimeModel:
    """Sample an arrival model matching the archetype's habits."""
    span = duration_days
    if archetype == "straightforward":
        # Whenever; often the whole challenge window.
        attack_len = float(rng.uniform(0.5 * span, span))
        start = float(rng.uniform(start_day, start_day + span - attack_len))
        return UniformWindow(start, attack_len)
    if archetype == "moderate":
        attack_len = float(rng.uniform(15.0, min(60.0, span)))
        start = float(rng.uniform(start_day, start_day + span - attack_len))
        return UniformWindow(start, attack_len)
    if archetype == "smart":
        # Tuned arrival interval (Section V-C); the interval was already
        # budgeted against the rating count in ``_spec_for``.
        max_interval = (span - 2.0) / max(n_ratings - 1, 1)
        interval = float(rng.uniform(0.5, max(0.6, max_interval)))
        interval = min(interval, max(max_interval, 0.1))
        attack_len = interval * (n_ratings - 1)
        latest_start = max(start_day, start_day + span - attack_len - 1.0)
        if latest_start > start_day:
            start = float(rng.uniform(start_day, latest_start))
        else:
            start = start_day
        return EvenlySpaced(start, interval, jitter=float(rng.uniform(0.1, 0.5)))
    if archetype == "burst":
        center = float(rng.uniform(start_day + 2.0, start_day + span - 2.0))
        return ConcentratedBurst(center, width=float(rng.uniform(0.25, 2.0)))
    # experimental: a Poisson process fast enough to finish inside the window.
    min_rate = n_ratings / (0.6 * span)
    rate = float(rng.uniform(min_rate, max(10.0, 2.0 * min_rate)))
    start = float(rng.uniform(start_day, start_day + 0.1 * span))
    return PoissonTimes(start, rate)


def _spec_for(
    archetype: str,
    start_day: float,
    duration_days: float,
    max_raters: int,
    rng: np.random.Generator,
) -> AttackSpec:
    """Sample the value/timing parameters of one submission."""
    if archetype == "straightforward":
        bias = float(rng.uniform(2.5, 4.0))
        std = float(rng.uniform(0.0, 0.3))
        n = int(rng.integers(30, max_raters + 1))
        correlation = "identity"
    elif archetype == "moderate":
        bias = float(rng.uniform(1.0, 2.5))
        std = float(rng.uniform(0.2, 0.7))
        n = int(rng.integers(25, max_raters + 1))
        correlation = "identity"
    elif archetype == "smart":
        bias = float(rng.uniform(1.0, 2.8))
        std = float(rng.uniform(0.7, 1.3))
        # Smart attackers tune the arrival interval (Section V-C); wide
        # intervals force fewer ratings so the attack fits the window.
        interval_budget = float(rng.uniform(0.5, 8.0))
        max_n = max(10, int((duration_days - 2.0) / interval_budget) + 1)
        n = min(int(rng.integers(35, max_raters + 1)), max_n)
        correlation = "identity"
    elif archetype == "burst":
        bias = float(rng.uniform(2.0, 4.0))
        std = float(rng.uniform(0.0, 0.5))
        n = int(rng.integers(30, max_raters + 1))
        correlation = "identity"
    else:  # experimental
        bias = float(rng.uniform(0.2, 1.5))
        std = float(rng.uniform(0.0, 1.5))
        n = int(rng.integers(10, max_raters + 1))
        correlation = "identity"
    time_model = _time_model_for(archetype, start_day, duration_days, n, rng)
    return AttackSpec(
        bias_magnitude=bias,
        std=std,
        n_ratings=n,
        time_model=time_model,
        correlation=correlation,
    )


def generate_population(
    challenge,
    config: Optional[PopulationConfig] = None,
    seed: SeedLike = None,
) -> List[AttackSubmission]:
    """Generate the synthetic population for ``challenge``.

    ``challenge`` is a :class:`~repro.marketplace.challenge.RatingChallenge`;
    its fair data, rater budget, and time window parameterize every
    submission.  Submissions are returned validated.
    """
    config = config if config is not None else PopulationConfig()
    rng = resolve_rng(seed)
    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        scale=challenge.config.scale,
        seed=rng,
    )
    product_ids = tuple(challenge.fair_dataset.product_ids)
    start_day = challenge.start_day
    duration = challenge.end_day - challenge.start_day
    submissions: List[AttackSubmission] = []
    index = 0
    max_attempts = 10
    for archetype, count in config.archetype_counts():
        for _ in range(count):
            submission = None
            for attempt in range(max_attempts):
                targets = _pick_targets(product_ids, rng)
                spec = _spec_for(
                    archetype,
                    start_day,
                    duration,
                    challenge.config.n_biased_raters,
                    rng,
                )
                candidate = generator.generate(
                    targets, spec, submission_id=f"sub_{index:03d}"
                )
                candidate = AttackSubmission(
                    submission_id=candidate.submission_id,
                    streams=candidate.streams,
                    strategy=archetype,
                    params=dict(candidate.params, archetype=archetype),
                )
                try:
                    challenge.validate(candidate)
                except ChallengeRuleError:
                    # Stochastic timing (e.g. a slow Poisson tail) can leak
                    # outside the challenge window; resample.
                    continue
                submission = candidate
                break
            if submission is None:
                raise ValidationError(
                    f"could not generate a rule-abiding {archetype!r} "
                    f"submission in {max_attempts} attempts"
                )
            submissions.append(submission)
            index += 1
    return submissions
