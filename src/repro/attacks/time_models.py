"""Unfair rating time-set generation -- paper Section V-C.

The time-domain features of an attack are its *duration* (first to last
unfair rating) and the resulting *average rating interval* (duration over
count).  Figure 6 shows an interior optimum: concentrated attacks trip the
arrival-rate detectors, over-stretched attacks move the monthly scores too
little.  Four arrival models cover the behaviours seen in the challenge:

- :class:`UniformWindow` -- i.i.d. uniform times in an attack window (the
  most common human strategy);
- :class:`ConcentratedBurst` -- a tight burst around a centre (ballot
  stuffing in a day or two);
- :class:`EvenlySpaced` -- metronome spacing (the "spread thin" strategy,
  minimising the arrival-rate signature);
- :class:`PoissonTimes` -- a Poisson process at a target rate, the model
  most prior-work simulators assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import AttackSpecError
from repro.utils.rng import SeedLike, resolve_rng

__all__ = [
    "TimeModel",
    "UniformWindow",
    "ConcentratedBurst",
    "EvenlySpaced",
    "PoissonTimes",
]


class TimeModel(Protocol):
    """Anything that can sample ``n`` sorted rating times."""

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` sorted times (days)."""
        ...


def _check_count(n: int) -> None:
    if n < 1:
        raise AttackSpecError(f"time set size must be >= 1, got {n}")


@dataclass(frozen=True)
class UniformWindow:
    """Times uniform in ``[start, start + duration]``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise AttackSpecError(f"duration must be > 0, got {self.duration}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(n)
        return np.sort(rng.uniform(self.start, self.start + self.duration, n))


@dataclass(frozen=True)
class ConcentratedBurst:
    """Times packed into a narrow burst around ``center``.

    ``width`` is the full width of the burst (days); a width of 0.5 puts
    all unfair ratings within half a day.
    """

    center: float
    width: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise AttackSpecError(f"width must be > 0, got {self.width}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(n)
        half = self.width / 2.0
        return np.sort(rng.uniform(self.center - half, self.center + half, n))


@dataclass(frozen=True)
class EvenlySpaced:
    """Times at a fixed interval, with optional uniform jitter.

    ``jitter`` is the fraction of the interval used as +/- jitter
    (0 disables; 0.25 keeps the metronome structure but avoids perfectly
    periodic arrivals that a human would never produce).
    """

    start: float
    interval: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise AttackSpecError(f"interval must be > 0, got {self.interval}")
        if not 0.0 <= self.jitter < 1.0:
            raise AttackSpecError(f"jitter must be in [0, 1), got {self.jitter}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(n)
        base = self.start + self.interval * np.arange(n, dtype=float)
        if self.jitter > 0:
            half = self.jitter * self.interval / 2.0
            base = base + rng.uniform(-half, half, n)
        return np.sort(base)


@dataclass(frozen=True)
class PoissonTimes:
    """A Poisson arrival process at ``rate`` per day starting at ``start``.

    Exactly ``n`` events are drawn (the first ``n`` arrivals of the
    process), so the *expected* duration is ``n / rate``.
    """

    start: float
    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise AttackSpecError(f"rate must be > 0, got {self.rate}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(n)
        gaps = rng.exponential(1.0 / self.rate, n)
        times = self.start + np.cumsum(gaps)
        return times  # cumulative sums of positive gaps are already sorted


def sample_times(model: TimeModel, n: int, seed: SeedLike = None) -> np.ndarray:
    """Convenience wrapper: sample ``n`` times from ``model``."""
    return model.sample(n, resolve_rng(seed))
