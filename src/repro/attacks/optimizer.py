"""Procedure 2: heuristic search for the strongest attack region.

The paper's heuristic explores the variance-bias plane from the attacker's
point of view:

1. start with the whole plane of interest (e.g. bias 0..-4, sigma 0..2),
2. divide the current area into ``N`` (possibly overlapping) subareas,
3. probe each subarea by generating ``m`` unfair rating sets at its centre
   point and recording the maximum MP achieved,
4. recurse into the best subarea until it is smaller than a threshold.

Figure 5 visualises the shrinking rectangles; the paper reports the found
region (centre around bias -2.3, sigma 1.56 against the P-scheme) beats
every human submission.  :func:`heuristic_region_search` reproduces the
procedure for any ``evaluate(bias, std) -> MP`` callback -- defenses are
pluggable, exactly as in the attack generator's parameter controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import AttackSpecError
from repro.obs import get_logger
from repro.obs.registry import MetricsRegistry, get_registry
from repro.utils.validation import check_positive_int

logger = get_logger(__name__)

__all__ = ["SearchArea", "SearchRound", "RegionSearchResult", "heuristic_region_search"]


@dataclass(frozen=True)
class SearchArea:
    """An axis-aligned rectangle in the (bias, sigma) plane."""

    bias_min: float
    bias_max: float
    std_min: float
    std_max: float

    def __post_init__(self) -> None:
        if self.bias_max < self.bias_min:
            raise AttackSpecError("bias_max must be >= bias_min")
        if self.std_max < self.std_min:
            raise AttackSpecError("std_max must be >= std_min")
        if self.std_min < 0:
            raise AttackSpecError("std_min must be >= 0")

    @property
    def bias_width(self) -> float:
        """Extent along the bias axis."""
        return self.bias_max - self.bias_min

    @property
    def std_width(self) -> float:
        """Extent along the sigma axis."""
        return self.std_max - self.std_min

    @property
    def center(self) -> Tuple[float, float]:
        """``(bias, std)`` centre point of the area."""
        return (
            (self.bias_min + self.bias_max) / 2.0,
            (self.std_min + self.std_max) / 2.0,
        )

    def subdivide(self, n: int = 4, overlap: float = 0.25) -> List["SearchArea"]:
        """Split into an (approximately square) grid of ``n`` subareas.

        Each subarea is expanded by ``overlap`` (fraction of its size) on
        every side and clipped to the parent, so neighbouring subareas
        overlap -- the paper notes its subareas may overlap, which keeps a
        maximum sitting on a grid line reachable from both sides.
        """
        n = check_positive_int(n, "n")
        if not 0.0 <= overlap < 1.0:
            raise AttackSpecError(f"overlap must be in [0, 1), got {overlap}")
        rows = max(1, int(round(n**0.5)))
        cols = max(1, (n + rows - 1) // rows)
        cell_bias = self.bias_width / cols
        cell_std = self.std_width / rows
        subareas: List[SearchArea] = []
        for row in range(rows):
            for col in range(cols):
                if len(subareas) >= n:
                    break
                b_lo = self.bias_min + col * cell_bias
                b_hi = b_lo + cell_bias
                s_lo = self.std_min + row * cell_std
                s_hi = s_lo + cell_std
                pad_b = overlap * cell_bias
                pad_s = overlap * cell_std
                subareas.append(
                    SearchArea(
                        bias_min=max(self.bias_min, b_lo - pad_b),
                        bias_max=min(self.bias_max, b_hi + pad_b),
                        std_min=max(self.std_min, s_lo - pad_s),
                        std_max=min(self.std_max, s_hi + pad_s),
                    )
                )
        return subareas

    def smaller_than(self, bias_width: float, std_width: float) -> bool:
        """Whether the area fits inside the given size thresholds."""
        return self.bias_width <= bias_width and self.std_width <= std_width


@dataclass(frozen=True)
class SearchRound:
    """One round of the Procedure 2 loop (for the Figure 5 trace)."""

    area: SearchArea
    subareas: Tuple[SearchArea, ...]
    scores: Tuple[float, ...]
    best_index: int

    @property
    def best_subarea(self) -> SearchArea:
        """The subarea the next round recursed into."""
        return self.subareas[self.best_index]

    @property
    def best_score(self) -> float:
        """The winning subarea's probe MP."""
        return self.scores[self.best_index]


@dataclass(frozen=True)
class RegionSearchResult:
    """Outcome of the full Procedure 2 search."""

    rounds: Tuple[SearchRound, ...]
    final_area: SearchArea
    best_mp: float

    @property
    def best_point(self) -> Tuple[float, float]:
        """Centre ``(bias, std)`` of the final area."""
        return self.final_area.center


def heuristic_region_search(
    evaluate: Optional[Callable[[float, float], float]],
    initial_area: SearchArea,
    n_subareas: int = 4,
    probes_per_subarea: int = 10,
    min_bias_width: float = 0.5,
    min_std_width: float = 0.25,
    max_rounds: int = 12,
    overlap: float = 0.25,
    final_probes: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    probe_batch: Optional[
        Callable[[Sequence[Tuple[float, float, int]]], List[float]]
    ] = None,
    memoize: bool = True,
) -> RegionSearchResult:
    """Run Procedure 2 over ``evaluate``.

    ``evaluate(bias, std)`` generates one unfair rating set at that point
    and returns its MP; it is called ``probes_per_subarea`` times per
    subarea and the *maximum* is the subarea's score (paper line 7).
    The search stops when the focused area is smaller than the width
    thresholds, or after ``max_rounds``.

    After the search converges, the output region's centre is probed
    ``final_probes`` more times (default: ``2 * probes_per_subarea``) --
    the procedure's deliverable is the *region*, and the attacker will
    keep drawing attacks from it, so the reported ``best_mp`` includes
    this exploitation phase.

    Because subareas overlap, centre points can recur across rounds; with
    ``memoize`` (default) each distinct ``(bias, std, probe count)``
    request is evaluated once per search and replays afterwards (counted
    as ``search.memo.hits``).  When ``probe_batch`` is given -- e.g. from
    :func:`repro.exec.region_probe_batch` -- each round's un-memoized
    requests are scored in one batched call, letting a parallel evaluator
    fan the whole round out at once; ``evaluate`` may then be ``None``.

    Every probe (one MP evaluation) is counted and timed into the metrics
    ``registry`` (``search.probes``, ``search.probe_seconds``); ``None``
    uses the globally active registry.  On the batched path timings and
    MP observations are recorded per *request* rather than per probe.
    """
    probes_per_subarea = check_positive_int(probes_per_subarea, "probes_per_subarea")
    max_rounds = check_positive_int(max_rounds, "max_rounds")
    if evaluate is None and probe_batch is None:
        raise AttackSpecError("provide evaluate or probe_batch")
    if final_probes is None:
        final_probes = 2 * probes_per_subarea
    reg = registry if registry is not None else get_registry()
    memo: Optional[Dict[Tuple[float, float, int], float]] = {} if memoize else None

    def probe(bias: float, std: float) -> float:
        start = perf_counter()
        mp = evaluate(bias, std)
        reg.observe("search.probe_seconds", perf_counter() - start)
        reg.inc("search.probes")
        reg.observe("search.probe_mp", float(mp))
        return mp

    def score_points(requests: List[Tuple[float, float, int]]) -> List[float]:
        """Subarea scores for ``(bias, std, count)`` requests.

        Memoized requests replay instantly; the rest go through the
        batched prober (whole round in one evaluator dispatch) or the
        serial ``probe`` loop.  Both paths compute ``max`` over ``count``
        fresh attacks, so the memo only elides *repeated* work.
        """
        scores: List[float] = [0.0] * len(requests)
        pending: List[int] = []
        for i, request in enumerate(requests):
            if memo is not None and request in memo:
                scores[i] = memo[request]
                reg.inc("search.memo.hits")
            else:
                pending.append(i)
        if pending and probe_batch is not None:
            start = perf_counter()
            values = probe_batch([requests[i] for i in pending])
            elapsed = perf_counter() - start
            for i, value in zip(pending, values):
                reg.inc("search.probes", requests[i][2])
                reg.observe("search.probe_seconds", elapsed / len(pending))
                reg.observe("search.probe_mp", float(value))
                scores[i] = float(value)
        elif pending:
            for i in pending:
                bias, std, count = requests[i]
                scores[i] = float(max(probe(bias, std) for _ in range(count)))
        if memo is not None:
            for i in pending:
                memo[requests[i]] = scores[i]
        return scores

    area = initial_area
    rounds: List[SearchRound] = []
    best_mp = float("-inf")
    for _ in range(max_rounds):
        if area.smaller_than(min_bias_width, min_std_width):
            break
        subareas = area.subdivide(n_subareas, overlap=overlap)
        scores = score_points(
            [(*sub.center, probes_per_subarea) for sub in subareas]
        )
        best_index = int(max(range(len(scores)), key=scores.__getitem__))
        rounds.append(
            SearchRound(
                area=area,
                subareas=tuple(subareas),
                scores=tuple(scores),
                best_index=best_index,
            )
        )
        best_mp = max(best_mp, scores[best_index])
        area = subareas[best_index]
        reg.inc("search.rounds")
        logger.debug(
            "round=%d best_score=%.4f center=(%.2f, %.2f)",
            len(rounds), scores[best_index], *area.center,
        )
    if final_probes > 0:
        exploitation = score_points([(*area.center, final_probes)])[0]
        best_mp = max(best_mp, float(exploitation))
    if best_mp == float("-inf"):
        # No rounds ran and no final probes were requested: probe once.
        best_mp = score_points([(*area.center, probes_per_subarea)])[0]
    reg.set_gauge("search.best_mp", float(best_mp))
    return RegionSearchResult(
        rounds=tuple(rounds), final_area=area, best_mp=float(best_mp)
    )
