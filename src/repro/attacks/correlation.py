"""Value-to-time mappers, including the paper's Procedure 3.

An attack is a set of values and a set of times; *how values are assigned
to times* is the correlation dimension of Section V-D.  The paper found no
correlation in the human submissions, but showed (Figure 7) that the
following heuristic strengthens attacks:

**Procedure 3 (heuristic correlation).**  Walk the attack times in
chronological order; for each time, look up the fair rating value given
just before it ("NearV") and assign the still-unused attack value that
differs *most* from NearV.  Anti-correlating with the local fair signal
maximises the instantaneous disruption each unfair rating causes.

Also provided: the identity mapping (values stay in generated order) and
a random shuffle (the control used in the Figure 7 comparison).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import AttackSpecError
from repro.types import RatingStream
from repro.utils.rng import SeedLike, resolve_rng

__all__ = ["identity_match", "random_match", "heuristic_correlation_match"]


def _check_aligned(times: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size != values.size:
        raise AttackSpecError(
            f"{times.size} times but {values.size} values to match"
        )
    return times, values


def identity_match(times: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Assign values to times in the given order (no correlation intent).

    Times are sorted; values keep their generated order.
    """
    times, values = _check_aligned(times, values)
    order = np.argsort(times, kind="stable")
    return times[order], values.copy()


def random_match(
    times: np.ndarray, values: np.ndarray, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Assign values to times uniformly at random (the Fig. 7 control)."""
    times, values = _check_aligned(times, values)
    rng = resolve_rng(seed)
    order = np.argsort(times, kind="stable")
    shuffled = values.copy()
    rng.shuffle(shuffled)
    return times[order], shuffled


def _nearest_fair_value_before(
    fair_stream: RatingStream, time: float, default: float
) -> float:
    """The fair rating value given most recently before ``time``."""
    idx = int(np.searchsorted(fair_stream.times, time, side="right")) - 1
    if idx < 0:
        return default
    return float(fair_stream.values[idx])


def heuristic_correlation_match(
    times: np.ndarray,
    values: np.ndarray,
    fair_stream: RatingStream,
    default_near_value: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Procedure 3: anti-correlate attack values with the fair signal.

    For each attack time in ascending order, the fair value submitted just
    before it is located and the unused attack value with the maximum
    absolute difference from it is assigned.  ``default_near_value`` is
    used when no fair rating precedes a time (defaults to the fair
    stream's mean, or the midpoint 2.5 for an empty stream).
    """
    times, values = _check_aligned(times, values)
    if default_near_value is None:
        default_near_value = (
            fair_stream.mean_value() if len(fair_stream) else 2.5
        )
    time_order = np.argsort(times, kind="stable")
    remaining = list(values)
    matched = np.empty(values.size, dtype=float)
    for slot, t_idx in enumerate(time_order):
        near_value = _nearest_fair_value_before(
            fair_stream, float(times[t_idx]), default_near_value
        )
        diffs = [abs(v - near_value) for v in remaining]
        pick = int(np.argmax(diffs))
        matched[slot] = remaining.pop(pick)
    return times[time_order], matched
