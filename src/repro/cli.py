"""Command-line interface to the reproduction.

Subcommands mirror the workflow of the paper's systems::

    repro-rating world      --seed 7 --out fair.csv
    repro-rating attack     --world fair.csv --target tv1:-1 --target tv3:+1 \
                            --bias 2.5 --std 0.4 --out attack.json
    repro-rating evaluate   --world fair.csv --submission attack.json --scheme P
    repro-rating detect     --world fair.csv --product tv1
    repro-rating population --seed 7 --size 25 --scheme SA
    repro-rating search     --seed 7 --scheme P --probes 4

``world`` writes fair rating data as CSV; ``attack`` builds one unfair
rating submission (JSON); ``evaluate`` scores a submission's Manipulation
Power under a defense; ``detect`` prints the joint detector's verdict for
one product (``--explain`` adds the per-rating provenance table);
``population`` simulates a challenge round with synthetic participants;
``search`` runs the Procedure 2 region search.

Every command accepts ``--seed`` for reproducibility, plus the global
observability flags ``--log-level LEVEL`` (structured logs to stderr),
``--metrics-out PATH`` (collect pipeline metrics for the invocation and
write them as JSON), ``--trace-out PATH`` (export the recorded span tree
as Chrome/Perfetto ``trace_event`` JSON, with one lane per worker
process), ``--ledger PATH`` (append one run record -- argv, workload
fingerprint, metrics, timings, result digests, environment -- to a
persistent JSONL ledger), and ``--profile-out PATH`` (sample the
invocation with the span-attributed wall-clock profiler at
``--profile-hz`` samples/second; ``--profile-mem`` adds
tracemalloc-backed per-span allocation telemetry).  Time-series
telemetry rides on three more globals: ``--metrics-stream PATH``
streams one flattened metrics snapshot per epoch close as JSONL
(tailable live with ``repro-rating monitor PATH``),
``--alert-rules PATH`` evaluates a declarative alert ruleset
(threshold / rate-of-change / burn-rate conditions, TOML or JSON;
default: the packaged ruleset) at each epoch close, and
``--openmetrics-out PATH`` writes the final registry in OpenMetrics /
Prometheus text exposition format.  The scaling globals ``--workers N`` and
``--cache-dir DIR`` route ``population``/``search``/``sensitivity``
through the :mod:`repro.exec` engine: evaluations fan out over ``N``
processes (bit-identical to serial, and since the telemetry-capsule
merge, observationally identical too) and/or replay from a persistent MP
cache.

Three inspection subcommands close the loop: ``trace FILE`` validates
and summarizes an exported trace, ``profile FILE`` summarizes a
``--profile-out`` artifact (top self-time spans and frames) and
re-exports it as speedscope JSON, collapsed stacks, or a Perfetto
profiler lane, and ``runs list|show|diff|check`` reads a ledger -- ``runs check`` compares the latest run against a rolling
baseline of comparable runs and exits 1 when result digests, stable
metrics, wall-clock, or the alert state regressed beyond the
configured thresholds (``--allow-alerts`` waives the alert check), and
3 when no comparable baseline exists (nothing was checked -- distinct
from "checked and clean").  ``monitor FILE`` tails a
``--metrics-stream`` file and renders terminal sparklines plus the
live alert board (``--once`` renders a single frame for scripts and
CI), and ``alerts`` validates and lists alert-rule files
(``--check`` for exit-status-only validation).

Detection quality closes the last gap: ``report --out FILE`` runs a
seeded challenge scenario end to end and writes a single self-contained
HTML (or Markdown) run report -- ground-truth scorecards with
per-detector confusion counts, an ROC sweep with an inline SVG curve,
per-epoch trust trajectories, assumption-drift warnings, ledger and
environment metadata -- with zero external asset references.  The
``--report-out PATH`` global does the same for *any* invocation,
rendering whatever its registry collected.

``lint`` runs :mod:`repro.lint`, the AST-based invariant checker that
machine-verifies the determinism contract (seeded RNGs, pickle-safe task
payloads, catalogued metric names, wall-clock hygiene, span balance,
ordered iteration near fingerprints); see ``docs/LINT.md``.

Exit status is 0 on success, 1 on a detected regression (``runs check``)
or a non-baselined lint finding, 2 on argument errors, 3 when ``runs
check`` found no comparable baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter, sleep
from typing import Optional, Sequence

import numpy as np

from repro.aggregation import BetaFilterScheme, PScheme, SimpleAveragingScheme
from repro.analysis.reporting import format_table
from repro.attacks.base import ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.optimizer import SearchArea, heuristic_region_search
from repro.attacks.population import PopulationConfig, generate_population
from repro.attacks.time_models import UniformWindow
from repro.detectors import JointDetector
from repro.errors import ReproError
from repro.marketplace.challenge import RatingChallenge
from repro.marketplace.fair_ratings import FairRatingConfig, FairRatingGenerator
from repro.marketplace.io import (
    load_dataset_csv,
    load_submission_json,
    save_dataset_csv,
    save_submission_json,
)
from repro.obs import (
    DEFAULT_RULES_PATH,
    AlertEngine,
    MetricsRegistry,
    MetricsStreamWriter,
    TimeSeriesRecorder,
    ledger as run_ledger,
    load_rules,
    profile as obs_profile,
    render_frame,
    render_openmetrics,
    replay_stream,
    report_from_registry,
    set_registry,
    setup_logging,
    write_json,
    write_report,
)
from repro.obs.trace import read_trace, summarize_trace, write_trace
from repro.types import RatingDataset

__all__ = ["main", "build_parser"]

_SCHEMES = {
    "SA": SimpleAveragingScheme,
    "BF": BetaFilterScheme,
    "P": PScheme,
}


def _make_scheme(name: str):
    return _SCHEMES[name]()


def _parse_target(text: str) -> ProductTarget:
    try:
        product_id, direction_s = text.rsplit(":", 1)
        direction = int(direction_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"target must look like 'tv1:-1' or 'tv3:+1', got {text!r}"
        ) from None
    if direction not in (-1, 1):
        raise argparse.ArgumentTypeError(
            f"target direction must be -1 or +1, got {direction}"
        )
    return ProductTarget(product_id, direction)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-rating",
        description="Rating-system attack modeling (ICDCS 2008 reproduction).",
    )
    # Observability flags shared by every subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level", default="WARNING",
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
        help="structured log verbosity (stderr; default WARNING)",
    )
    common.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="collect pipeline metrics and write them to PATH as JSON",
    )
    common.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="export the invocation's span tree as Chrome/Perfetto "
             "trace_event JSON (one lane per worker process); inspect "
             "with 'repro-rating trace PATH' or ui.perfetto.dev",
    )
    common.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append one run record (argv, workload fingerprint, metrics, "
             "timings, result digests, environment) to the JSONL ledger at "
             "PATH; inspect with the 'runs' subcommand "
             "(default for 'runs': $REPRO_LEDGER or .repro/ledger.jsonl)",
    )
    common.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write a self-contained HTML (or Markdown, by extension) run "
             "report of this invocation's telemetry to PATH",
    )
    common.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="sample the invocation with the span-attributed profiler and "
             "write the profile artifact to PATH; inspect or re-export with "
             "'repro-rating profile PATH'",
    )
    common.add_argument(
        "--profile-hz", type=int, default=obs_profile.DEFAULT_HZ, metavar="N",
        help="profiler sampling rate in samples/second "
             f"(default {obs_profile.DEFAULT_HZ})",
    )
    common.add_argument(
        "--profile-mem", action="store_true",
        help="with --profile-out: also record tracemalloc-backed per-span "
             "allocation deltas and peak watermarks (mem.* metrics; "
             "noticeably more overhead than sampling alone)",
    )
    common.add_argument(
        "--metrics-stream", default=None, metavar="PATH",
        help="stream one flattened metrics snapshot per epoch close to "
             "PATH as JSONL; tail it live with 'repro-rating monitor "
             "PATH' (commands without epochs write one closing snapshot)",
    )
    common.add_argument(
        "--alert-rules", default=None, metavar="PATH",
        help="alert-rule file (TOML or JSON) evaluated at each epoch "
             "close; implies series recording (default ruleset: the "
             "packaged drift/quality rules; validate files with "
             "'repro-rating alerts --check')",
    )
    common.add_argument(
        "--openmetrics-out", default=None, metavar="PATH",
        help="write the invocation's final registry in OpenMetrics / "
             "Prometheus text exposition format to PATH",
    )
    common.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for parallelizable commands "
             "(population/search/sensitivity); 0 = serial (default). "
             "Results are bit-identical at any worker count.",
    )
    common.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent MP-evaluation cache directory; repeated runs "
             "replay cached evaluations instead of recomputing them",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name, **kwargs):
        return sub.add_parser(name, parents=[common], **kwargs)

    world = add_parser("world", help="generate fair rating data (CSV)")
    world.add_argument("--seed", type=int, default=0)
    world.add_argument("--out", required=True, help="output CSV path")
    world.add_argument("--duration-days", type=float, default=82.0)
    world.add_argument("--history-days", type=float, default=45.0)
    world.add_argument("--arrivals-per-day", type=float, default=6.0)

    attack = add_parser("attack", help="generate an attack submission (JSON)")
    attack.add_argument("--world", required=True, help="fair data CSV")
    attack.add_argument(
        "--target", dest="targets", action="append", type=_parse_target,
        required=True, help="product:direction, e.g. tv1:-1 (repeatable)",
    )
    attack.add_argument("--bias", type=float, default=2.0)
    attack.add_argument("--std", type=float, default=0.5)
    attack.add_argument("--n-ratings", type=int, default=50)
    attack.add_argument("--window-start", type=float, default=20.0)
    attack.add_argument("--window-days", type=float, default=40.0)
    attack.add_argument(
        "--correlation", choices=("identity", "random", "heuristic"),
        default="identity",
    )
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--out", required=True, help="output JSON path")

    evaluate = add_parser("evaluate", help="score a submission's MP")
    evaluate.add_argument("--world", required=True, help="fair data CSV")
    evaluate.add_argument("--submission", required=True, help="submission JSON")
    evaluate.add_argument(
        "--scheme", choices=sorted(_SCHEMES), action="append", dest="schemes",
        help="defense scheme (repeatable; default: all three)",
    )
    evaluate.add_argument("--period-days", type=float, default=30.0)

    detect = add_parser("detect", help="run the joint detector on a product")
    detect.add_argument("--world", required=True, help="rating data CSV")
    detect.add_argument("--product", required=True)
    detect.add_argument(
        "--explain", action="store_true",
        help="print the per-rating detection provenance table "
             "(which path/detectors marked each suspicious rating)",
    )

    population = add_parser(
        "population", help="simulate a challenge round with synthetic participants"
    )
    population.add_argument("--seed", type=int, default=2008)
    population.add_argument("--size", type=int, default=25)
    population.add_argument(
        "--scheme", choices=sorted(_SCHEMES), default="SA",
    )
    population.add_argument("--top", type=int, default=10)

    search = add_parser("search", help="Procedure 2 region search")
    search.add_argument("--seed", type=int, default=2008)
    search.add_argument("--scheme", choices=sorted(_SCHEMES), default="SA")
    search.add_argument("--probes", type=int, default=4)
    search.add_argument("--subareas", type=int, default=4)

    ablation = add_parser(
        "ablation", help="P-scheme design ablation on the canonical attacks"
    )
    ablation.add_argument("--seed", type=int, default=2008)

    sensitivity = add_parser(
        "sensitivity", help="ROC-style sweep of one detector threshold"
    )
    sensitivity.add_argument("--parameter", required=True,
                             help="a DetectorConfig field name")
    sensitivity.add_argument(
        "--value", dest="values", action="append", type=float, required=True,
        help="threshold value to probe (repeatable)",
    )
    sensitivity.add_argument("--seed", type=int, default=0)
    sensitivity.add_argument("--fair-worlds", type=int, default=1)
    sensitivity.add_argument("--attacks", type=int, default=2)

    report = add_parser(
        "report", help="run a seeded challenge scenario and write a "
                       "self-contained HTML/Markdown run report"
    )
    report.add_argument("--seed", type=int, default=7)
    report.add_argument(
        "--size", type=int, default=5,
        help="synthetic attack submissions in the scenario (default 5)",
    )
    report.add_argument("--out", required=True, help="report output path")
    report.add_argument(
        "--title", default="Detection quality report",
        help="report title",
    )
    report.add_argument(
        "--roc-parameter", default="hc_suspicious_threshold",
        help="DetectorConfig field swept for the ROC section",
    )
    report.add_argument(
        "--roc-value", dest="roc_values", action="append", type=float,
        default=None,
        help="threshold value for the ROC sweep "
             "(repeatable; default 0.85 0.92 0.96)",
    )

    trace = add_parser(
        "trace", help="validate and summarize an exported trace JSON"
    )
    trace.add_argument("trace_file", help="a file written by --trace-out")
    trace.add_argument(
        "--top", type=int, default=10, help="longest spans to list"
    )

    profile = add_parser(
        "profile", help="inspect or re-export a --profile-out artifact"
    )
    profile.add_argument(
        "profile_file", help="a file written by --profile-out"
    )
    profile.add_argument(
        "--top", type=int, default=10,
        help="rows in the self-time tables (default 10)",
    )
    profile.add_argument(
        "--speedscope", metavar="PATH", default=None,
        help="re-export the samples as speedscope JSON "
             "(load at https://www.speedscope.app)",
    )
    profile.add_argument(
        "--collapsed", metavar="PATH", default=None,
        help="re-export the samples as collapsed-stack text "
             "(flamegraph.pl input)",
    )
    profile.add_argument(
        "--trace", metavar="PATH", default=None,
        help="re-export the samples as a Chrome/Perfetto trace_event "
             "JSON profiler lane",
    )

    lint = add_parser(
        "lint", help="run the AST-based invariant checker (repro.lint)"
    )
    lint.add_argument(
        "lint_paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src, else .)",
    )
    lint.add_argument(
        "--json", dest="lint_json", metavar="PATH", default=None,
        help="also write the findings as structured JSON to PATH",
    )
    lint.add_argument(
        "--baseline", dest="lint_baseline", metavar="PATH", default=None,
        help="baseline file of accepted findings "
             "(default: .repro-lint-baseline.json when it exists)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--select", dest="lint_select", metavar="IDS", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore", dest="lint_ignore", metavar="IDS", default=None,
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--no-stale", action="store_true",
        help="skip the metric-stale direction (for partial trees)",
    )
    lint.add_argument(
        "--sarif", dest="lint_sarif", metavar="PATH", default=None,
        help="also write the findings as a SARIF 2.1.0 report to PATH",
    )
    lint.add_argument(
        "--cache", dest="lint_cache", metavar="PATH", default=None,
        help="per-module analysis cache file "
             "(default: .repro-lint-cache.json)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the analysis cache",
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="check only modules touched in git diff plus their "
             "reverse-dependency closure",
    )
    lint.add_argument(
        "--diff-base", dest="lint_diff_base", metavar="REF", default=None,
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )

    monitor = add_parser(
        "monitor", help="tail a --metrics-stream file: sparklines + alerts"
    )
    monitor.add_argument(
        "stream_file", help="a JSONL file written by --metrics-stream"
    )
    monitor.add_argument(
        "--once", action="store_true",
        help="render one frame from the full file and exit "
             "(for scripts and CI; default: follow the file live)",
    )
    monitor.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval in follow mode (default 2.0)",
    )
    monitor.add_argument(
        "--top", type=int, default=16, metavar="N",
        help="series rows rendered per frame (default 16)",
    )
    monitor.add_argument(
        "--width", type=int, default=32, metavar="N",
        help="sparkline width in cells (default 32)",
    )
    monitor.add_argument(
        "--select", action="append", default=None, metavar="SUBSTR",
        help="only render series whose name contains SUBSTR (repeatable)",
    )

    alerts = add_parser(
        "alerts", help="validate and list alert-rule files"
    )
    alerts.add_argument(
        "rule_files", nargs="*", metavar="PATH",
        help="rule files to inspect (default: the packaged ruleset)",
    )
    alerts.add_argument(
        "--check", action="store_true",
        help="validate only (no rule listing); exit 1 on any invalid file",
    )

    runs = add_parser(
        "runs", help="inspect the run ledger (list/show/diff/check)"
    )
    runs.add_argument(
        "action", choices=("list", "show", "diff", "check"),
        help="list records, show one, diff two, or check for regressions",
    )
    runs.add_argument(
        "ids", nargs="*", metavar="RUN_ID",
        help="run id prefixes for show/diff (default: the latest run[s])",
    )
    runs.add_argument(
        "-n", "--limit", type=int, default=20,
        help="records shown by 'list' (default 20)",
    )
    runs.add_argument(
        "--window", type=int, default=5,
        help="baseline size for 'check': latest compared against up to "
             "WINDOW earlier comparable runs (default 5)",
    )
    runs.add_argument(
        "--max-timing-ratio", type=float, default=1.5,
        help="'check' flags wall-clock above RATIO x baseline median "
             "(default 1.5)",
    )
    runs.add_argument(
        "--metric-tolerance", type=float, default=0.0,
        help="'check' flags counters drifting beyond this relative "
             "tolerance (default 0 = exact)",
    )
    runs.add_argument(
        "--digest-tolerance", type=float, default=0.0,
        help="'check' flags result digests moving beyond this absolute "
             "tolerance (default 0 = exact)",
    )
    runs.add_argument(
        "--allow-alerts", action="store_true",
        help="'check' does not flag newly-firing alerts against an "
             "alert-free baseline (use when the alerts are expected)",
    )

    return parser


# --------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------- #


# The seed rides inside the argparse namespace (``args.seed``).
def _cmd_world(args) -> int:  # lint: ignore[rng-missing-param]
    config = FairRatingConfig(
        duration_days=args.duration_days,
        history_days=args.history_days,
        base_arrivals_per_day=args.arrivals_per_day,
    )
    dataset = FairRatingGenerator(config=config, seed=args.seed).generate()
    save_dataset_csv(dataset, args.out)
    run_ledger.record_digest("world.ratings", dataset.total_ratings())
    print(
        f"wrote {dataset.total_ratings()} fair ratings over "
        f"{len(dataset)} products to {args.out}"
    )
    return 0


def _cmd_attack(args) -> int:
    dataset = load_dataset_csv(args.world)
    rater_ids = [f"attacker_{i:02d}" for i in range(max(args.n_ratings, 1))]
    generator = AttackGenerator(dataset, rater_ids, seed=args.seed)
    spec = AttackSpec(
        bias_magnitude=args.bias,
        std=args.std,
        n_ratings=args.n_ratings,
        time_model=UniformWindow(args.window_start, args.window_days),
        correlation=args.correlation,
    )
    submission = generator.generate(args.targets, spec, submission_id="cli_attack")
    save_submission_json(submission, args.out)
    print(
        f"wrote {submission.total_ratings()} unfair ratings "
        f"({len(submission.product_ids)} products) to {args.out}"
    )
    return 0


def _cmd_evaluate(args) -> int:
    fair = load_dataset_csv(args.world).fair_only()
    submission = load_submission_json(args.submission)
    attacked = fair.merge(submission.as_dict())
    spans = [s.time_span() for s in fair.streams() if len(s)]
    start = min(lo for lo, _ in spans)
    end = max(hi for _, hi in spans) + 1e-9
    from repro.marketplace.mp import manipulation_power

    scheme_names = args.schemes or sorted(_SCHEMES)
    rows = []
    for name in scheme_names:
        result = manipulation_power(
            _make_scheme(name), attacked, fair,
            period_days=args.period_days, start_day=start, end_day=end,
        )
        rows.append((name, result.total))
        run_ledger.record_digest(f"evaluate.{name}.total_mp", result.total)
    print(format_table(["scheme", "total MP"], rows, title="Manipulation Power"))
    return 0


def _provenance_table(stream, report) -> str:
    """The per-rating detection provenance table for ``detect --explain``."""
    rows = []
    for index in np.nonzero(report.suspicious)[0]:
        labels = report.provenance_of(int(index))
        paths = ",".join(label for label in labels if label.startswith("path"))
        detectors = ",".join(
            label for label in labels if not label.startswith("path")
        )
        rows.append(
            (
                int(index),
                float(stream.times[index]),
                float(stream.values[index]),
                stream.rater_ids[index],
                paths or "-",
                detectors or "-",
            )
        )
    if not rows:
        return "no suspicious ratings: nothing to explain"
    return format_table(
        ["idx", "day", "value", "rater", "paths", "detectors"],
        rows,
        float_format=".2f",
        title=f"Detection provenance for {stream.product_id}",
    )


def _cmd_detect(args) -> int:
    dataset = load_dataset_csv(args.world)
    if args.product not in dataset:
        print(f"error: product {args.product!r} not in {args.world}", file=sys.stderr)
        return 2
    stream = dataset[args.product]
    report = JointDetector().analyze(stream)
    run_ledger.record_digest("detect.num_suspicious", report.num_suspicious)
    print(f"product {args.product}: {len(stream)} ratings")
    print(f"suspicious ratings: {report.num_suspicious}")
    print(f"alarms: {dict(report.alarms)}")
    for label, intervals in (
        ("Path 1", report.path1_intervals),
        ("Path 2", report.path2_intervals),
    ):
        for interval in intervals:
            print(f"{label} interval: days {interval.start:.1f} to {interval.stop:.1f}")
    if len(stream) and stream.unfair.any():
        unfair = stream.unfair
        recall = (report.suspicious & unfair).sum() / unfair.sum()
        print(f"ground-truth recall: {recall:.0%}")
    if args.explain:
        print(_provenance_table(stream, report))
    return 0


def _cmd_population(args) -> int:
    if args.workers > 0 or args.cache_dir:
        # Route through the execution engine (bit-identical to the
        # serial path below; the context builds the same world/population).
        from repro.experiments.context import ExperimentContext

        context = ExperimentContext(
            seed=args.seed,
            population_size=args.size,
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
        try:
            results = context.results_for(args.scheme)
            challenge = context.challenge
            population = context.population
            board = challenge.leaderboard(
                population,
                context.scheme(args.scheme),
                validate=False,
                results=[results[s.submission_id] for s in population],
            )
        finally:
            context.close()
    else:
        challenge = RatingChallenge(seed=args.seed)
        population = generate_population(
            challenge, PopulationConfig(size=args.size), seed=args.seed + 1
        )
        scheme = _make_scheme(args.scheme)
        board = challenge.leaderboard(population, scheme, validate=False)
    if board:
        run_ledger.record_digest("population.top_mp", board[0].total_mp)
        run_ledger.record_digest(
            "population.mean_mp",
            sum(entry.total_mp for entry in board) / len(board),
        )
    rows = [
        (entry.rank, entry.submission_id, entry.strategy, entry.total_mp)
        for entry in board[: args.top]
    ]
    print(
        format_table(
            ["rank", "submission", "archetype", "total MP"],
            rows,
            title=f"{args.scheme}-scheme leaderboard (top {args.top} of {args.size})",
        )
    )
    return 0


def _cmd_search(args) -> int:
    challenge = RatingChallenge(seed=args.seed)
    by_volume = sorted(
        challenge.fair_dataset.product_ids,
        key=lambda pid: len(challenge.fair_dataset[pid]),
    )
    targets = [
        ProductTarget(by_volume[0], -1),
        ProductTarget(by_volume[1], -1),
        ProductTarget(by_volume[2], +1),
        ProductTarget(by_volume[3], +1),
    ]
    area = SearchArea(bias_min=-4.0, bias_max=0.0, std_min=0.0, std_max=2.0)
    if args.workers > 0 or args.cache_dir:
        from repro.exec import (
            MPCache,
            ParallelEvaluator,
            region_probe_batch,
            share_challenge,
        )

        share_challenge(challenge)
        cache = MPCache(cache_dir=args.cache_dir) if args.cache_dir else None
        with ParallelEvaluator(workers=args.workers, cache=cache) as evaluator:
            result = heuristic_region_search(
                None,
                area,
                n_subareas=args.subareas,
                probes_per_subarea=args.probes,
                probe_batch=region_probe_batch(
                    evaluator,
                    challenge_seed=args.seed,
                    scheme_name=args.scheme,
                    targets=targets,
                    seed_root=args.seed + 5,
                ),
            )
    else:
        generator = AttackGenerator(
            challenge.fair_dataset, challenge.config.biased_rater_ids(),
            seed=args.seed + 5,
        )
        evaluate = generator.evaluator(targets, challenge, _make_scheme(args.scheme))
        result = heuristic_region_search(
            evaluate,
            area,
            n_subareas=args.subareas,
            probes_per_subarea=args.probes,
        )
    rows = []
    for i, round_ in enumerate(result.rounds):
        bias, std = round_.best_subarea.center
        rows.append((i + 1, bias, std, round_.best_score))
    print(
        format_table(
            ["round", "best bias", "best std", "best MP"],
            rows,
            title=f"Procedure 2 vs {args.scheme}-scheme",
        )
    )
    bias, std = result.best_point
    run_ledger.record_digest("search.best_mp", result.best_mp)
    print(f"strongest region: bias={bias:.2f}, std={std:.2f} (MP {result.best_mp:.3f})")
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments import ExperimentContext
    from repro.experiments.ablations import run_pscheme_ablation

    context = ExperimentContext(seed=args.seed, population_size=1)
    print(run_pscheme_ablation(context).to_text())
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.experiments.sensitivity import sweep_detector_parameter

    if args.workers > 0 or args.cache_dir:
        from repro.exec import MPCache, ParallelEvaluator

        cache = MPCache(cache_dir=args.cache_dir) if args.cache_dir else None
        with ParallelEvaluator(workers=args.workers, cache=cache) as evaluator:
            result = sweep_detector_parameter(
                args.parameter,
                args.values,
                n_fair_worlds=args.fair_worlds,
                n_attacks=args.attacks,
                seed=args.seed,
                evaluator=evaluator,
            )
    else:
        result = sweep_detector_parameter(
            args.parameter,
            args.values,
            n_fair_worlds=args.fair_worlds,
            n_attacks=args.attacks,
            seed=args.seed,
        )
    print(result.to_text())
    return 0


def _cmd_report(args) -> int:
    from repro.attacks.population import population_labels
    from repro.experiments.sensitivity import sweep_detector_parameter
    from repro.obs import DriftMonitor, RocSweep, get_registry
    from repro.obs.quality import aggregate_confusions, score_detection
    from repro.trust.manager import TrustManager

    registry = get_registry()
    previous = None
    if not registry.enabled:
        # Without --metrics-out/--trace-out/--ledger nothing installed a
        # collecting registry; install one locally so the report's counter
        # and histogram sections have content.
        registry = MetricsRegistry()
        previous = set_registry(registry)
    try:
        epoch_days = 30.0
        challenge = RatingChallenge(seed=args.seed)
        population = generate_population(
            challenge, PopulationConfig(size=args.size), seed=args.seed + 1
        )
        labels = population_labels(population)
        detector = JointDetector()

        # Ground-truth scorecards for every attacked product stream.
        cards = []
        scorecard_rows = []
        for submission in population:
            attacked = challenge.attacked_dataset(submission)
            archetype = labels[submission.submission_id].archetype
            # Batch only the attacked products: that is the exact set of
            # streams the per-stream loop analyzed, so the quality.*
            # counters stay identical.
            reports = detector.analyze_batch(
                RatingDataset([attacked[pid] for pid in submission.product_ids])
            )
            for pid in submission.product_ids:
                stream = attacked[pid]
                card = score_detection(stream, reports[pid])
                cards.append(card)
                scorecard_rows.append(
                    (
                        f"{submission.submission_id}/{pid}",
                        archetype,
                        card.detected,
                        card.detection_latency_days,
                        card.bias_at_detection,
                    )
                )

        # ROC sweep of one detector threshold.
        roc_values = sorted(set(args.roc_values or (0.85, 0.92, 0.96)))
        sweep = sweep_detector_parameter(
            args.roc_parameter, roc_values,
            n_fair_worlds=1, n_attacks=2, seed=args.seed,
        )
        roc = RocSweep(
            parameter=args.roc_parameter,
            points=sweep.roc_points(),
            auc=sweep.auc(),
        )

        # Trust trajectories and drift checks on the first submission's
        # attacked world (calibrating drift on the fair world).
        first = population[0]
        attacked = challenge.attacked_dataset(first)
        marks = {
            pid: report.suspicious
            for pid, report in detector.analyze_batch(attacked).items()
        }
        epoch_times = []
        edge = challenge.start_day + epoch_days
        while edge < challenge.end_day + epoch_days:
            epoch_times.append(edge)
            edge += epoch_days
        snapshots = TrustManager().run(attacked, marks, epoch_times)
        attacker_set = set(first.rater_ids())
        fair_set = {
            rid
            for pid in attacked
            for rid in attacked[pid].rater_ids
        } - attacker_set

        def mean_trust(snapshot, ids):
            if not ids:
                return 0.5
            return float(np.mean([snapshot.value(rid) for rid in ids]))

        trust_trajectories = {
            f"attackers ({first.submission_id})": [
                mean_trust(s, attacker_set) for s in snapshots
            ],
            "fair raters": [mean_trust(s, fair_set) for s in snapshots],
        }

        monitor = DriftMonitor(registry=registry)
        monitor.calibrate(challenge.fair_dataset)
        drift_warnings = []
        window_start = challenge.start_day
        # With --metrics-stream/--alert-rules a series recorder rides on
        # the registry: snapshot it per drift epoch so the stream (and
        # the alert engine) sees a genuine multi-epoch trajectory.
        recorder = getattr(registry, "series", None)
        for epoch_index, edge in enumerate(epoch_times):
            drift_warnings.extend(
                monitor.check_epoch(attacked, window_start, edge)
            )
            window_start = edge
            if recorder is not None:
                recorder.record_epoch(epoch_index, registry)

        ledger_rows = [
            (
                record.run_id,
                record.when,
                record.command,
                record.status,
                record.timings.get("wall_seconds", 0.0),
            )
            for record in run_ledger.RunLedger(
                _runs_ledger_path(args)
            ).tail(8)
        ]

        data = report_from_registry(
            registry,
            title=args.title,
            environment=run_ledger.runtime_environment(),
            ledger_rows=ledger_rows,
            notes=(
                f"seeded challenge scenario: seed={args.seed}, "
                f"population size {args.size}",
                f"{len(cards)} attacked product streams judged against "
                f"ground-truth labels",
            ),
        )
        data.confusions = aggregate_confusions(cards)
        data.scorecard_rows = scorecard_rows
        data.roc = roc
        data.trust_trajectories = trust_trajectories
        data.drift_warnings = tuple(str(w) for w in drift_warnings)
        kind = write_report(data, args.out)

        detected = sum(1 for card in cards if card.detected)
        run_ledger.record_digest("report.streams_scored", len(cards))
        run_ledger.record_digest("report.detected_streams", detected)
        run_ledger.record_digest("report.roc_auc", roc.auc)
        print(
            f"{kind} report written to {args.out}: {detected}/{len(cards)} "
            f"attacked streams detected, ROC AUC {roc.auc:.3f}, "
            f"{len(drift_warnings)} drift warning(s)"
        )
        return 0
    finally:
        if previous is not None:
            set_registry(previous)


def _cmd_lint(args) -> int:
    from repro.lint import main as lint_main

    forwarded = list(args.lint_paths)
    if args.lint_json:
        forwarded += ["--json", args.lint_json]
    if args.lint_baseline:
        forwarded += ["--baseline", args.lint_baseline]
    if args.no_baseline:
        forwarded.append("--no-baseline")
    if args.update_baseline:
        forwarded.append("--update-baseline")
    if args.lint_select:
        forwarded += ["--select", args.lint_select]
    if args.lint_ignore:
        forwarded += ["--ignore", args.lint_ignore]
    if args.no_stale:
        forwarded.append("--no-stale")
    if args.lint_sarif:
        forwarded += ["--sarif", args.lint_sarif]
    if args.lint_cache:
        forwarded += ["--cache", args.lint_cache]
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.changed_only:
        forwarded.append("--changed-only")
    if args.lint_diff_base:
        forwarded += ["--diff-base", args.lint_diff_base]
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def _cmd_trace(args) -> int:
    payload = read_trace(args.trace_file)
    print(f"trace {args.trace_file}: structurally valid")
    print(summarize_trace(payload, top=args.top))
    return 0


def _cmd_profile(args) -> int:
    payload = obs_profile.read_profile(args.profile_file)
    samples = {
        key: float(count) for key, count in payload["samples"].items()
    }
    hz = float(payload["hz"])
    total = sum(samples.values())
    print(f"profile {args.profile_file}: structurally valid")
    print(
        f"{total:.0f} samples at {hz:g} Hz ({total / hz:.2f}s sampled, "
        f"{obs_profile.attributed_fraction(samples):.1%} span-attributed)"
    )
    span_rows = sorted(
        obs_profile.self_seconds_by_span(samples, hz=hz).items(),
        key=lambda item: (-item[1], item[0]),
    )[: args.top]
    if span_rows:
        print()
        print(format_table(
            ["span", "self_seconds"], span_rows, float_format=".3f",
            title=f"Top {len(span_rows)} spans by sampled self time",
        ))
    frame_rows = [
        (label, count / hz)
        for label, count in obs_profile.top_frames(samples, args.top)
    ]
    if frame_rows:
        print()
        print(format_table(
            ["frame", "self_seconds"], frame_rows, float_format=".3f",
            title=f"Top {len(frame_rows)} frames by self time",
        ))
    if args.speedscope:
        obs_profile.write_speedscope(
            samples, args.speedscope, hz=hz,
            name=os.path.basename(args.profile_file),
        )
        print(f"speedscope JSON written to {args.speedscope}")
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(obs_profile.collapsed_stacks(samples))
        print(f"collapsed stacks written to {args.collapsed}")
    if args.trace:
        events = obs_profile.profile_trace_events(samples, hz=hz)
        metadata = [
            {
                "name": "process_name", "ph": "M", "pid": os.getpid(),
                "tid": 0, "args": {"name": "repro profile"},
            },
            {
                "name": "thread_name", "ph": "M", "pid": os.getpid(),
                "tid": obs_profile.PROFILE_TID,
                "args": {"name": "profiler samples"},
            },
        ]
        document = {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.profile"},
        }
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"profile trace written to {args.trace}")
    return 0


def _ingest_stream_line(recorder, line: str) -> None:
    """Fold one metrics-stream JSONL line into ``recorder``.

    Mirrors :func:`repro.obs.series.read_metrics_stream`: a malformed
    line (the partial tail of a live writer) is skipped, not fatal.
    """
    line = line.strip()
    if not line:
        return
    try:
        payload = json.loads(line)
        epoch = int(payload["epoch"])
        metrics = {str(k): float(v) for k, v in payload["metrics"].items()}
    except (ValueError, KeyError, TypeError, AttributeError):
        return
    recorder.ingest_snapshot(epoch, metrics)


def _cmd_monitor(args) -> int:
    engine = AlertEngine(load_rules(args.alert_rules or DEFAULT_RULES_PATH))
    select = tuple(args.select or ())
    title = os.path.basename(args.stream_file)
    if args.once:
        recorder, _ = replay_stream(args.stream_file, engine=engine)
        sys.stdout.write(
            render_frame(
                recorder, engine=engine, select=select,
                top=args.top, width=args.width, title=title,
            )
        )
        return 0
    # Follow mode: poll the file for complete new lines, fold each into
    # the recorder (driving the alert engine exactly like the producing
    # run), and redraw the frame.  Ctrl-C exits cleanly.
    recorder = TimeSeriesRecorder(engine=engine)
    position = 0
    pending = ""
    try:
        while True:
            if os.path.exists(args.stream_file):
                with open(args.stream_file, "r", encoding="utf-8") as handle:
                    handle.seek(position)
                    pending += handle.read()
                    position = handle.tell()
                lines = pending.split("\n")
                pending = lines.pop()  # keep any partial tail for later
                for line in lines:
                    _ingest_stream_line(recorder, line)
            frame = render_frame(
                recorder, engine=engine, select=select,
                top=args.top, width=args.width, title=title,
            )
            sys.stdout.write("\x1b[2J\x1b[H" + frame)
            sys.stdout.flush()
            sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        return 0


def _cmd_alerts(args) -> int:
    paths = args.rule_files or [str(DEFAULT_RULES_PATH)]
    status = 0
    for path in paths:
        try:
            rules = load_rules(path)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        print(f"{path}: {len(rules)} rule(s) OK")
        if args.check:
            continue
        rows = [
            (
                rule.name,
                rule.kind,
                rule.metric,
                f"{rule.op} {rule.value:g}",
                f"{rule.for_epochs}/{rule.resolve_epochs}",
                rule.severity,
            )
            for rule in rules
        ]
        print(
            format_table(
                ["rule", "kind", "metric", "condition",
                 "for/resolve", "severity"],
                rows,
            )
        )
    return status


def _runs_ledger_path(args) -> str:
    """The ledger a ``runs`` invocation should read."""
    if args.ledger:
        return args.ledger
    return os.environ.get("REPRO_LEDGER") or os.path.join(
        ".repro", "ledger.jsonl"
    )


def _cmd_runs(args) -> int:
    ledger = run_ledger.RunLedger(_runs_ledger_path(args))
    if args.action == "list":
        print(run_ledger.format_runs_table(ledger.tail(args.limit)))
        return 0
    if args.action == "show":
        record = ledger.find(args.ids[0]) if args.ids else ledger.latest()
        if record is None:
            print(f"error: ledger {ledger.path} is empty", file=sys.stderr)
            return 2
        print(json.dumps(record.as_dict(), indent=2, sort_keys=True))
        return 0
    if args.action == "diff":
        if len(args.ids) >= 2:
            a, b = ledger.find(args.ids[0]), ledger.find(args.ids[1])
        else:
            recent = ledger.tail(2)
            if len(recent) < 2:
                print(
                    f"error: need two records to diff, ledger {ledger.path} "
                    f"has {len(recent)}",
                    file=sys.stderr,
                )
                return 2
            a, b = recent
        lines = run_ledger.diff_records(a, b)
        print(f"diff {a.run_id} ({a.when}) -> {b.run_id} ({b.when})")
        print("\n".join(lines) if lines else "(no differences)")
        return 0
    # action == "check"
    report = run_ledger.check_ledger(
        ledger,
        window=args.window,
        max_timing_ratio=args.max_timing_ratio,
        metric_tolerance=args.metric_tolerance,
        digest_tolerance=args.digest_tolerance,
        allow_alerts=args.allow_alerts,
    )
    print(report.to_text())
    if not report.ok:
        return 1
    # Distinct exit code: nothing was comparable, so nothing was checked.
    return 3 if report.no_baseline else 0


_COMMANDS = {
    "world": _cmd_world,
    "attack": _cmd_attack,
    "evaluate": _cmd_evaluate,
    "detect": _cmd_detect,
    "population": _cmd_population,
    "search": _cmd_search,
    "ablation": _cmd_ablation,
    "sensitivity": _cmd_sensitivity,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "monitor": _cmd_monitor,
    "alerts": _cmd_alerts,
    "runs": _cmd_runs,
}

#: Inspection commands never record telemetry about themselves.
_INSPECTION_COMMANDS = frozenset(
    {"lint", "trace", "profile", "monitor", "alerts", "runs"}
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(args.log_level)
    recording = args.command not in _INSPECTION_COMMANDS
    registry = previous = capture = profiler = None
    recorder = stream_sink = None
    if recording and (
        args.metrics_out or args.trace_out or args.ledger or args.report_out
        or args.profile_out or args.metrics_stream or args.alert_rules
        or args.openmetrics_out
    ):
        # Collect this invocation's pipeline telemetry and persist it.
        registry = MetricsRegistry()
        previous = set_registry(registry)
        if args.metrics_stream or args.alert_rules:
            # Series recording: epoch closes (online system, report's
            # drift loop) snapshot the registry; each snapshot streams
            # to the sink and drives the alert engine.
            try:
                rules = load_rules(args.alert_rules or DEFAULT_RULES_PATH)
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                set_registry(previous)
                return 2
            try:
                stream_sink = (
                    MetricsStreamWriter(args.metrics_stream)
                    if args.metrics_stream else None
                )
            except OSError as exc:
                print(
                    f"error: cannot open metrics stream: {exc}",
                    file=sys.stderr,
                )
                set_registry(previous)
                return 2
            recorder = TimeSeriesRecorder(
                sink=stream_sink,
                engine=AlertEngine(rules, registry=registry),
            )
            registry.attach_series(recorder)
        if args.ledger:
            capture = run_ledger.begin_run_capture()
        if args.profile_out:
            # Sample this process, and arm per-task profilers so pooled
            # work profiles itself worker-side (samples ride back on the
            # telemetry capsules).
            obs_profile.enable_profiling(
                hz=args.profile_hz, memory=args.profile_mem
            )
            profiler = obs_profile.SpanProfiler(
                registry, hz=args.profile_hz, memory=args.profile_mem
            ).start()
    start = perf_counter()
    try:
        status = _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = 2
    finally:
        wall_seconds = perf_counter() - start
        if profiler is not None:
            profiler.stop()
            obs_profile.disable_profiling()
        if registry is not None:
            set_registry(previous)
        if capture is not None:
            run_ledger.end_run_capture()
    if registry is None:
        return status
    if recorder is not None:
        if recorder.empty:
            # Commands with no epoch structure still stream one closing
            # summary snapshot (and one alert evaluation) at epoch 0.
            recorder.record_epoch(0, registry)
        if stream_sink is not None:
            stream_sink.close()
            print(
                f"metrics stream written to {args.metrics_stream} "
                f"({stream_sink.lines_written} snapshots)",
                file=sys.stderr,
            )
        firing = recorder.engine.firing() if recorder.engine else []
        if firing:
            print(
                f"alerts firing at exit: {', '.join(firing)}",
                file=sys.stderr,
            )
    if args.openmetrics_out:
        try:
            with open(args.openmetrics_out, "w", encoding="utf-8") as handle:
                handle.write(render_openmetrics(registry))
            print(
                f"openmetrics written to {args.openmetrics_out}",
                file=sys.stderr,
            )
        except OSError as exc:
            print(f"error: cannot write openmetrics: {exc}", file=sys.stderr)
            status = status or 2
    if args.metrics_out:
        try:
            write_json(registry, args.metrics_out)
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
        except OSError as exc:
            print(f"error: cannot write metrics: {exc}", file=sys.stderr)
            status = status or 2
    if args.trace_out:
        try:
            events = write_trace(registry, args.trace_out)
            print(
                f"trace written to {args.trace_out} ({events} events)",
                file=sys.stderr,
            )
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            status = status or 2
    if args.profile_out:
        try:
            total = obs_profile.write_profile(registry, args.profile_out)
            print(
                f"profile written to {args.profile_out} "
                f"({total:.0f} samples)",
                file=sys.stderr,
            )
        except OSError as exc:
            print(f"error: cannot write profile: {exc}", file=sys.stderr)
            status = status or 2
    if args.ledger:
        record = run_ledger.build_record(
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            registry=registry,
            wall_seconds=wall_seconds,
            status=status,
            capture=capture,
        )
        try:
            run_ledger.RunLedger(args.ledger).append(record)
            print(
                f"run {record.run_id} appended to {args.ledger}",
                file=sys.stderr,
            )
        except OSError as exc:
            print(f"error: cannot append to ledger: {exc}", file=sys.stderr)
            status = status or 2
    if args.report_out:
        trace_summary = None
        if args.trace_out:
            try:
                trace_summary = summarize_trace(read_trace(args.trace_out))
            except (OSError, ReproError, ValueError):
                trace_summary = None
        data = report_from_registry(
            registry,
            title=f"repro {args.command} run report",
            environment=run_ledger.runtime_environment(),
            trace_summary=trace_summary,
        )
        try:
            kind = write_report(data, args.report_out)
            print(
                f"{kind} report written to {args.report_out}",
                file=sys.stderr,
            )
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            status = status or 2
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
