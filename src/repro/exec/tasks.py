"""Pickleable, deterministic work units for the evaluation engine.

Every headline artifact of the paper is a fan-out over independent MP
evaluations: the Figures 2-4 surfaces and the E7 comparison evaluate each
``(submission, scheme)`` pair, Procedure 2 and the landscape sweep probe
``(bias, sigma)`` points, and the sensitivity sweeps probe detector
thresholds.  Each unit is expressed here as a frozen dataclass
:class:`EvalTask` that

- carries only value-like fields, so it pickles cheaply into a pool
  worker and fingerprints stably for the MP cache
  (:meth:`EvalTask.fingerprint`);
- derives any randomness it needs from
  :func:`~repro.exec.hashing.derive_seed` over its own identity, so its
  result is bit-identical whether it runs inline, chunked, or in another
  process, in any order;
- rebuilds the expensive shared world (challenge, population, scheme)
  through a process-local registry.  In the parent process the registry
  is pre-seeded by :func:`share_context` / :func:`share_challenge`;
  forked pool workers inherit it for free, and spawn-style workers
  rebuild deterministically from the recorded seeds.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.attacks.time_models import TimeModel
from repro.errors import ValidationError
from repro.exec.hashing import derive_seed, stable_fingerprint

__all__ = [
    "EvalTask",
    "PopulationEvalTask",
    "RegionProbeTask",
    "LandscapeProbeTask",
    "SensitivityTask",
    "share_context",
    "get_shared_context",
    "share_challenge",
    "get_shared_challenge",
    "get_shared_scheme",
    "region_probe_batch",
    "hermetic_schemes",
    "hermetic_schemes_active",
]

#: Process-local registry of expensive shared objects, keyed by the seeds
#: that rebuild them.  Forked workers inherit the parent's entries; fresh
#: processes lazily reconstruct (deterministically) from the keys.
_SHARED: Dict[tuple, object] = {}

#: When True, tasks build a *fresh* scheme per run instead of sharing the
#: process-local instance.  Results are unchanged (scheme caches are pure
#: memoization) but telemetry becomes topology-invariant: cache hit/miss
#: counts no longer depend on how tasks were packed onto processes.
_HERMETIC = False


@contextmanager
def hermetic_schemes(enabled: bool = True) -> Iterator[None]:
    """Run a block with per-task (non-shared) scheme instances.

    The execution engine wraps each captured task in this when
    ``hermetic_telemetry`` is on, so a sweep's merged metrics are
    bit-identical at any worker count -- at the cost of giving up
    cross-task report-cache amortization inside each process.
    """
    global _HERMETIC
    previous = _HERMETIC
    _HERMETIC = bool(enabled)
    try:
        yield
    finally:
        _HERMETIC = previous


def hermetic_schemes_active() -> bool:
    """Whether tasks should build fresh (non-shared) scheme instances."""
    return _HERMETIC


def share_context(context) -> None:
    """Register an :class:`~repro.experiments.context.ExperimentContext`.

    Call before dispatching :class:`PopulationEvalTask`\\ s so the serial
    path and fork-started workers reuse the already-built world instead
    of regenerating it.
    """
    _SHARED[("context", int(context.seed), int(context.population_size))] = context


def get_shared_context(seed: int, population_size: int):
    """The shared context for ``(seed, population_size)`` (built on miss)."""
    key = ("context", int(seed), int(population_size))
    context = _SHARED.get(key)
    if context is None:
        from repro.experiments.context import ExperimentContext

        context = ExperimentContext(seed=seed, population_size=population_size)
        _SHARED[key] = context
    return context


def share_challenge(challenge, seed=None) -> None:
    """Register a default-constructed challenge under its root seed."""
    seed = seed if seed is not None else getattr(challenge, "seed", None)
    if seed is None:
        raise ValidationError(
            "challenge is not reconstructible from a seed; build it as "
            "RatingChallenge(seed=...) to use the parallel engine"
        )
    _SHARED[("challenge", int(seed))] = challenge


def get_shared_challenge(seed: int):
    """The shared challenge for ``seed`` (default-constructed on miss)."""
    key = ("challenge", int(seed))
    challenge = _SHARED.get(key)
    if challenge is None:
        from repro.marketplace.challenge import RatingChallenge

        challenge = RatingChallenge(seed=int(seed))
        _SHARED[key] = challenge
    return challenge


def get_shared_scheme(scope: tuple, scheme_name: str):
    """A per-process scheme instance for ``scheme_name`` within ``scope``.

    Sharing one instance per process lets the P-scheme's content-keyed
    report caches amortize across the tasks of one sweep, exactly as the
    serial loop shares the context's instance.  Results never depend on
    the cache state (the caches are pure memoization), so this cannot
    break serial/parallel bit-identity.
    """
    factory = _scheme_factory(scheme_name)
    if _HERMETIC:
        return factory()
    key = ("scheme", scope, scheme_name)
    scheme = _SHARED.get(key)
    if scheme is None:
        scheme = factory()
        _SHARED[key] = scheme
    return scheme


def _scheme_factory(scheme_name: str):
    from repro.aggregation import BetaFilterScheme, PScheme, SimpleAveragingScheme

    factories = {"P": PScheme, "SA": SimpleAveragingScheme, "BF": BetaFilterScheme}
    if scheme_name not in factories:
        raise ValidationError(
            f"unknown scheme {scheme_name!r}; expected one of {sorted(factories)}"
        )
    return factories[scheme_name]


# --------------------------------------------------------------------- #
# Work units
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class EvalTask:
    """One deterministic MP evaluation.

    Subclasses are frozen dataclasses whose fields fully determine the
    result; :attr:`fingerprint` hashes the class name plus every field,
    which is the cache key and the basis for derived RNG seeds.
    """

    @property
    def fingerprint(self) -> str:
        """Stable content hash of this task (class + all fields)."""
        return stable_fingerprint(self)

    def run(self):
        """Execute the task and return its (pickleable) result."""
        raise NotImplementedError


@dataclass(frozen=True)
class PopulationEvalTask(EvalTask):
    """Score population submission ``index`` under one scheme.

    The world and population are rebuilt (or fetched from the shared
    registry) from ``(root_seed, population_size)``, so the result is a
    pure function of the fields -- identical in every process.
    """

    root_seed: int
    population_size: int
    scheme_name: str
    index: int

    def run(self):
        context = get_shared_context(self.root_seed, self.population_size)
        submission = context.population[self.index]
        if _HERMETIC:
            scheme = _scheme_factory(self.scheme_name)()
        else:
            scheme = context.scheme(self.scheme_name)
        return context.challenge.evaluate(submission, scheme, validate=False)


@dataclass(frozen=True)
class RegionProbeTask(EvalTask):
    """One Procedure 2 probe: attack at ``(bias, std)``, return total MP.

    The probe's random draws (timing window, rating count, values) come
    from an RNG seeded by ``derive_seed(seed_root, bias, std, trial)``,
    which is what makes a parallel region search reproduce the serial
    one round for round.
    """

    challenge_seed: int
    scheme_name: str
    targets: Tuple  # of ProductTarget
    bias: float
    std: float
    trial: int
    seed_root: int
    randomize_timing: bool = True

    def run(self) -> float:
        from repro.attacks.generator import AttackGenerator

        challenge = get_shared_challenge(self.challenge_seed)
        scheme = get_shared_scheme(
            ("challenge", self.challenge_seed), self.scheme_name
        )
        rng = np.random.default_rng(
            derive_seed(self.seed_root, "region-probe", self.bias, self.std, self.trial)
        )
        generator = AttackGenerator(
            challenge.fair_dataset,
            challenge.config.biased_rater_ids(),
            scale=challenge.config.scale,
            seed=rng,
        )
        evaluate = generator.evaluator(
            list(self.targets),
            challenge,
            scheme,
            randomize_timing=self.randomize_timing,
        )
        return float(evaluate(self.bias, self.std))


@dataclass(frozen=True)
class LandscapeProbeTask(EvalTask):
    """One landscape grid point: best MP over ``probes`` fresh attacks."""

    challenge_seed: int
    scheme_name: str
    bias: float
    std: float
    probes: int
    n_ratings: int
    time_model: TimeModel  # a frozen dataclass (UniformWindow et al.)
    targets: Tuple  # of ProductTarget
    seed_root: int

    def run(self) -> float:
        from repro.attacks.generator import AttackGenerator, AttackSpec

        challenge = get_shared_challenge(self.challenge_seed)
        scheme = get_shared_scheme(
            ("challenge", self.challenge_seed), self.scheme_name
        )
        rng = np.random.default_rng(
            derive_seed(self.seed_root, "landscape", self.bias, self.std)
        )
        generator = AttackGenerator(
            challenge.fair_dataset,
            challenge.config.biased_rater_ids(),
            scale=challenge.config.scale,
            seed=rng,
        )
        spec = AttackSpec(
            bias_magnitude=abs(float(self.bias)),
            std=float(self.std),
            n_ratings=self.n_ratings,
            time_model=self.time_model,
        )
        best = 0.0
        for _ in range(self.probes):
            submission = generator.generate(list(self.targets), spec)
            result = challenge.evaluate(submission, scheme, validate=False)
            best = max(best, result.total)
        return best


@dataclass(frozen=True)
class SensitivityTask(EvalTask):
    """One sensitivity-sweep point: measure a detector config value."""

    parameter: str
    value: float
    n_fair_worlds: int
    n_attacks: int
    attack_bias: float
    attack_std: float
    attack_ratings: int
    attack_duration: float
    seed: int

    def run(self):
        from repro.experiments.sensitivity import measure_operating_point

        return measure_operating_point(
            self.parameter,
            self.value,
            n_fair_worlds=self.n_fair_worlds,
            n_attacks=self.n_attacks,
            attack_bias=self.attack_bias,
            attack_std=self.attack_std,
            attack_ratings=self.attack_ratings,
            attack_duration=self.attack_duration,
            seed=self.seed,
        )


# --------------------------------------------------------------------- #
# Batch adapters
# --------------------------------------------------------------------- #


def region_probe_batch(
    evaluator,
    challenge_seed: int,
    scheme_name: str,
    targets: Sequence,
    seed_root: int,
    randomize_timing: bool = True,
) -> Callable[[Sequence[Tuple[float, float, int]]], List[float]]:
    """A Procedure 2 ``probe_batch`` backed by ``evaluator``.

    The returned callable maps ``[(bias, std, count), ...]`` requests to
    subarea scores (max MP over ``count`` probes), dispatching every
    probe of a round through the evaluator in one shot -- the whole
    round parallelizes, and cached probes are never regenerated.
    """
    targets = tuple(targets)

    def probe_batch(requests: Sequence[Tuple[float, float, int]]) -> List[float]:
        tasks: List[RegionProbeTask] = []
        spans: List[Tuple[int, int]] = []
        for bias, std, count in requests:
            start = len(tasks)
            tasks.extend(
                RegionProbeTask(
                    challenge_seed=int(challenge_seed),
                    scheme_name=scheme_name,
                    targets=targets,
                    bias=float(bias),
                    std=float(std),
                    trial=trial,
                    seed_root=int(seed_root),
                    randomize_timing=randomize_timing,
                )
                for trial in range(count)
            )
            spans.append((start, len(tasks)))
        values = evaluator.map(tasks)
        return [max(values[start:stop]) for start, stop in spans]

    return probe_batch
